// Node-level protocol behaviour beyond the Table 1 replay: deep trees,
// self-sends, update-reads, read policies, compensation, staleness.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"

namespace threev {
namespace {

struct Env {
  explicit Env(size_t nodes, ClusterOptions options = {},
               SimNetOptions net_options = {})
      : net((net_options.seed = net_options.seed ? net_options.seed : 3,
             net_options),
            &metrics),
        cluster((options.num_nodes = nodes, options), &net, &metrics,
                &history) {}

  TxnResult Run(NodeId origin, const TxnSpec& spec) {
    TxnResult result;
    bool done = false;
    cluster.Submit(origin, spec, [&](const TxnResult& r) {
      result = r;
      done = true;
    });
    net.loop().RunUntil([&] { return done; });
    return result;
  }

  void Advance() {
    bool done = false;
    EXPECT_TRUE(
        cluster.coordinator().StartAdvancement([&](Status) { done = true; }));
    net.loop().RunUntil([&] { return done; });
  }

  Metrics metrics;
  HistoryRecorder history;
  SimNet net;
  Cluster cluster;
};

TEST(NodeTest, ThreeLevelTreeCompletes) {
  Env env(4);
  SubtxnPlan leaf;
  leaf.node = 3;
  leaf.ops = {OpAdd("d", 4)};
  SubtxnPlan mid;
  mid.node = 2;
  mid.ops = {OpAdd("c", 3)};
  mid.children = {leaf};
  SubtxnPlan child;
  child.node = 1;
  child.ops = {OpAdd("b", 2)};
  child.children = {mid};
  TxnSpec spec = TxnBuilder(0).Add("a", 1).ChildPlan(child).Build();

  TxnResult r = env.Run(0, spec);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.cluster.node(3).store().Read("d", 1)->num, 4);
  EXPECT_EQ(env.cluster.TotalPendingSubtxns(), 0u);
  // Hierarchical counters: every pair matches once the tree resolves.
  EXPECT_EQ(env.cluster.node(0).counters().C(1, 0), 1);  // root
  EXPECT_EQ(env.cluster.node(1).counters().C(1, 0), 1);
  EXPECT_EQ(env.cluster.node(2).counters().C(1, 1), 1);
  EXPECT_EQ(env.cluster.node(3).counters().C(1, 2), 1);
}

TEST(NodeTest, ChildOnSameNodeAsParent) {
  Env env(2);
  TxnSpec spec =
      TxnBuilder(0).Add("a", 1).Child(0, {OpAdd("a2", 2)}).Build();
  TxnResult r = env.Run(0, spec);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.cluster.node(0).store().Read("a2", 1)->num, 2);
  EXPECT_EQ(env.cluster.node(0).counters().R(1, 0), 2);  // root + local child
  EXPECT_EQ(env.cluster.node(0).counters().C(1, 0), 2);
}

TEST(NodeTest, UpdateTransactionReadsItsOwnVersion) {
  Env env(2);
  env.cluster.node(0).store().Seed("x", Value{}, 0);
  TxnResult w = env.Run(0, TxnBuilder(0).Add("x", 5).Build());
  EXPECT_TRUE(w.status.ok());
  // An update transaction (version 1) reading x sees the version-1 value,
  // even though the read version is still 0.
  TxnResult r = env.Run(0, TxnBuilder(0).Add("y", 1).Get("x").Build());
  EXPECT_EQ(r.reads.at("x").num, 5);
  // A read-only transaction still sees version 0.
  TxnResult q = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_EQ(q.reads.at("x").num, 0);
}

TEST(NodeTest, CurrentVersionReadPolicySeesFreshData) {
  ClusterOptions options;
  options.read_policy = ReadPolicy::kCurrentVersion;
  Env env(2, options);
  TxnResult w = env.Run(0, TxnBuilder(0).Add("x", 5).Build());
  EXPECT_TRUE(w.status.ok());
  TxnResult r = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_EQ(r.reads.at("x").num, 5);  // no versioning protection
}

TEST(NodeTest, ReadOfUnknownKeyReturnsEmptyValue) {
  Env env(1);
  TxnResult r = env.Run(0, TxnBuilder(0).Get("nope").Build());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.reads.at("nope").num, 0);
  EXPECT_TRUE(r.reads.at("nope").ids.empty());
}

TEST(NodeTest, RepeatedAdvancementsReuseAtMostThreeVersions) {
  Env env(3);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      TxnSpec spec = TxnBuilder(i % 3)
                         .Add("k" + std::to_string(i), 1)
                         .Child((i + 1) % 3,
                                {OpAdd("k" + std::to_string(i) + "b", 1)})
                         .Build();
      env.Run(i % 3, spec);
    }
    env.Advance();
    ASSERT_TRUE(env.cluster.CheckInvariants().ok());
  }
  EXPECT_EQ(env.cluster.node(0).vu(), 6u);
  EXPECT_EQ(env.cluster.node(0).vr(), 5u);
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_LE(env.cluster.node(n).store().MaxVersionsObserved(), 3u);
  }
  // After 5 advancements the accumulated value is visible to reads.
  TxnResult r = env.Run(0, TxnBuilder(0).Get("k0").Build());
  EXPECT_EQ(r.reads.at("k0").num, 5);
}

TEST(NodeTest, StalenessIsMeasuredAgainstVersionFreezeTime) {
  Env env(2);
  env.Run(0, TxnBuilder(0).Add("x", 1).Build());
  env.Advance();  // version 1 frozen at ~now
  Micros frozen_at = env.net.Now();
  // Let virtual time pass, then read.
  env.net.loop().ScheduleAfter(500'000, [] {});
  env.net.loop().Run();
  TxnResult r = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_TRUE(r.status.ok());
  EXPECT_GE(env.metrics.staleness.max(),
            500'000 - (env.net.Now() - frozen_at));
  EXPECT_GT(env.metrics.staleness.count(), 0);
}

TEST(NodeTest, InjectedAbortCompensatesAcrossNodes) {
  ClusterOptions options;
  options.inject_abort_probability = 1.0;  // every update root aborts
  Env env(3, options);
  TxnSpec spec = TxnBuilder(0)
                     .Add("a", 10)
                     .Op(OpInsert("alog", 1))
                     .Child(1, {OpAdd("b", 20), OpInsert("blog", 1)})
                     .Child(2, {OpAdd("c", 30)})
                     .Build();
  TxnResult r = env.Run(0, spec);
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  EXPECT_GE(env.metrics.compensations_sent.load(), 2);
  // All effects compensated away (version 1 values back to zero/empty).
  EXPECT_EQ(env.cluster.node(0).store().Read("a", 1)->num, 0);
  EXPECT_EQ(env.cluster.node(1).store().Read("b", 1)->num, 0);
  EXPECT_EQ(env.cluster.node(2).store().Read("c", 1)->num, 0);
  EXPECT_FALSE(env.cluster.node(1).store().Read("blog", 1)->ContainsId(1));
  // Compensation traffic is counted by the same counters, so advancement
  // still detects quiescence correctly.
  env.Advance();
  EXPECT_TRUE(env.cluster.CheckInvariants().ok());
  TxnResult q = env.Run(0, TxnBuilder(0).Get("a").Build());
  EXPECT_EQ(q.reads.at("a").num, 0);
}

TEST(NodeTest, MixOfAbortedAndCommittedStaysSerializable) {
  ClusterOptions options;
  options.inject_abort_probability = 0.3;
  Env env(3, options);
  env.cluster.coordinator().EnableAutoAdvance(15'000);
  size_t done = 0;
  for (int i = 0; i < 200; ++i) {
    uint64_t uid = 1000 + i;
    NodeId a = i % 3, b = (i + 1) % 3;
    std::string ka = "bal@" + std::to_string(a);
    std::string kb = "bal@" + std::to_string(b);
    TxnSpec spec =
        TxnBuilder(a)
            .Add(ka, 1)
            .Op(OpInsert("log@" + std::to_string(a), uid))
            .Child(b, {OpAdd(kb, 1),
                       OpInsert("log@" + std::to_string(b), uid)})
            .Build();
    env.cluster.Submit(a, spec, [&](const TxnResult&) { ++done; });
    if (i % 5 == 0) {
      TxnSpec read = TxnBuilder(a)
                         .Get("log@" + std::to_string(a))
                         .Child(b, {OpGet("log@" + std::to_string(b))})
                         .Build();
      env.cluster.Submit(a, read, [&](const TxnResult&) { ++done; });
    }
  }
  env.net.loop().RunUntil([&] { return done >= 240; });
  EXPECT_TRUE(env.cluster.CheckInvariants().ok());
  EXPECT_GT(env.metrics.txns_aborted.load(), 0);
  EXPECT_GT(env.metrics.txns_committed.load(), 0);
  CheckerOptions copts;
  copts.check_version_cut = true;
  CheckResult check = CheckHistory(env.history.Transactions(), copts);
  EXPECT_TRUE(check.ok()) << check.Summary();
}

TEST(NodeTest, TheoremFourTwoNoLockWaitsOnFastPath) {
  // Theorem 4.2: in pure 3V mode no user transaction ever waits - there
  // are no locks at all and version advancement never touches running
  // transactions.
  Env env(4);
  env.cluster.coordinator().EnableAutoAdvance(10'000);
  size_t done = 0;
  for (int i = 0; i < 300; ++i) {
    NodeId a = i % 4, b = (i + 1) % 4;
    TxnSpec spec = (i % 4 == 3)
                       ? TxnBuilder(a).Get("x@" + std::to_string(a)).Build()
                       : TxnBuilder(a)
                             .Add("x@" + std::to_string(a), 1)
                             .Child(b, {OpAdd("x@" + std::to_string(b), 1)})
                             .Build();
    env.cluster.Submit(a, spec, [&](const TxnResult&) { ++done; });
  }
  env.net.loop().RunUntil([&] { return done >= 300; });
  // All 300 submissions land at t=0 and finish within the first
  // auto-advance period; force one more advancement to overlap with
  // nothing and assert the counters.
  env.cluster.coordinator().DisableAutoAdvance();
  bool advanced = false;
  env.cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
  env.net.loop().RunUntil([&] { return advanced; });
  EXPECT_EQ(env.metrics.lock_waits.load(), 0);
  EXPECT_EQ(env.metrics.version_gate_waits.load(), 0);
  EXPECT_GT(env.metrics.advancements_completed.load(), 0);
}

}  // namespace
}  // namespace threev
