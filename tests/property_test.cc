// Parameterized property sweeps: every coordination strategy, across
// seeds, contention levels and advancement cadences, must uphold exactly
// the guarantees it claims.
//
//   3V / GlobalSync : serializable histories (zero anomalies), and for 3V
//                     the exact version-cut of Theorem 4.1 plus the
//                     structural invariants of Section 4.4.
//   NoCoord / Manual: must run to completion; anomalies are expected under
//                     contention (that is the paper's point), so only
//                     liveness and accounting are asserted.
#include <gtest/gtest.h>

#include "threev/baseline/systems.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

namespace threev {
namespace {

struct SweepParam {
  SystemKind kind;
  uint64_t seed;
  double zipf_theta;
  double read_fraction;
  double nc_fraction;     // only meaningful for kThreeV (mixed) runs
  Micros advance_period;  // 0 = never advance
  bool slow_links = false;  // heavy-tailed multi-ms delays (straggler storm)
  bool no_fifo = false;     // allow per-channel reordering
  std::string label;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << p.label;
}

class SweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepTest, GuaranteesHold) {
  const SweepParam& param = GetParam();
  Metrics metrics;
  HistoryRecorder history;
  SimNetOptions net_options;
  net_options.seed = param.seed;
  if (param.slow_links) {
    net_options.min_delay = 300;
    net_options.mean_extra_delay = 4'000;
  }
  // The protocol itself does not require FIFO channels (only the
  // compensation model does, and this sweep injects no aborts): all
  // guarantees must survive arbitrary per-channel reordering.
  net_options.fifo_channels = !param.no_fifo;
  SimNet net(net_options, &metrics);

  SystemConfig config;
  config.kind = param.kind;
  config.num_nodes = 4;
  config.seed = param.seed;
  config.mixed_workload = param.nc_fraction > 0;
  config.nc_lock_timeout = 30'000;
  config.manual_safety_delay = 2'000;
  auto system = MakeSystem(config, &net, &metrics, &history);
  if (param.advance_period > 0) {
    system->EnableAutoAdvance(param.advance_period);
  }

  WorkloadOptions wopts;
  wopts.num_nodes = 4;
  wopts.num_entities = 40;
  wopts.zipf_theta = param.zipf_theta;
  wopts.read_fraction = param.read_fraction;
  wopts.noncommuting_fraction = param.nc_fraction;
  wopts.fanout = 2;
  wopts.seed = param.seed * 31 + 7;
  WorkloadGenerator gen(wopts);

  SimRunStats stats =
      RunOpenLoopSim(*system, net, gen, 600, /*mean_interarrival=*/250);

  // Liveness: every submission resolves.
  EXPECT_EQ(stats.committed + stats.aborted, 600u);
  if (param.nc_fraction == 0 && param.kind != SystemKind::kGlobalSync) {
    EXPECT_EQ(stats.aborted, 0u);
  }

  if (param.kind == SystemKind::kThreeV) {
    EXPECT_TRUE(system->CheckInvariants().ok());
    CheckerOptions copts;
    copts.check_version_cut = true;
    CheckResult check = CheckHistory(history.Transactions(), copts);
    EXPECT_TRUE(check.ok()) << check.Summary();
    if (param.nc_fraction == 0) {
      EXPECT_EQ(metrics.lock_waits.load(), 0);
    }
  } else if (param.kind == SystemKind::kGlobalSync) {
    CheckResult check = CheckHistory(history.Transactions());
    EXPECT_TRUE(check.ok()) << check.Summary();
  }

  // No strategy may leak lock table entries once drained. Stop the
  // auto-advance ticker first so the event loop can actually empty, then
  // drain the remaining 2PC decisions / lock cleanups.
  system->DisableAutoAdvance();
  net.loop().Run();
  for (size_t n = 0; n < system->num_nodes(); ++n) {
    EXPECT_EQ(system->node(n).locks().HeldCount(), 0u)
        << "node " << n << " leaked locks";
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  int id = 0;
  auto add = [&](SystemKind kind, uint64_t seed, double theta, double rf,
                 double nc, Micros adv, bool slow = false,
                 bool no_fifo = false) {
    std::string label = std::string(SystemKindName(kind)) + "_s" +
                        std::to_string(seed) + "_t" +
                        std::to_string(static_cast<int>(theta * 10)) + "_r" +
                        std::to_string(static_cast<int>(rf * 100)) + "_nc" +
                        std::to_string(static_cast<int>(nc * 100)) + "_a" +
                        std::to_string(adv) + (slow ? "_slow" : "") +
                        (no_fifo ? "_nofifo" : "") + "_" +
                        std::to_string(id++);
    params.push_back({kind, seed, theta, rf, nc, adv, slow, no_fifo, label});
  };
  for (uint64_t seed : {1, 2, 3}) {
    // Pure 3V at two advancement cadences plus never-advance.
    add(SystemKind::kThreeV, seed, 0.9, 0.2, 0.0, 10'000);
    add(SystemKind::kThreeV, seed, 1.1, 0.4, 0.0, 50'000);
    add(SystemKind::kThreeV, seed, 0.9, 0.2, 0.0, 0);
    // Mixed workload through NC3V.
    add(SystemKind::kThreeV, seed, 0.9, 0.2, 0.1, 10'000);
    add(SystemKind::kThreeV, seed, 0.5, 0.3, 0.5, 20'000);
    // Baselines.
    add(SystemKind::kGlobalSync, seed, 0.9, 0.2, 0.0, 0);
    add(SystemKind::kNoCoord, seed, 0.9, 0.2, 0.0, 0);
    add(SystemKind::kManual, seed, 0.9, 0.2, 0.0, 10'000);
    // Straggler storm: multi-ms heavy-tailed links with frequent
    // advancement - the worst case for the quiescence detector and for
    // dual-version writes. 3V must stay exactly serializable.
    add(SystemKind::kThreeV, seed, 1.2, 0.3, 0.0, 8'000, /*slow=*/true);
    // Reordered channels (no FIFO): serializability must not depend on
    // message order within a channel.
    add(SystemKind::kThreeV, seed, 1.0, 0.3, 0.0, 10'000, /*slow=*/true,
        /*no_fifo=*/true);
    add(SystemKind::kThreeV, seed, 0.9, 0.2, 0.2, 15'000, /*slow=*/false,
        /*no_fifo=*/true);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Strategies, SweepTest,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace threev
