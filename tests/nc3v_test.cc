// NC3V (Section 5): non-commuting transactions via commute/NC locks, the
// version gate and two-phase commit - plus the GlobalSync baseline built
// from the same machinery.
#include <gtest/gtest.h>

#include "threev/baseline/systems.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

struct Env {
  explicit Env(size_t nodes, ClusterOptions options = {},
               SimNetOptions net_options = {})
      : net((net_options.seed = net_options.seed ? net_options.seed : 11,
             net_options),
            &metrics),
        cluster(
            (options.num_nodes = nodes, options.mode = NodeMode::kNC3V,
             options),
            &net, &metrics, &history) {}

  TxnResult Run(NodeId origin, const TxnSpec& spec) {
    TxnResult result;
    bool done = false;
    cluster.Submit(origin, spec, [&](const TxnResult& r) {
      result = r;
      done = true;
    });
    net.loop().RunUntil([&] { return done; });
    return result;
  }

  void Advance() {
    bool done = false;
    EXPECT_TRUE(
        cluster.coordinator().StartAdvancement([&](Status) { done = true; }));
    net.loop().RunUntil([&] { return done; });
  }

  Metrics metrics;
  HistoryRecorder history;
  SimNet net;
  Cluster cluster;
};

TEST(NC3VTest, WellBehavedFastPathStillWorksAndCleansLocks) {
  Env env(3);
  TxnSpec spec = TxnBuilder(0).Add("a", 5).Child(1, {OpAdd("b", 6)}).Build();
  TxnResult r = env.Run(0, spec);
  EXPECT_TRUE(r.status.ok());
  // Commute locks are released by the asynchronous clean-up.
  env.net.loop().Run();
  EXPECT_EQ(env.cluster.node(0).locks().HeldCount(), 0u);
  EXPECT_EQ(env.cluster.node(1).locks().HeldCount(), 0u);
  EXPECT_EQ(env.metrics.lock_waits.load(), 0);
}

TEST(NC3VTest, NonCommutingTransactionCommitsViaTwoPhaseCommit) {
  Env env(3);
  TxnSpec spec = TxnBuilder(0)
                     .Put("price@0", "9.99")
                     .Child(1, {OpPut("price@1", "9.99")})
                     .Build();
  ASSERT_EQ(spec.klass, TxnClass::kNonCommuting);
  TxnResult r = env.Run(0, spec);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.cluster.node(0).store().Read("price@0", 1)->str, "9.99");
  EXPECT_EQ(env.cluster.node(1).store().Read("price@1", 1)->str, "9.99");
  // Deferred completion counters applied at decision time: pairs match.
  env.net.loop().Run();
  EXPECT_EQ(env.cluster.node(0).counters().R(1, 1),
            env.cluster.node(1).counters().C(1, 0));
  EXPECT_EQ(env.cluster.node(0).locks().HeldCount(), 0u);
  EXPECT_EQ(env.cluster.node(1).locks().HeldCount(), 0u);
}

TEST(NC3VTest, NonCommutingReadsMixWithCommutingUpdates) {
  Env env(2);
  EXPECT_TRUE(env.Run(0, TxnBuilder(0).Add("x", 3).Build()).status.ok());
  // A non-commuting txn reading x sees the current (version-1) value.
  TxnSpec nc_read = TxnBuilder(0).Get("x").Put("audit", "done").Build();
  TxnResult r = env.Run(0, nc_read);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.reads.at("x").num, 3);
}

TEST(NC3VTest, ConflictingNonCommutingTransactionsSerialize) {
  Env env(2);
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  TxnSpec t1 = TxnBuilder(0).Put("k", "first").Build();
  TxnSpec t2 = TxnBuilder(0).Put("k", "second").Build();
  env.cluster.Submit(0, t1, [&](const TxnResult& r) {
    r1 = r;
    d1 = true;
  });
  env.cluster.Submit(0, t2, [&](const TxnResult& r) {
    r2 = r;
    d2 = true;
  });
  env.net.loop().RunUntil([&] { return d1 && d2; });
  EXPECT_TRUE(r1.status.ok());
  EXPECT_TRUE(r2.status.ok());
  // Both committed, serialized by the NCW lock; submission order is FIFO
  // on the same channel so "second" wins.
  EXPECT_EQ(env.cluster.node(0).store().Read("k", 1)->str, "second");
  EXPECT_GE(env.metrics.lock_waits.load(), 1);
}

TEST(NC3VTest, DistributedDeadlockResolvedByTimeoutAbort) {
  ClusterOptions options;
  options.nc_lock_timeout = 5'000;
  Env env(2, options);
  // T1 writes a@0 then b@1; T2 writes b@1 then a@0. With messages in
  // flight both can grab their first lock and wait for the second.
  TxnSpec t1 = TxnBuilder(0).Put("a", "t1").Child(1, {OpPut("b", "t1")})
                   .Build();
  TxnSpec t2 = TxnBuilder(1).Put("b", "t2").Child(0, {OpPut("a", "t2")})
                   .Build();
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  env.cluster.Submit(0, t1, [&](const TxnResult& r) {
    r1 = r;
    d1 = true;
  });
  env.cluster.Submit(1, t2, [&](const TxnResult& r) {
    r2 = r;
    d2 = true;
  });
  env.net.loop().RunUntil([&] { return d1 && d2; });
  // At least one aborts (timeout); the system must be clean afterwards.
  EXPECT_TRUE(!r1.status.ok() || !r2.status.ok());
  env.net.loop().Run();
  EXPECT_EQ(env.cluster.node(0).locks().HeldCount(), 0u);
  EXPECT_EQ(env.cluster.node(1).locks().HeldCount(), 0u);
  // A retry now succeeds.
  TxnResult r3 = env.Run(0, t1);
  EXPECT_TRUE(r3.status.ok());
}

TEST(NC3VTest, AbortRollsBackAllParticipants) {
  ClusterOptions options;
  options.nc_lock_timeout = 5'000;
  Env env(2, options);
  // Make key "a" carry version 2 so the NC txn (version 1) conflicts and
  // aborts (Section 5 step 4) - its write to "b" must be rolled back too.
  ASSERT_TRUE(env.cluster.node(1)
                  .store()
                  .Update("b-prior", 1, OpAdd("b-prior", 1))
                  .ok());
  env.cluster.node(0).store().Seed("a", Value{}, 2);
  TxnSpec spec =
      TxnBuilder(1).Put("b", "x").Child(0, {OpPut("a", "x")}).Build();
  TxnResult r = env.Run(1, spec);
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  env.net.loop().Run();
  // b was written before the conflict was discovered at node 0: undone.
  EXPECT_EQ(env.cluster.node(1).store().Read("b", 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env.cluster.node(0).locks().HeldCount(), 0u);
  EXPECT_EQ(env.cluster.node(1).locks().HeldCount(), 0u);
}

TEST(NC3VTest, VersionGateBlocksNonCommutingDuringAdvancement) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 5, .manual = true}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  options.mode = NodeMode::kNC3V;
  options.nc_lock_timeout = 10'000'000;  // gate wait must not time out
  Cluster cluster(options, &net, &metrics);

  // Start an advancement and deliver only phase 1: nodes sit at
  // vu = 2, vr = 0.
  bool advanced = false;
  ASSERT_TRUE(
      cluster.coordinator().StartAdvancement([&](Status) { advanced = true; }));
  while (net.DeliverMatching(-1, -1,
                             static_cast<int>(MsgType::kStartAdvancement))) {
  }
  EXPECT_EQ(cluster.node(0).vu(), 2u);
  EXPECT_EQ(cluster.node(0).vr(), 0u);

  // An NC transaction arrives: V(K) = 2 != vr + 1 = 1 -> it must wait.
  TxnResult r;
  bool done = false;
  cluster.Submit(0, TxnBuilder(0).Put("k", "v").Build(),
                 [&](const TxnResult& res) {
                   r = res;
                   done = true;
                 });
  ASSERT_NE(net.DeliverMatching(-1, 0,
                                static_cast<int>(MsgType::kClientSubmit)),
            0u);
  EXPECT_FALSE(done);
  EXPECT_EQ(metrics.version_gate_waits.load(), 1);
  // The key is untouched while the gate holds.
  EXPECT_TRUE(cluster.node(0).store().VersionsOf("k").empty());

  // Finish the advancement: phase 3 advances vr to 1, waking the gate.
  while (!advanced || !done) {
    net.DeliverAll();
    net.loop().Run();
  }
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(cluster.node(0).store().Read("k", 2)->str, "v");
}

TEST(NC3VTest, WellBehavedWaitsForNonCommutingLockThenProceeds) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 6, .manual = true}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  options.mode = NodeMode::kNC3V;
  Cluster cluster(options, &net, &metrics);

  // NC txn takes NCW on "k" at node 0; hold its 2PC decision in transit so
  // the lock stays held.
  bool nc_done = false;
  cluster.Submit(0, TxnBuilder(0).Put("k", "nc").Build(),
                 [&](const TxnResult&) { nc_done = true; });
  ASSERT_NE(net.DeliverMatching(-1, 0,
                                static_cast<int>(MsgType::kClientSubmit)),
            0u);
  // Executed; prepare/decision messages held. Lock is held.
  EXPECT_TRUE(cluster.node(0).locks().Holds("k", 0) ||
              cluster.node(0).locks().HeldCount() > 0);

  // A well-behaved update on "k" must wait (CU vs NCW conflict).
  bool wb_done = false;
  cluster.Submit(0, TxnBuilder(0).Add("k", 1).Build(),
                 [&](const TxnResult&) { wb_done = true; });
  ASSERT_NE(net.DeliverMatching(-1, 0,
                                static_cast<int>(MsgType::kClientSubmit)),
            0u);
  EXPECT_FALSE(wb_done);
  EXPECT_GE(metrics.lock_waits.load(), 0);

  // Release the 2PC messages: decision commits, lock released, WB runs.
  while (!nc_done || !wb_done) {
    net.DeliverAll();
    net.loop().Run();
  }
  EXPECT_EQ(cluster.node(0).store().Read("k", 1)->str, "nc");
  EXPECT_EQ(cluster.node(0).store().Read("k", 1)->num, 1);
  EXPECT_GE(metrics.lock_waits.load(), 1);
}

TEST(GlobalSyncTest, ReadsSeeCurrentDataImmediately) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 13}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kGlobalSync;
  config.num_nodes = 2;
  auto system = MakeSystem(config, &net, &metrics);

  bool wdone = false, rdone = false;
  TxnResult rres;
  system->Submit(0, TxnBuilder(0).Add("x", 42).Build(),
                 [&](const TxnResult&) { wdone = true; });
  net.loop().RunUntil([&] { return wdone; });
  system->Submit(0, TxnBuilder(0).Get("x").Build(), [&](const TxnResult& r) {
    rres = r;
    rdone = true;
  });
  net.loop().RunUntil([&] { return rdone; });
  // No versioning lag: GlobalSync reads current data (it paid for it with
  // locks and 2PC).
  EXPECT_EQ(rres.reads.at("x").num, 42);
}

TEST(GlobalSyncTest, EverythingRunsTwoPhaseCommit) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 14}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kGlobalSync;
  config.num_nodes = 2;
  auto system = MakeSystem(config, &net, &metrics);
  size_t done = 0;
  for (int i = 0; i < 10; ++i) {
    system->Submit(0,
                   TxnBuilder(0).Add("a", 1).Child(1, {OpAdd("b", 1)}).Build(),
                   [&](const TxnResult& r) {
                     EXPECT_TRUE(r.status.ok());
                     ++done;
                   });
  }
  net.loop().RunUntil([&] { return done >= 10; });
  EXPECT_EQ(done, 10u);
  // 2PC message types flowed (prepare/vote/decision/ack per participant):
  // with versioning messages absent, message count far exceeds the 3V
  // equivalent of ~4 messages per txn.
  EXPECT_GT(metrics.messages_sent.load(), 10 * 8);
}

}  // namespace
}  // namespace threev
