#include <gtest/gtest.h>

#include "threev/txn/operation.h"
#include "threev/txn/plan.h"

namespace threev {
namespace {

TEST(OperationTest, ApplyAdd) {
  Value v;
  OpAdd("x", 5).ApplyTo(v);
  OpAdd("x", -2).ApplyTo(v);
  EXPECT_EQ(v.num, 3);
}

TEST(OperationTest, InsertIsIdempotent) {
  Value v;
  OpInsert("x", 7).ApplyTo(v);
  OpInsert("x", 7).ApplyTo(v);
  EXPECT_EQ(v.ids.size(), 1u);
}

TEST(OperationTest, RemoveMissingIsNoop) {
  Value v;
  OpRemove("x", 7).ApplyTo(v);
  EXPECT_TRUE(v.ids.empty());
}

TEST(OperationTest, PutOverwrites) {
  Value v;
  OpPut("x", "a").ApplyTo(v);
  OpPut("x", "b").ApplyTo(v);
  EXPECT_EQ(v.str, "b");
}

TEST(OperationTest, CommutativityClassification) {
  EXPECT_TRUE(OpIsCommuting(OpKind::kGet));
  EXPECT_TRUE(OpIsCommuting(OpKind::kAdd));
  EXPECT_TRUE(OpIsCommuting(OpKind::kInsert));
  EXPECT_TRUE(OpIsCommuting(OpKind::kRemove));
  EXPECT_FALSE(OpIsCommuting(OpKind::kPut));
  EXPECT_FALSE(OpIsCommuting(OpKind::kMultiply));
}

TEST(OperationTest, AddCommutesWithAddObservably) {
  // Definition 3.1 sanity: order of commuting ops is immaterial.
  Value a, b;
  OpAdd("x", 5).ApplyTo(a);
  OpInsert("x", 1).ApplyTo(a);
  OpInsert("x", 1).ApplyTo(b);
  OpAdd("x", 5).ApplyTo(b);
  EXPECT_EQ(a, b);
}

TEST(OperationTest, MultiplyDoesNotCommuteWithAdd) {
  Value a, b;
  OpAdd("x", 5).ApplyTo(a);
  OpMultiply("x", 2).ApplyTo(a);
  OpMultiply("x", 2).ApplyTo(b);
  OpAdd("x", 5).ApplyTo(b);
  EXPECT_NE(a.num, b.num);
}

TEST(OperationTest, InvertRoundTrips) {
  Value v;
  Operation add = OpAdd("x", 9);
  Operation inv;
  ASSERT_TRUE(add.Invert(inv));
  add.ApplyTo(v);
  inv.ApplyTo(v);
  EXPECT_EQ(v.num, 0);

  Operation ins = OpInsert("x", 3);
  ASSERT_TRUE(ins.Invert(inv));
  ins.ApplyTo(v);
  inv.ApplyTo(v);
  EXPECT_TRUE(v.ids.empty());
}

TEST(OperationTest, PutIsNotInvertible) {
  Operation inv;
  EXPECT_FALSE(OpPut("x", "v").Invert(inv));
  EXPECT_FALSE(OpMultiply("x", 3).Invert(inv));
  EXPECT_FALSE(OpGet("x").Invert(inv));
}

TEST(PlanTest, CountAndParticipants) {
  TxnSpec spec = TxnBuilder(0)
                     .Add("a", 1)
                     .Child(1, {OpAdd("b", 1)})
                     .Child(2, {OpAdd("c", 1)})
                     .Build();
  EXPECT_EQ(spec.root.CountSubtxns(), 3u);
  EXPECT_EQ(spec.root.Participants(), (std::vector<NodeId>{0, 1, 2}));
}

TEST(PlanTest, NestedTree) {
  SubtxnPlan grandchild;
  grandchild.node = 2;
  grandchild.ops.push_back(OpAdd("c", 1));
  SubtxnPlan child;
  child.node = 1;
  child.ops.push_back(OpAdd("b", 1));
  child.children.push_back(grandchild);
  TxnSpec spec = TxnBuilder(0).Add("a", 1).ChildPlan(child).Build();
  EXPECT_EQ(spec.root.CountSubtxns(), 3u);
  EXPECT_FALSE(spec.read_only);
  EXPECT_EQ(spec.klass, TxnClass::kWellBehaved);
}

TEST(PlanTest, DeduceFlagsReadOnly) {
  TxnSpec spec = TxnBuilder(0).Get("a").Child(1, {OpGet("b")}).Build();
  EXPECT_TRUE(spec.read_only);
  EXPECT_EQ(spec.klass, TxnClass::kWellBehaved);
}

TEST(PlanTest, DeduceFlagsNonCommuting) {
  TxnSpec spec = TxnBuilder(0).Put("a", "x").Build();
  EXPECT_FALSE(spec.read_only);
  EXPECT_EQ(spec.klass, TxnClass::kNonCommuting);
}

TEST(PlanTest, ValidateRejectsUnknownNode) {
  TxnSpec spec = TxnBuilder(0).Add("a", 1).Child(5, {OpAdd("b", 1)}).Build();
  EXPECT_EQ(spec.Validate(3).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(spec.Validate(6).ok());
}

TEST(PlanTest, ValidateRejectsNonCommutingInWellBehaved) {
  TxnSpec spec = TxnBuilder(0).Put("a", "x").Build();
  spec.klass = TxnClass::kWellBehaved;  // mis-declared on purpose
  EXPECT_EQ(spec.Validate(3).code(), StatusCode::kInvalidArgument);
}

TEST(PlanTest, ValidateRejectsEmptyKey) {
  TxnSpec spec = TxnBuilder(0).Add("", 1).Build();
  EXPECT_EQ(spec.Validate(3).code(), StatusCode::kInvalidArgument);
}

TEST(PlanTest, CompensationMirrorsTreeWithInverses) {
  TxnSpec spec = TxnBuilder(0)
                     .Add("a", 10)
                     .Op(OpInsert("log", 5))
                     .Child(1, {OpAdd("b", 3)})
                     .Build();
  Result<SubtxnPlan> comp = MakeCompensationPlan(spec.root);
  ASSERT_TRUE(comp.ok());
  ASSERT_EQ(comp->ops.size(), 2u);
  // Reverse order: the Insert's inverse (Remove) comes first.
  EXPECT_EQ(comp->ops[0].kind, OpKind::kRemove);
  EXPECT_EQ(comp->ops[1].kind, OpKind::kAdd);
  EXPECT_EQ(comp->ops[1].arg, -10);
  ASSERT_EQ(comp->children.size(), 1u);
  EXPECT_EQ(comp->children[0].ops[0].arg, -3);
}

TEST(PlanTest, CompensationFailsOnPut) {
  TxnSpec spec = TxnBuilder(0).Put("a", "x").Build();
  EXPECT_FALSE(MakeCompensationPlan(spec.root).ok());
}

TEST(PlanTest, CompensationSkipsReads) {
  TxnSpec spec = TxnBuilder(0).Get("a").Add("b", 1).Build();
  Result<SubtxnPlan> comp = MakeCompensationPlan(spec.root);
  ASSERT_TRUE(comp.ok());
  EXPECT_EQ(comp->ops.size(), 1u);
}

}  // namespace
}  // namespace threev
