#include "threev/core/counters.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace threev {
namespace {

TEST(CounterTableTest, StartsAtZero) {
  CounterTable counters(4);
  EXPECT_EQ(counters.R(0, 2), 0);
  EXPECT_EQ(counters.C(5, 1), 0);
  EXPECT_TRUE(counters.ActiveVersions().empty());
}

TEST(CounterTableTest, IncrementAndRead) {
  CounterTable counters(4);
  counters.IncR(1, 2);
  counters.IncR(1, 2);
  counters.IncC(1, 3);
  EXPECT_EQ(counters.R(1, 2), 2);
  EXPECT_EQ(counters.R(1, 0), 0);
  EXPECT_EQ(counters.C(1, 3), 1);
}

TEST(CounterTableTest, VersionsIndependent) {
  CounterTable counters(2);
  counters.IncR(1, 0);
  counters.IncR(2, 0);
  counters.IncR(2, 0);
  EXPECT_EQ(counters.R(1, 0), 1);
  EXPECT_EQ(counters.R(2, 0), 2);
  EXPECT_EQ(counters.ActiveVersions(), (std::vector<Version>{1, 2}));
}

TEST(CounterTableTest, SnapshotsCoverAllPeers) {
  CounterTable counters(3);
  counters.IncR(1, 2);
  counters.IncC(1, 0);
  auto r = counters.SnapshotR(1);
  auto c = counters.SnapshotC(1);
  ASSERT_EQ(r.size(), 3u);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(r[2], (std::pair<NodeId, int64_t>{2, 1}));
  EXPECT_EQ(c[0], (std::pair<NodeId, int64_t>{0, 1}));
  // Snapshot of an unallocated version reports zeros, not absence.
  auto empty = counters.SnapshotR(9);
  ASSERT_EQ(empty.size(), 3u);
  EXPECT_EQ(empty[0].second, 0);
}

TEST(CounterTableTest, DropBelowGarbageCollects) {
  CounterTable counters(2);
  counters.IncR(0, 0);
  counters.IncR(1, 0);
  counters.IncR(2, 0);
  counters.DropBelow(2);
  EXPECT_EQ(counters.ActiveVersions(), (std::vector<Version>{2}));
  EXPECT_EQ(counters.R(1, 0), 0);
  EXPECT_EQ(counters.R(2, 0), 1);
}

TEST(CounterTableTest, ConcurrentIncrementsAreExact) {
  CounterTable counters(2);
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counters.IncR(1, 1);
        counters.IncC(1, 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counters.R(1, 1), kThreads * kPerThread);
  EXPECT_EQ(counters.C(1, 0), kThreads * kPerThread);
}

}  // namespace
}  // namespace threev
