#include "threev/net/sim_net.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace threev {
namespace {

Message Msg(NodeId from, uint64_t seq) {
  Message m;
  m.type = MsgType::kClientSubmit;
  m.from = from;
  m.seq = seq;
  return m;
}

TEST(SimNetTest, DeliversWithDelay) {
  SimNet net(SimNetOptions{.seed = 1, .min_delay = 100,
                           .mean_extra_delay = 50});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  net.Send(1, Msg(0, 42));
  EXPECT_TRUE(got.empty()) << "delivery is never synchronous";
  net.loop().Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42u);
  EXPECT_GE(net.Now(), 100);
}

TEST(SimNetTest, FifoPerChannel) {
  SimNet net(SimNetOptions{.seed = 9, .min_delay = 10,
                           .mean_extra_delay = 5'000,
                           .fifo_channels = true});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  for (uint64_t i = 0; i < 50; ++i) net.Send(1, Msg(0, i));
  net.loop().Run();
  ASSERT_EQ(got.size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST(SimNetTest, CrossChannelReorderingAllowed) {
  // Different senders to the same destination may be reordered; verify the
  // seeds can produce at least one inversion (huge delay variance).
  SimNet net(SimNetOptions{.seed = 3, .min_delay = 10,
                           .mean_extra_delay = 10'000});
  std::vector<NodeId> got;
  net.RegisterEndpoint(9, [&](const Message& m) { got.push_back(m.from); });
  for (int i = 0; i < 20; ++i) {
    net.Send(9, Msg(0, i));
    net.Send(9, Msg(1, i));
  }
  net.loop().Run();
  ASSERT_EQ(got.size(), 40u);
  bool inversion = false;
  int zeros_seen = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] == 0) ++zeros_seen;
    if (got[i] == 1 && zeros_seen < static_cast<int>(i + 1) / 2) {
      inversion = true;
    }
  }
  EXPECT_TRUE(inversion);
}

TEST(SimNetTest, DeterministicFromSeed) {
  auto run = [](uint64_t seed) {
    SimNet net(SimNetOptions{.seed = seed});
    std::vector<uint64_t> got;
    net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
    net.RegisterEndpoint(2, [&](const Message&) {});
    for (uint64_t i = 0; i < 30; ++i) {
      net.Send(i % 2 ? 1 : 2, Msg(0, i));
    }
    net.loop().Run();
    return std::make_pair(got, net.Now());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7).second, run(8).second);
}

TEST(SimNetTest, MetricsCountMessages) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 1}, &metrics);
  net.RegisterEndpoint(1, [](const Message&) {});
  net.Send(1, Msg(0, 1));
  net.Send(1, Msg(0, 2));
  EXPECT_EQ(metrics.messages_sent.load(), 2);
  EXPECT_GT(metrics.bytes_sent.load(), 0);
}

TEST(SimNetManualTest, HoldsAndDeliversSelectively) {
  SimNet net(SimNetOptions{.manual = true});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  net.RegisterEndpoint(2, [&](const Message& m) { got.push_back(m.seq); });
  net.Send(1, Msg(0, 10));
  net.Send(2, Msg(0, 20));
  net.Send(1, Msg(3, 30));
  EXPECT_EQ(net.pending_count(), 3u);
  EXPECT_TRUE(got.empty());

  // Deliver by matching (from=3, any to, any type).
  EXPECT_NE(net.DeliverMatching(3, -1, -1), 0u);
  EXPECT_EQ(got, (std::vector<uint64_t>{30}));

  // Oldest matching wins.
  EXPECT_NE(net.DeliverMatching(-1, -1,
                                static_cast<int>(MsgType::kClientSubmit)),
            0u);
  EXPECT_EQ(got, (std::vector<uint64_t>{30, 10}));

  net.DeliverAll();
  EXPECT_EQ(got, (std::vector<uint64_t>{30, 10, 20}));
  EXPECT_EQ(net.pending_count(), 0u);
}

TEST(SimNetManualTest, DeliverUnknownIdFails) {
  SimNet net(SimNetOptions{.manual = true});
  EXPECT_FALSE(net.Deliver(123));
  EXPECT_EQ(net.DeliverMatching(0, 0, 0), 0u);
}

TEST(SimNetFaultTest, DownEndpointDropsInFlightAndNewSends) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 4, .min_delay = 100,
                           .mean_extra_delay = 100},
             &metrics);
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });

  net.Send(1, Msg(0, 1));  // in flight when the endpoint dies
  net.SetEndpointUp(1, false);
  net.Send(1, Msg(0, 2));  // dropped immediately
  net.loop().Run();
  EXPECT_TRUE(got.empty()) << "messages to a dead endpoint must be dropped";
  EXPECT_EQ(metrics.messages_dropped.load(), 2);

  // Revival starts a new incarnation: only messages sent after it arrive.
  net.SetEndpointUp(1, true);
  net.Send(1, Msg(0, 3));
  net.loop().Run();
  EXPECT_EQ(got, (std::vector<uint64_t>{3}));
}

TEST(SimNetFaultTest, ReviveDoesNotResurrectHeldMessages) {
  // Manual mode: a held message addressed to an endpoint that died (even if
  // it came back) belongs to a dead incarnation and is discarded, not
  // delivered late into the new one.
  SimNet net(SimNetOptions{.manual = true});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  net.Send(1, Msg(0, 1));
  net.SetEndpointUp(1, false);
  net.SetEndpointUp(1, true);
  net.Send(1, Msg(0, 2));
  net.DeliverAll();
  EXPECT_EQ(got, (std::vector<uint64_t>{2}));
}

TEST(SimNetFaultTest, FifoHoldsAcrossKillWindow) {
  // FIFO audit: under heavy-tailed extra delay, a channel's delivered
  // sequence must stay an in-order subsequence even when the destination
  // dies and revives mid-stream. Messages sent while it is down (or in
  // flight across the window) are dropped, never queued for later.
  SimNet net(SimNetOptions{.seed = 77, .min_delay = 10,
                           .mean_extra_delay = 5'000});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });

  for (uint64_t i = 0; i < 20; ++i) net.Send(1, Msg(0, i));
  net.loop().ScheduleAt(2'000, [&net] { net.SetEndpointUp(1, false); });
  net.loop().ScheduleAt(4'000, [&net] {
    net.SetEndpointUp(1, true);
    for (uint64_t i = 20; i < 40; ++i) net.Send(1, Msg(0, i));
  });
  net.loop().Run();

  EXPECT_LT(got.size(), 40u) << "the kill window must have dropped something";
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1], got[i]) << "FIFO violated at position " << i;
  }
  // Everything sent into the new incarnation arrives (nothing was lost
  // while both endpoints were up).
  size_t second_batch = 0;
  for (uint64_t seq : got) second_batch += seq >= 20 ? 1 : 0;
  EXPECT_EQ(second_batch, 20u);
}

TEST(SimNetFaultTest, DeliveryTapCanKillOnExactMessage) {
  SimNet net(SimNetOptions{.seed = 6});
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  net.SetDeliveryTap([&net](NodeId to, const Message& msg) {
    if (to == 1 && msg.seq == 2) net.SetEndpointUp(1, false);
  });
  for (uint64_t i = 0; i < 4; ++i) net.Send(1, Msg(0, i));
  net.loop().Run();
  // Seq 2 triggered the crash and was itself dropped; nothing after it
  // reaches the dead endpoint.
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1}));
}

TEST(SimNetManualTest, DeliverAllHandlesCascades) {
  // A handler that sends a new message during DeliverAll: the cascade is
  // delivered too.
  SimNet net(SimNetOptions{.manual = true});
  int hops = 0;
  net.RegisterEndpoint(0, [&](const Message& m) {
    ++hops;
    if (m.seq > 0) {
      Message next = m;
      next.seq = m.seq - 1;
      net.Send(0, next);
    }
  });
  net.Send(0, Msg(0, 5));
  net.DeliverAll();
  EXPECT_EQ(hops, 6);
}

// --- fault injector (fuzz-schedule hook) ----------------------------------

TEST(SimNetInjectorTest, InjectedDropsAreCountedAndNotDelivered) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 5, .min_delay = 10,
                           .mean_extra_delay = 20},
             &metrics);
  size_t delivered = 0;
  net.RegisterEndpoint(1, [&](const Message&) { ++delivered; });
  uint32_t budget = 3;
  net.SetFaultInjector([&budget](NodeId, const Message&) {
    SimNet::FaultDecision d;
    if (budget > 0) {
      --budget;
      d.drop = true;
    }
    return d;
  });
  for (uint64_t i = 0; i < 10; ++i) net.Send(1, Msg(0, i));
  net.loop().Run();
  EXPECT_EQ(delivered, 7u);
  EXPECT_EQ(metrics.fault_injected_drops.load(), 3);
  EXPECT_EQ(metrics.messages_dropped.load(), 3);
}

TEST(SimNetInjectorTest, ExtraDelayPreservesPerChannelFifo) {
  // The FIFO-audit property must hold per channel even when the injector
  // stretches individual deliveries: the watermark clamp sees the total
  // delay, so a delayed message still never overtakes its predecessors.
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 7, .min_delay = 10,
                           .mean_extra_delay = 100,
                           .fifo_channels = true},
             &metrics);
  std::vector<uint64_t> got;
  net.RegisterEndpoint(1, [&](const Message& m) { got.push_back(m.seq); });
  net.SetFaultInjector([](NodeId, const Message& m) {
    SimNet::FaultDecision d;
    if (m.seq % 3 == 0) d.extra_delay = 5'000;  // every third message lags
    return d;
  });
  for (uint64_t i = 0; i < 30; ++i) net.Send(1, Msg(0, i));
  net.loop().Run();
  ASSERT_EQ(got.size(), 30u);
  for (uint64_t i = 0; i < 30; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(metrics.fault_injected_delays.load(), 0);
}

TEST(SimNetInjectorTest, BypassFifoReordersOnlyTheTargetedChannel) {
  // Channel 0->9 is reordered (bypass skips the watermark clamp), channel
  // 1->9 stays strictly FIFO: reorder windows are channel-scoped.
  SimNet net(SimNetOptions{.seed = 11, .min_delay = 10,
                           .mean_extra_delay = 10'000,
                           .fifo_channels = true});
  std::vector<uint64_t> from0;
  std::vector<uint64_t> from1;
  net.RegisterEndpoint(9, [&](const Message& m) {
    (m.from == 0 ? from0 : from1).push_back(m.seq);
  });
  net.SetFaultInjector([](NodeId, const Message& m) {
    SimNet::FaultDecision d;
    d.bypass_fifo = m.from == 0;
    return d;
  });
  for (uint64_t i = 0; i < 40; ++i) {
    net.Send(9, Msg(0, i));
    net.Send(9, Msg(1, i));
  }
  net.loop().Run();
  ASSERT_EQ(from0.size(), 40u);
  ASSERT_EQ(from1.size(), 40u);
  EXPECT_FALSE(std::is_sorted(from0.begin(), from0.end()))
      << "huge delay variance plus bypass must produce an inversion";
  EXPECT_TRUE(std::is_sorted(from1.begin(), from1.end()))
      << "the untargeted channel must stay FIFO";
}

}  // namespace
}  // namespace threev
