// End-to-end smoke: a 3V cluster on SimNet runs the paper's hospital
// scenario with concurrent updates, reads and version advancement.
#include <gtest/gtest.h>

#include "threev/baseline/systems.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

namespace threev {
namespace {

TEST(SmokeTest, SingleUpdateAndReadAfterAdvancement) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 1}, &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  Cluster cluster(options, &net, &metrics);

  // A two-node update: +100 at node 0, +50 at node 1.
  TxnSpec update = TxnBuilder(0)
                       .Add("bal/p@0", 100)
                       .Child(1, {OpAdd("bal/p@1", 50)})
                       .Build();
  TxnResult update_result;
  bool update_done = false;
  cluster.Submit(0, update, [&](const TxnResult& r) {
    update_result = r;
    update_done = true;
  });
  net.loop().Run();
  ASSERT_TRUE(update_done);
  EXPECT_TRUE(update_result.status.ok());
  EXPECT_EQ(update_result.version, 1u);

  // Before advancement, a read (version 0) sees nothing.
  TxnResult read_result;
  bool read_done = false;
  TxnSpec read = TxnBuilder(0)
                     .Get("bal/p@0")
                     .Child(1, {OpGet("bal/p@1")})
                     .Build();
  cluster.Submit(0, read, [&](const TxnResult& r) {
    read_result = r;
    read_done = true;
  });
  net.loop().Run();
  ASSERT_TRUE(read_done);
  EXPECT_EQ(read_result.version, 0u);
  EXPECT_EQ(read_result.reads.at("bal/p@0").num, 0);
  EXPECT_EQ(read_result.reads.at("bal/p@1").num, 0);

  // Advance versions; then reads (version 1) see the update.
  bool advanced = false;
  ASSERT_TRUE(cluster.coordinator().StartAdvancement(
      [&](Status s) { advanced = s.ok(); }));
  net.loop().Run();
  ASSERT_TRUE(advanced);
  EXPECT_EQ(cluster.node(0).vu(), 2u);
  EXPECT_EQ(cluster.node(0).vr(), 1u);

  read_done = false;
  cluster.Submit(0, read, [&](const TxnResult& r) {
    read_result = r;
    read_done = true;
  });
  net.loop().Run();
  ASSERT_TRUE(read_done);
  EXPECT_EQ(read_result.version, 1u);
  EXPECT_EQ(read_result.reads.at("bal/p@0").num, 100);
  EXPECT_EQ(read_result.reads.at("bal/p@1").num, 50);

  EXPECT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.TotalPendingSubtxns(), 0u);
}

TEST(SmokeTest, WorkloadWithAdvancementIsSerializable) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 7}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kThreeV;
  config.num_nodes = 4;
  config.seed = 7;
  auto system = MakeSystem(config, &net, &metrics, &history);
  system->EnableAutoAdvance(20'000);

  WorkloadOptions wopts;
  wopts.num_nodes = 4;
  wopts.num_entities = 50;
  wopts.read_fraction = 0.3;
  wopts.seed = 7;
  WorkloadGenerator gen(wopts);
  SimRunStats stats = RunOpenLoopSim(*system, net, gen, 500, 500);

  EXPECT_EQ(stats.committed, 500u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_TRUE(system->CheckInvariants().ok());
  EXPECT_GT(metrics.advancements_completed.load(), 0);

  CheckerOptions copts;
  copts.check_version_cut = true;
  CheckResult check = CheckHistory(history.Transactions(), copts);
  EXPECT_TRUE(check.ok()) << check.Summary();
  EXPECT_GT(check.reads_checked, 0u);
}

}  // namespace
}  // namespace threev
