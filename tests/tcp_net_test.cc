// "Manual networking plumbing": the protocol over real TCP sockets. Each
// TcpNet instance plays one process; here three share this test process
// (node 0, node 1, and a coordinator+client host) and speak the length-
// prefixed frame protocol over loopback.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "threev/common/wait_group.h"
#include "threev/core/cluster.h"
#include "threev/net/tcp_net.h"

namespace threev {
namespace {

uint16_t BasePort() {
  // Spread across runs to dodge TIME_WAIT collisions.
  return static_cast<uint16_t>(42000 + (::getpid() % 1000) * 3);
}

class TcpClusterTest : public ::testing::Test {
 protected:
  static constexpr NodeId kNode0 = 0, kNode1 = 1, kCoord = 2, kClient = 3;

  void SetUp() override {
    uint16_t base = BasePort();
    std::map<NodeId, std::string> peers = {
        {kNode0, "127.0.0.1:" + std::to_string(base)},
        {kNode1, "127.0.0.1:" + std::to_string(base + 1)},
        {kCoord, "127.0.0.1:" + std::to_string(base + 2)},
        {kClient, "127.0.0.1:" + std::to_string(base + 2)},
    };
    net0_ = std::make_unique<TcpNet>(
        TcpNetOptions{.peers = peers, .listen_port = base}, &metrics_);
    net1_ = std::make_unique<TcpNet>(
        TcpNetOptions{.peers = peers,
                      .listen_port = static_cast<uint16_t>(base + 1)},
        &metrics_);
    net2_ = std::make_unique<TcpNet>(
        TcpNetOptions{.peers = peers,
                      .listen_port = static_cast<uint16_t>(base + 2)},
        &metrics_);

    NodeOptions n0;
    n0.id = kNode0;
    n0.num_nodes = 2;
    node0_ = std::make_unique<Node>(n0, net0_.get(), &metrics_);
    net0_->RegisterEndpoint(kNode0, [this](const Message& m) {
      node0_->HandleMessage(m);
    });

    NodeOptions n1;
    n1.id = kNode1;
    n1.num_nodes = 2;
    node1_ = std::make_unique<Node>(n1, net1_.get(), &metrics_);
    net1_->RegisterEndpoint(kNode1, [this](const Message& m) {
      node1_->HandleMessage(m);
    });

    CoordinatorOptions copts;
    copts.id = kCoord;
    copts.num_nodes = 2;
    copts.poll_interval = 5'000;
    coordinator_ =
        std::make_unique<AdvanceCoordinator>(copts, net2_.get(), &metrics_);
    net2_->RegisterEndpoint(kCoord, [this](const Message& m) {
      coordinator_->HandleMessage(m);
    });
    client_ = std::make_unique<Client>(kClient, net2_.get());
    net2_->RegisterEndpoint(kClient, [this](const Message& m) {
      client_->HandleMessage(m);
    });

    ASSERT_TRUE(net0_->Start().ok());
    ASSERT_TRUE(net1_->Start().ok());
    ASSERT_TRUE(net2_->Start().ok());
  }

  void TearDown() override {
    net0_->Stop();
    net1_->Stop();
    net2_->Stop();
  }

  Metrics metrics_;
  std::unique_ptr<TcpNet> net0_, net1_, net2_;
  std::unique_ptr<Node> node0_, node1_;
  std::unique_ptr<AdvanceCoordinator> coordinator_;
  std::unique_ptr<Client> client_;
};

TEST_F(TcpClusterTest, DistributedTransactionOverSockets) {
  WaitGroup wg;
  wg.Add(1);
  TxnResult result;
  client_->Submit(kNode0,
                  TxnBuilder(kNode0)
                      .Add("a", 10)
                      .Child(kNode1, {OpAdd("b", 20)})
                      .Build(),
                  [&](const TxnResult& r) {
                    result = r;
                    wg.Done();
                  });
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(15'000)));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.version, 1u);
  EXPECT_EQ(node0_->store().Read("a", 1)->num, 10);
  EXPECT_EQ(node1_->store().Read("b", 1)->num, 20);
}

TEST_F(TcpClusterTest, AdvancementAndReadOverSockets) {
  WaitGroup wg;
  wg.Add(1);
  client_->Submit(kNode0,
                  TxnBuilder(kNode0)
                      .Add("x", 5)
                      .Child(kNode1, {OpAdd("y", 6)})
                      .Build(),
                  [&](const TxnResult&) { wg.Done(); });
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(15'000)));

  WaitGroup adv;
  adv.Add(1);
  ASSERT_TRUE(coordinator_->StartAdvancement([&](Status) { adv.Done(); }));
  ASSERT_TRUE(adv.WaitFor(std::chrono::milliseconds(15'000)));
  EXPECT_EQ(node0_->vr(), 1u);
  EXPECT_EQ(node1_->vr(), 1u);

  WaitGroup rd;
  rd.Add(1);
  TxnResult read;
  client_->Submit(kNode1,
                  TxnBuilder(kNode1)
                      .Get("y")
                      .Child(kNode0, {OpGet("x")})
                      .Build(),
                  [&](const TxnResult& r) {
                    read = r;
                    rd.Done();
                  });
  ASSERT_TRUE(rd.WaitFor(std::chrono::milliseconds(15'000)));
  EXPECT_EQ(read.version, 1u);
  EXPECT_EQ(read.reads.at("x").num, 5);
  EXPECT_EQ(read.reads.at("y").num, 6);
}

TEST_F(TcpClusterTest, SurvivesGarbageConnection) {
  // An unrelated client connects to node 0's port and sends byte soup; the
  // node must drop that connection and keep serving real traffic.
  uint16_t port = BasePort();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Frame claiming an absurd length, then junk.
  uint8_t junk[32];
  uint32_t bogus_len = 0xff000000;
  memcpy(junk, &bogus_len, 4);
  for (size_t i = 4; i < sizeof(junk); ++i) junk[i] = static_cast<uint8_t>(i);
  ASSERT_GT(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL), 0);
  ::close(fd);

  // A short malformed-but-plausible frame: 8-byte header + truncated body.
  int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  uint32_t small_len = 4, dest = 0;
  uint8_t frame[12];
  memcpy(frame, &small_len, 4);
  memcpy(frame + 4, &dest, 4);
  memset(frame + 8, 0xab, 4);
  ASSERT_GT(::send(fd2, frame, sizeof(frame), MSG_NOSIGNAL), 0);
  ::close(fd2);

  // Real traffic still works.
  WaitGroup wg;
  wg.Add(1);
  TxnResult result;
  client_->Submit(kNode0, TxnBuilder(kNode0).Add("g", 1).Build(),
                  [&](const TxnResult& r) {
                    result = r;
                    wg.Done();
                  });
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(15'000)));
  EXPECT_TRUE(result.status.ok());
}

TEST_F(TcpClusterTest, PipelinedLoadOverSockets) {
  constexpr int kTotal = 60;
  WaitGroup wg;
  wg.Add(kTotal);
  std::atomic<int> committed{0};
  for (int i = 0; i < kTotal; ++i) {
    NodeId origin = i % 2 == 0 ? kNode0 : kNode1;
    NodeId other = origin == kNode0 ? kNode1 : kNode0;
    client_->Submit(origin,
                    TxnBuilder(origin)
                        .Add("cnt@" + std::to_string(origin), 1)
                        .Child(other, {OpAdd("cnt@" + std::to_string(other),
                                             1)})
                        .Build(),
                    [&](const TxnResult& r) {
                      if (r.status.ok()) committed.fetch_add(1);
                      wg.Done();
                    });
  }
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(30'000)));
  EXPECT_EQ(committed.load(), kTotal);
  EXPECT_EQ(node0_->store().Read("cnt@0", 1)->num, kTotal);
  EXPECT_EQ(node1_->store().Read("cnt@1", 1)->num, kTotal);
}

}  // namespace
}  // namespace threev
