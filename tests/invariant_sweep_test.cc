// Continuous invariant auditing: steps the discrete-event simulation one
// event at a time and checks the paper's Section 4.4 invariants after
// EVERY event - not just at quiescent points. Catches transient
// violations (a 4th version copy, vr >= vu, property 2(b) breakage) that
// end-of-run checks would miss.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/workload/workload.h"

namespace threev {
namespace {

struct SweepCase {
  uint64_t seed;
  Micros advance_period;
  Micros mean_extra_delay;
  double nc_fraction;
};

class InvariantSweepTest : public ::testing::TestWithParam<SweepCase> {};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return "s" + std::to_string(info.param.seed) + "_a" +
         std::to_string(info.param.advance_period) + "_d" +
         std::to_string(info.param.mean_extra_delay) + "_nc" +
         std::to_string(static_cast<int>(info.param.nc_fraction * 100));
}

TEST_P(InvariantSweepTest, HoldAfterEveryEvent) {
  const SweepCase& c = GetParam();
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = c.seed, .min_delay = 200,
                           .mean_extra_delay = c.mean_extra_delay},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 4;
  options.mode = c.nc_fraction > 0 ? NodeMode::kNC3V : NodeMode::kPure3V;
  options.nc_lock_timeout = 20'000;
  Cluster cluster(options, &net, &metrics);
  cluster.coordinator().EnableAutoAdvance(c.advance_period);

  WorkloadOptions wopts;
  wopts.num_nodes = 4;
  wopts.num_entities = 30;
  wopts.zipf_theta = 1.1;
  wopts.read_fraction = 0.25;
  wopts.noncommuting_fraction = c.nc_fraction;
  wopts.fanout = 2;
  wopts.seed = c.seed + 5;
  WorkloadGenerator gen(wopts);

  Rng arrivals(c.seed * 7 + 1);
  size_t done = 0;
  const size_t total = 300;
  Micros t = 0;
  for (size_t i = 0; i < total; ++i) {
    t += static_cast<Micros>(arrivals.Exponential(200));
    WorkloadJob job = gen.Next();
    net.loop().ScheduleAt(t, [&cluster, job, &done] {
      cluster.Submit(job.origin, job.spec,
                     [&done](const TxnResult&) { ++done; });
    });
  }

  size_t events = 0;
  while (done < total) {
    ASSERT_TRUE(net.loop().Step()) << "simulation stalled at event "
                                   << events << " done=" << done;
    ++events;
    // The full invariant set, after every single event. The per-node
    // checks are cheap; property 2(b) is O(nodes^2).
    Status s = cluster.CheckInvariants();
    ASSERT_TRUE(s.ok()) << "after event " << events << ": " << s.ToString();
  }
  EXPECT_GT(events, total);
  // With fast links an advancement certainly completes within the run;
  // with multi-ms tails the first one may still be mid-flight when the
  // last transaction resolves (the invariants above were checked at every
  // event either way).
  if (c.advance_period <= 10'000 && c.mean_extra_delay <= 1'000) {
    EXPECT_GT(metrics.advancements_completed.load(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InvariantSweepTest,
    ::testing::Values(SweepCase{1, 5'000, 300, 0.0},
                      SweepCase{2, 5'000, 3'000, 0.0},
                      SweepCase{3, 10'000, 1'000, 0.15},
                      SweepCase{4, 2'000, 300, 0.0},
                      SweepCase{5, 8'000, 2'000, 0.3}),
    CaseName);

}  // namespace
}  // namespace threev
