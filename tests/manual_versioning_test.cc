// Unit tests of the Manual Versioning baseline engine itself (the
// anomaly-demonstration tests live in baseline_test.cc).
#include "threev/baseline/manual_versioning.h"

#include <gtest/gtest.h>

#include "threev/net/sim_net.h"

namespace threev {
namespace {

struct Env {
  Env(Micros safety_delay = 5'000)
      : net(SimNetOptions{.seed = 8}, &metrics),
        system(Opts(safety_delay), &net, &metrics) {}

  static ManualVersioningOptions Opts(Micros safety_delay) {
    ManualVersioningOptions options;
    options.num_nodes = 2;
    options.safety_delay = safety_delay;
    return options;
  }

  TxnResult Run(NodeId origin, const TxnSpec& spec) {
    TxnResult result;
    bool done = false;
    system.Submit(origin, spec, [&](const TxnResult& r) {
      result = r;
      done = true;
    });
    net.loop().RunUntil([&] { return done; });
    return result;
  }

  Metrics metrics;
  SimNet net;
  ManualVersioningSystem system;
};

TEST(ManualVersioningTest, UpdatesAccumulateInCurrentPeriod) {
  Env env;
  TxnResult r = env.Run(0, TxnBuilder(0).Add("x", 5).Build());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.version, 1u);
  EXPECT_EQ(env.system.node(0).store().Read("x", 1)->num, 5);
}

TEST(ManualVersioningTest, ReadsLagUntilSwitchPlusDelay) {
  Env env(/*safety_delay=*/5'000);
  env.Run(0, TxnBuilder(0).Add("x", 5).Build());
  // Before any switch: reads see period 0 (nothing).
  TxnResult r0 = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_EQ(r0.version, 0u);
  EXPECT_EQ(r0.reads.at("x").num, 0);

  env.system.SwitchPeriod();
  // Immediately after the switch the safety delay has not elapsed: the
  // read period is still 0.
  env.net.loop().RunFor(1'000);
  EXPECT_EQ(env.system.node(0).vu(), 2u);
  EXPECT_EQ(env.system.node(0).vr(), 0u);

  env.net.loop().Run();  // safety delay fires
  EXPECT_EQ(env.system.node(0).vr(), 1u);
  TxnResult r1 = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_EQ(r1.version, 1u);
  EXPECT_EQ(r1.reads.at("x").num, 5);
}

TEST(ManualVersioningTest, WritesLandInLocalPeriodAtExecutionTime) {
  Env env;
  // Advance only node 1 to period 2 (simulate the unsynchronized switch
  // reaching nodes at different times).
  Message m;
  m.type = MsgType::kStartAdvancement;
  m.from = 2;  // driver id
  m.version = 2;
  env.system.node(1).HandleMessage(m);
  EXPECT_EQ(env.system.node(1).vu(), 2u);
  EXPECT_EQ(env.system.node(0).vu(), 1u);

  // A transaction rooted at node 0 (period 1) with a child at node 1:
  // the child's write lands in node 1's CURRENT period 2.
  TxnResult r = env.Run(
      0, TxnBuilder(0).Add("a", 1).Child(1, {OpAdd("b", 2)}).Build());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.system.node(0).store().VersionsOf("a"),
            (std::vector<Version>{1}));
  EXPECT_EQ(env.system.node(1).store().VersionsOf("b"),
            (std::vector<Version>{2}));
}

TEST(ManualVersioningTest, AutoAdvanceSwitchesRepeatedly) {
  Env env(/*safety_delay=*/1'000);
  env.system.EnableAutoAdvance(10'000);
  env.net.loop().RunFor(45'000);
  env.system.DisableAutoAdvance();
  env.net.loop().Run();
  EXPECT_GE(env.system.node(0).vu(), 4u);
  EXPECT_GE(env.system.node(0).vr(), 3u);
}

TEST(ManualVersioningTest, OldPeriodsGarbageCollected) {
  Env env(/*safety_delay=*/1'000);
  for (int period = 0; period < 4; ++period) {
    env.Run(0, TxnBuilder(0).Add("x", 1).Build());
    env.system.SwitchPeriod();
    env.net.loop().Run();
  }
  // Periods strictly below vr-1 are gone.
  std::vector<Version> versions = env.system.node(0).store().VersionsOf("x");
  ASSERT_FALSE(versions.empty());
  EXPECT_GE(versions.front(), env.system.node(0).vr() >= 1
                                  ? env.system.node(0).vr() - 1
                                  : 0);
}

}  // namespace
}  // namespace threev
