// Model-based property test for VersionedStore: random interleavings of
// versioned updates, reads and garbage collection are checked against a
// simple reference model that replays committed operations per version.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "threev/common/random.h"
#include "threev/storage/versioned_store.h"

namespace threev {
namespace {

// Reference model: full history of write ops per key; the value of key k
// at version v is the fold of all ops with version <= v... except that 3V
// semantics are NOT snapshot-at-version: an op at version w applies to
// every version >= w that EXISTS AT THE TIME OF THE WRITE. To keep the
// model simple and still binding, we model exactly the store's documented
// rules over explicit version sets.
struct ModelRecord {
  std::map<Version, Value> versions;

  void Update(Version v, const Operation& op) {
    if (versions.find(v) == versions.end()) {
      // copy max existing <= v
      Value base;
      for (auto& [mv, val] : versions) {
        if (mv <= v) base = val;
      }
      versions[v] = base;
    }
    for (auto& [mv, val] : versions) {
      if (mv >= v) op.ApplyTo(val);
    }
  }

  Result<Value> Read(Version v) const {
    const Value* best = nullptr;
    for (auto& [mv, val] : versions) {
      if (mv <= v) best = &val;
    }
    if (best == nullptr) return Status::NotFound("");
    return *best;
  }

  void Gc(Version vr_new) {
    if (versions.count(vr_new)) {
      versions.erase(versions.begin(), versions.find(vr_new));
    } else {
      // relabel newest older version
      auto it = versions.lower_bound(vr_new);
      if (it == versions.begin()) return;
      --it;
      Value moved = it->second;
      versions.erase(versions.begin(), std::next(it));
      versions[vr_new] = moved;
    }
  }
};

class StorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorePropertyTest, MatchesModelUnderRandomOps) {
  Rng rng(GetParam());
  VersionedStore store;
  std::map<std::string, ModelRecord> model;
  const std::vector<std::string> keys = {"a", "b", "c"};

  Version max_written = 0;
  Version gc_floor = 0;
  for (int step = 0; step < 3000; ++step) {
    const std::string& key = keys[rng.Uniform(keys.size())];
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      // Write at a version in the "live window" [gc_floor, gc_floor+2] -
      // the protocol never writes below the GC floor.
      Version v = gc_floor + static_cast<Version>(rng.Uniform(3));
      Operation op =
          rng.Bernoulli(0.7)
              ? OpAdd(key, rng.UniformRange(-5, 5))
              : OpInsert(key, 1000 + static_cast<uint64_t>(step));
      auto applied = store.Update(key, v, op);
      ASSERT_TRUE(applied.ok());
      model[key].Update(v, op);
      max_written = std::max(max_written, v);
    } else if (dice < 0.95) {
      Version v = gc_floor + static_cast<Version>(rng.Uniform(4));
      Result<Value> got = store.Read(key, v);
      Result<Value> want = model[key].Read(v);
      ASSERT_EQ(got.ok(), want.ok()) << key << " v" << v << " step " << step;
      if (got.ok()) {
        ASSERT_EQ(*got, *want) << key << " v" << v << " step " << step;
      }
    } else if (max_written > gc_floor) {
      // Garbage-collect up to a version the protocol could have chosen.
      gc_floor += 1;
      store.GarbageCollect(gc_floor);
      for (auto& [k, rec] : model) rec.Gc(gc_floor);
    }
  }

  // Final deep comparison.
  for (const auto& key : keys) {
    auto dump = store.DumpItem(key);
    auto& rec = model[key];
    ASSERT_EQ(dump.size(), rec.versions.size()) << key;
    for (auto& [v, val] : rec.versions) {
      ASSERT_TRUE(dump.count(v)) << key << " v" << v;
      ASSERT_EQ(dump[v], val) << key << " v" << v;
    }
  }
  EXPECT_LE(store.MaxVersionsObserved(), 4u);  // window of 3 + GC slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class UndoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UndoPropertyTest, UndoRestoresExactState) {
  Rng rng(GetParam());
  VersionedStore store;
  store.Seed("k", Value{}, 0);
  for (int round = 0; round < 200; ++round) {
    Version v = 1 + static_cast<Version>(rng.Uniform(2));
    auto before = store.DumpItem("k");
    std::vector<UndoEntry> undo;
    int ops = 1 + static_cast<int>(rng.Uniform(4));
    bool aborted = false;
    for (int i = 0; i < ops; ++i) {
      Operation op = rng.Bernoulli(0.5)
                         ? OpAdd("k", rng.UniformRange(1, 9))
                         : OpPut("k", "r" + std::to_string(round));
      UndoEntry u;
      Status s = store.UpdateExact("k", v, op, &u);
      if (!s.ok()) {
        aborted = true;
        break;
      }
      undo.push_back(std::move(u));
    }
    if (aborted || rng.Bernoulli(0.5)) {
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) store.Undo(*it);
      auto after = store.DumpItem("k");
      ASSERT_EQ(after.size(), before.size()) << "round " << round;
      for (auto& [mv, val] : before) {
        ASSERT_TRUE(after.count(mv));
        ASSERT_EQ(after[mv], val) << "round " << round << " v" << mv;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoPropertyTest,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace threev
