// Version advancement correctness: the two-wave quiescence check must
// never declare a version quiescent while any of its subtransactions is
// still executing or in transit (DESIGN.md section 5).
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

constexpr int kSubmit = static_cast<int>(MsgType::kClientSubmit);
constexpr int kSubtxn = static_cast<int>(MsgType::kSubtxnRequest);
constexpr int kNotice = static_cast<int>(MsgType::kCompletionNotice);
constexpr int kStartAdv = static_cast<int>(MsgType::kStartAdvancement);
constexpr int kStartAdvAck = static_cast<int>(MsgType::kStartAdvancementAck);
constexpr int kCounterRead = static_cast<int>(MsgType::kCounterRead);
constexpr int kCounterReadReply =
    static_cast<int>(MsgType::kCounterReadReply);

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest()
      : net_(SimNetOptions{.manual = true}, &metrics_),
        cluster_(MakeOptions(), &net_, &metrics_) {}

  static ClusterOptions MakeOptions() {
    ClusterOptions options;
    options.num_nodes = 2;
    return options;
  }

  void DeliverAllOf(int type) {
    while (net_.DeliverMatching(-1, -1, type) != 0) {
    }
  }

  Metrics metrics_;
  SimNet net_;
  Cluster cluster_;
};

TEST_F(CoordinatorTest, DoesNotDeclareQuiescenceWithSubtxnInTransit) {
  // Update with a child at node 1; hold the child request in transit.
  TxnSpec spec = TxnBuilder(0).Add("a", 1).Child(1, {OpAdd("b", 1)}).Build();
  bool txn_done = false;
  cluster_.Submit(0, spec, [&](const TxnResult&) { txn_done = true; });
  ASSERT_NE(net_.DeliverMatching(-1, 0, kSubmit), 0u);
  // Root executed; child request 0->1 is now in flight (held).

  bool advanced = false;
  ASSERT_TRUE(cluster_.coordinator().StartAdvancement(
      [&](Status) { advanced = true; }));
  DeliverAllOf(kStartAdv);
  DeliverAllOf(kStartAdvAck);

  // Phase 2, round 1: wave C then wave R. The in-transit child makes
  // R(1)[0][1] = 1 vs C(1)[0][1] = 0, so the round must NOT match.
  DeliverAllOf(kCounterRead);       // wave C requests
  DeliverAllOf(kCounterReadReply);  // wave C replies -> triggers wave R
  DeliverAllOf(kCounterRead);       // wave R requests
  DeliverAllOf(kCounterReadReply);  // wave R replies -> evaluation
  EXPECT_FALSE(advanced);
  EXPECT_TRUE(cluster_.coordinator().running());
  EXPECT_EQ(cluster_.node(0).vr(), 0u);

  // Now let the transaction finish: child executes, notices flow up.
  ASSERT_NE(net_.DeliverMatching(0, 1, kSubtxn), 0u);
  ASSERT_NE(net_.DeliverMatching(1, 0, kNotice), 0u);
  // Root complete -> result to client.
  net_.DeliverAll();
  EXPECT_TRUE(txn_done);

  // The retry round is scheduled on the virtual clock; run it.
  while (!advanced) {
    net_.loop().Run();
    net_.DeliverAll();
  }
  EXPECT_EQ(cluster_.node(0).vr(), 1u);
  EXPECT_EQ(cluster_.node(1).vr(), 1u);
  EXPECT_GE(metrics_.quiescence_rounds.load(), 2);
}

TEST_F(CoordinatorTest, NewRootsDuringPhaseTwoDoNotBlockIt) {
  bool advanced = false;
  ASSERT_TRUE(cluster_.coordinator().StartAdvancement(
      [&](Status) { advanced = true; }));
  DeliverAllOf(kStartAdv);
  DeliverAllOf(kStartAdvAck);

  // A new update arrives mid-phase-2: it gets version 2 and must not delay
  // quiescence of version 1 - but it must not be visible to reads either.
  TxnSpec spec = TxnBuilder(0).Add("x", 7).Build();
  bool txn_done = false;
  cluster_.Submit(0, spec, [&](const TxnResult& r) {
    EXPECT_EQ(r.version, 2u);
    txn_done = true;
  });
  ASSERT_NE(net_.DeliverMatching(-1, 0, kSubmit), 0u);

  while (!advanced) {
    net_.loop().Run();
    net_.DeliverAll();
  }
  EXPECT_TRUE(txn_done);
  EXPECT_EQ(cluster_.node(0).vr(), 1u);
  // Version-2 data exists but reads use version 1 (x never existed there).
  TxnResult read;
  bool read_done = false;
  cluster_.Submit(0, TxnBuilder(0).Get("x").Build(), [&](const TxnResult& r) {
    read = r;
    read_done = true;
  });
  net_.DeliverAll();
  ASSERT_TRUE(read_done);
  EXPECT_EQ(read.reads.at("x").num, 0);
}

TEST_F(CoordinatorTest, SecondAdvancementRejectedWhileRunning) {
  ASSERT_TRUE(cluster_.coordinator().StartAdvancement());
  EXPECT_FALSE(cluster_.coordinator().StartAdvancement());
  while (cluster_.coordinator().running()) {
    net_.loop().Run();
    net_.DeliverAll();
  }
  EXPECT_TRUE(cluster_.coordinator().StartAdvancement());
  while (cluster_.coordinator().running()) {
    net_.loop().Run();
    net_.DeliverAll();
  }
  EXPECT_EQ(cluster_.coordinator().completed_count(), 2u);
  EXPECT_EQ(cluster_.node(0).vr(), 2u);
  EXPECT_EQ(cluster_.node(0).vu(), 3u);
}

TEST_F(CoordinatorTest, Phase4WaitsForOldReads) {
  // A read-only transaction with a child held in transit keeps version 0
  // busy: phases 1-3 may complete (updates quiesce), but GC must wait.
  TxnSpec read = TxnBuilder(0).Get("a").Child(1, {OpGet("b")}).Build();
  bool read_done = false;
  cluster_.Submit(0, read, [&](const TxnResult&) { read_done = true; });
  ASSERT_NE(net_.DeliverMatching(-1, 0, kSubmit), 0u);
  // Child query request 0->1 held in transit; version 0 not quiescent.

  cluster_.node(0).store().Seed("a", Value{}, 0);
  cluster_.node(1).store().Seed("b", Value{}, 0);

  bool advanced = false;
  ASSERT_TRUE(cluster_.coordinator().StartAdvancement(
      [&](Status) { advanced = true; }));
  // Let everything flow except the held read child: deliver all messages
  // not of type kSubtxnRequest, plus timer-driven retries, a few times.
  for (int i = 0; i < 30 && !advanced; ++i) {
    while (true) {
      uint64_t id = 0;
      for (const auto& pm : net_.Pending()) {
        if (pm.msg.type != MsgType::kSubtxnRequest) {
          id = pm.id;
          break;
        }
      }
      if (id == 0) break;
      net_.Deliver(id);
    }
    net_.loop().Run();
  }
  EXPECT_FALSE(advanced);  // GC blocked by the version-0 read
  // Reads switched already (phase 3 done): vr is 1.
  EXPECT_EQ(cluster_.node(0).vr(), 1u);
  // Version 0 still present: not garbage-collected.
  EXPECT_EQ(cluster_.node(0).store().VersionsOf("a").front(), 0u);

  // Release the read; advancement completes and GC runs.
  while (!advanced) {
    net_.DeliverAll();
    net_.loop().Run();
  }
  EXPECT_TRUE(read_done);
  EXPECT_EQ(cluster_.node(0).store().VersionsOf("a").front(), 1u);
}

TEST_F(CoordinatorTest, AutoAdvanceTicksRepeatedly) {
  cluster_.coordinator().EnableAutoAdvance(5'000);
  for (int i = 0; i < 200 && cluster_.coordinator().completed_count() < 3;
       ++i) {
    net_.loop().RunFor(2'000);
    net_.DeliverAll();
  }
  EXPECT_GE(cluster_.coordinator().completed_count(), 3u);
  cluster_.coordinator().DisableAutoAdvance();
}

}  // namespace
}  // namespace threev
