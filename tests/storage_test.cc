#include "threev/storage/versioned_store.h"

#include <gtest/gtest.h>

#include "threev/metrics/metrics.h"

namespace threev {
namespace {

Value Num(int64_t n) {
  Value v;
  v.num = n;
  return v;
}

TEST(VersionedStoreTest, ReadMissingKeyIsNotFound) {
  VersionedStore store;
  EXPECT_EQ(store.Read("x", 5).status().code(), StatusCode::kNotFound);
}

TEST(VersionedStoreTest, SeedAndRead) {
  VersionedStore store;
  store.Seed("x", Num(7), 0);
  EXPECT_EQ(store.Read("x", 0)->num, 7);
  EXPECT_EQ(store.Read("x", 9)->num, 7);  // max existing <= 9 is version 0
}

TEST(VersionedStoreTest, ReadBelowOnlyVersionIsNotFound) {
  VersionedStore store;
  store.Seed("x", Num(7), 3);
  EXPECT_EQ(store.Read("x", 2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Read("x", 3)->num, 7);
}

TEST(VersionedStoreTest, UpdateCreatesByCopyOnWrite) {
  Metrics metrics;
  VersionedStore store(&metrics);
  store.Seed("x", Num(10), 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 5)).ok());
  // Version 0 untouched, version 1 = copy + delta.
  EXPECT_EQ(store.Read("x", 0)->num, 10);
  EXPECT_EQ(store.Read("x", 1)->num, 15);
  EXPECT_EQ(metrics.version_copies.load(), 1);
}

TEST(VersionedStoreTest, SecondUpdateSameVersionDoesNotCopyAgain) {
  Metrics metrics;
  VersionedStore store(&metrics);
  store.Seed("x", Num(10), 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 5)).ok());
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 5)).ok());
  EXPECT_EQ(store.Read("x", 1)->num, 20);
  EXPECT_EQ(metrics.version_copies.load(), 1);
}

TEST(VersionedStoreTest, FreshKeyStartsEmptyNoCopy) {
  Metrics metrics;
  VersionedStore store(&metrics);
  ASSERT_TRUE(store.Update("x", 2, OpAdd("x", 3)).ok());
  EXPECT_EQ(store.Read("x", 2)->num, 3);
  EXPECT_EQ(metrics.version_copies.load(), 0);
  EXPECT_EQ(store.Read("x", 1).status().code(), StatusCode::kNotFound);
}

TEST(VersionedStoreTest, StragglerWritesAllNewerVersions) {
  Metrics metrics;
  VersionedStore store(&metrics);
  store.Seed("x", Num(0), 0);
  // Version 2 is created first (a new-version transaction got there first).
  ASSERT_TRUE(store.Update("x", 2, OpAdd("x", 100)).ok());
  // A version-1 straggler must land in version 1 AND version 2 (Section
  // 4.1 step 4), so that version 2 stays a superset of version 1.
  Result<int> applied = store.Update("x", 1, OpAdd("x", 7));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 2);
  EXPECT_EQ(store.Read("x", 0)->num, 0);
  EXPECT_EQ(store.Read("x", 1)->num, 7);
  EXPECT_EQ(store.Read("x", 2)->num, 107);
  EXPECT_EQ(metrics.dual_version_writes.load(), 1);
  EXPECT_EQ(store.MaxVersionsObserved(), 3u);
}

TEST(VersionedStoreTest, StragglerCopiesFromVersionBelowItself) {
  VersionedStore store;
  store.Seed("x", Num(50), 0);
  ASSERT_TRUE(store.Update("x", 2, OpAdd("x", 1)).ok());  // v2 = 51
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 2)).ok());  // v1 = 52, v2 = 53
  EXPECT_EQ(store.Read("x", 1)->num, 52);
  EXPECT_EQ(store.Read("x", 2)->num, 53);
}

TEST(VersionedStoreTest, InsertAndRemoveIds) {
  VersionedStore store;
  ASSERT_TRUE(store.Update("log", 1, OpInsert("log", 42)).ok());
  ASSERT_TRUE(store.Update("log", 1, OpInsert("log", 43)).ok());
  EXPECT_TRUE(store.Read("log", 1)->ContainsId(42));
  ASSERT_TRUE(store.Update("log", 1, OpRemove("log", 42)).ok());
  EXPECT_FALSE(store.Read("log", 1)->ContainsId(42));
  EXPECT_TRUE(store.Read("log", 1)->ContainsId(43));
}

TEST(VersionedStoreTest, GarbageCollectDropsOldWhenNewExists) {
  VersionedStore store;
  store.Seed("x", Num(1), 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 1)).ok());
  store.GarbageCollect(1);
  EXPECT_EQ(store.VersionsOf("x"), (std::vector<Version>{1}));
  EXPECT_EQ(store.Read("x", 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Read("x", 1)->num, 2);
}

TEST(VersionedStoreTest, GarbageCollectRelabelsWhenNewMissing) {
  VersionedStore store;
  store.Seed("x", Num(9), 0);
  // No version-1 copy exists (item untouched this epoch): version 0 is
  // relabeled as version 1.
  store.GarbageCollect(1);
  EXPECT_EQ(store.VersionsOf("x"), (std::vector<Version>{1}));
  EXPECT_EQ(store.Read("x", 1)->num, 9);
}

TEST(VersionedStoreTest, GarbageCollectRelabelEdgeCases) {
  // Several versions older than vr_new but no exact copy: only the LATEST
  // earlier version survives (relabeled); everything before it is dropped.
  VersionedStore store;
  store.Seed("x", Num(1), 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 10)).ok());
  store.GarbageCollect(2);
  EXPECT_EQ(store.VersionsOf("x"), (std::vector<Version>{2}));
  EXPECT_EQ(store.Read("x", 2)->num, 11);

  // Relabel coexisting with a straggler-written newer version: the newer
  // copy is untouched, the older one takes the vr_new label.
  store.Seed("y", Num(5), 0);
  ASSERT_TRUE(store.Update("y", 3, OpAdd("y", 1)).ok());
  store.GarbageCollect(2);
  EXPECT_EQ(store.VersionsOf("y"), (std::vector<Version>{2, 3}));
  EXPECT_EQ(store.Read("y", 2)->num, 5);

  // Only versions newer than vr_new exist (item created after the cut):
  // nothing to relabel, nothing dropped.
  VersionedStore fresh;
  fresh.Seed("z", Num(7), 3);
  fresh.GarbageCollect(2);
  EXPECT_EQ(fresh.VersionsOf("z"), (std::vector<Version>{3}));
  EXPECT_EQ(fresh.Read("z", 2).status().code(), StatusCode::kNotFound);
}

TEST(VersionedStoreTest, GarbageCollectKeepsNewerVersions) {
  VersionedStore store;
  store.Seed("x", Num(0), 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 1)).ok());
  ASSERT_TRUE(store.Update("x", 2, OpAdd("x", 1)).ok());
  store.GarbageCollect(1);
  EXPECT_EQ(store.VersionsOf("x"), (std::vector<Version>{1, 2}));
}

TEST(VersionedStoreTest, UpdateExactConflictsWithNewerVersion) {
  VersionedStore store;
  ASSERT_TRUE(store.Update("x", 2, OpAdd("x", 1)).ok());
  UndoEntry undo;
  Status s = store.UpdateExact("x", 1, OpAdd("x", 1), &undo);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(VersionedStoreTest, UpdateExactTouchesOnlyItsVersion) {
  VersionedStore store;
  store.Seed("x", Num(5), 0);
  UndoEntry undo;
  ASSERT_TRUE(store.UpdateExact("x", 1, OpAdd("x", 3), &undo).ok());
  EXPECT_EQ(store.Read("x", 0)->num, 5);
  EXPECT_EQ(store.Read("x", 1)->num, 8);
  EXPECT_TRUE(undo.created);
}

TEST(VersionedStoreTest, UndoRemovesCreatedVersion) {
  VersionedStore store;
  store.Seed("x", Num(5), 0);
  UndoEntry undo;
  ASSERT_TRUE(store.UpdateExact("x", 1, OpAdd("x", 3), &undo).ok());
  store.Undo(undo);
  EXPECT_EQ(store.VersionsOf("x"), (std::vector<Version>{0}));
  EXPECT_EQ(store.Read("x", 1)->num, 5);  // falls back to version 0
}

TEST(VersionedStoreTest, UndoRestoresPriorValue) {
  VersionedStore store;
  UndoEntry undo1, undo2;
  ASSERT_TRUE(store.UpdateExact("x", 1, OpAdd("x", 3), &undo1).ok());
  ASSERT_TRUE(store.UpdateExact("x", 1, OpAdd("x", 4), &undo2).ok());
  store.Undo(undo2);
  EXPECT_EQ(store.Read("x", 1)->num, 3);
  store.Undo(undo1);
  EXPECT_EQ(store.Read("x", 1).status().code(), StatusCode::kNotFound);
}

TEST(VersionedStoreTest, PutAndMultiply) {
  VersionedStore store;
  UndoEntry undo;
  ASSERT_TRUE(store.UpdateExact("x", 1, OpPut("x", "hello"), &undo).ok());
  EXPECT_EQ(store.Read("x", 1)->str, "hello");
  ASSERT_TRUE(store.Update("y", 1, OpAdd("y", 6)).ok());
  ASSERT_TRUE(store.UpdateExact("y", 1, OpMultiply("y", 7), &undo).ok());
  EXPECT_EQ(store.Read("y", 1)->num, 42);
}

TEST(VersionedStoreTest, DumpAndKeys) {
  VersionedStore store;
  store.Seed("a", Num(1), 0);
  store.Seed("b", Num(2), 0);
  ASSERT_TRUE(store.Update("a", 1, OpAdd("a", 1)).ok());
  auto dump = store.DumpItem("a");
  EXPECT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].num, 1);
  EXPECT_EQ(dump[1].num, 2);
  EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store.KeyCount(), 2u);
}

TEST(VersionedStoreTest, BytesCopiedTracksValueSize) {
  Metrics metrics;
  VersionedStore store(&metrics);
  Value big;
  big.str = std::string(1000, 'x');
  store.Seed("x", big, 0);
  ASSERT_TRUE(store.Update("x", 1, OpAdd("x", 1)).ok());
  EXPECT_GE(metrics.bytes_copied.load(), 1000);
}

}  // namespace
}  // namespace threev
