// Deterministic crash/restart tests: a node is killed at an exact protocol
// point (via the SimNet delivery tap), restarted from checkpoint + WAL, and
// the cluster must finish what it was doing with every invariant intact -
// no acknowledged update lost, <= 3 versions per item, history still
// version-order serializable.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"

namespace threev {
namespace {

std::string TestDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / ("threev_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// One advancement driven to completion (waiting out any stale run first).
void Advance(SimNet& net, Cluster& cluster) {
  net.loop().RunUntil([&] { return !cluster.coordinator().running(); });
  bool advanced = false;
  ASSERT_TRUE(cluster.coordinator().StartAdvancement(
      [&advanced](Status s) {
        EXPECT_TRUE(s.ok());
        advanced = true;
      }));
  net.loop().RunUntil([&] { return advanced; });
}

// Kills node `victim` the moment the first message of `type` is delivered
// to it (the message itself is dropped - it "died with the node"), and
// schedules the restart `downtime` later.
void ArmCrashAt(SimNet& net, Cluster& cluster, MsgType type, NodeId victim,
                Micros downtime, bool* fired) {
  net.SetDeliveryTap([&net, &cluster, type, victim, downtime, fired](
                         NodeId to, const Message& msg) {
    if (*fired || to != victim || msg.type != type) return;
    *fired = true;
    cluster.KillNode(victim);
    net.ScheduleAfter(downtime,
                      [&cluster, victim] { cluster.RestartNode(victim); });
  });
}

// The advancement protocol must survive losing a node at every one of its
// four externally visible steps: the restarted node recovers its versions
// and counters from the log and answers the coordinator's retransmissions.
TEST(CrashRecoveryTest, NodeCrashAtEachAdvancementPhase) {
  const struct {
    MsgType type;
    const char* name;
  } kPhases[] = {
      {MsgType::kStartAdvancement, "start_advancement"},
      {MsgType::kCounterRead, "counter_read"},
      {MsgType::kReadVersionAdvance, "read_version_advance"},
      {MsgType::kGarbageCollect, "garbage_collect"},
  };
  for (const auto& phase : kPhases) {
    SCOPED_TRACE(phase.name);
    Metrics metrics;
    HistoryRecorder history;
    SimNet net(SimNetOptions{.seed = 11, .min_delay = 100,
                             .mean_extra_delay = 200},
               &metrics);
    ClusterOptions options;
    options.num_nodes = 3;
    options.wal_dir = TestDir(std::string("crash_") + phase.name);
    options.coordinator_poll_interval = 1'000;
    options.coordinator_retry_interval = 5'000;
    Cluster cluster(options, &net, &metrics, &history);

    // Acknowledged traffic, quiesced before the fault: every one of these
    // must still be readable after crash + recovery.
    int64_t expected[3] = {0, 0, 0};
    size_t done = 0;
    for (int i = 0; i < 30; ++i) {
      NodeId origin = static_cast<NodeId>(i % 3);
      NodeId other = static_cast<NodeId>((i + 1) % 3);
      cluster.Submit(origin,
                     TxnBuilder(origin)
                         .Add("acct", 2)
                         .Child(other, {OpAdd("acct", 3)})
                         .Build(),
                     [&done](const TxnResult& r) {
                       EXPECT_TRUE(r.status.ok());
                       ++done;
                     });
      expected[origin] += 2;
      expected[other] += 3;
    }
    net.loop().RunUntil([&] { return done == 30; });

    bool fired = false;
    ArmCrashAt(net, cluster, phase.type, /*victim=*/1, /*downtime=*/20'000,
               &fired);
    Advance(net, cluster);
    EXPECT_TRUE(fired) << "the targeted message type never reached node 1";
    EXPECT_EQ(metrics.node_crashes.load(), 1);
    EXPECT_GT(metrics.messages_dropped.load(), 0);
    ASSERT_TRUE(cluster.node_alive(1));

    // A second full advancement proves the recovered node participates in
    // quiescence detection (its counters survived) and GC.
    net.SetDeliveryTap(nullptr);
    Advance(net, cluster);

    ASSERT_TRUE(cluster.CheckInvariants().ok());
    for (size_t n = 0; n < 3; ++n) {
      Result<Value> v =
          cluster.node(n).store().Read("acct", cluster.node(n).vr());
      ASSERT_TRUE(v.ok()) << "node " << n;
      EXPECT_EQ(v->num, expected[n]) << "acknowledged update lost on node "
                                     << n;
      EXPECT_LE(cluster.node(n).store().MaxVersionsObserved(), 3u);
    }

    CheckerOptions copts;
    copts.check_version_cut = true;
    CheckResult check = CheckHistory(history.Transactions(), copts);
    EXPECT_TRUE(check.ok()) << check.Summary();
  }
}

// A checkpoint between the traffic and the crash must not change the
// outcome - recovery restores the snapshot and replays only the tail.
TEST(CrashRecoveryTest, CrashAfterCheckpointReplaysOnlyTail) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 3}, &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.wal_dir = TestDir("crash_after_ckpt");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  Cluster cluster(options, &net, &metrics, &history);

  size_t done = 0;
  auto burst = [&](int count) {
    size_t target = done + count;
    for (int i = 0; i < count; ++i) {
      NodeId origin = static_cast<NodeId>(i % 3);
      cluster.Submit(origin, TxnBuilder(origin).Add("acct", 1).Build(),
                     [&done](const TxnResult&) { ++done; });
    }
    net.loop().RunUntil([&] { return done == target; });
  };

  burst(12);
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  burst(6);  // in the log but not the checkpoint

  bool fired = false;
  ArmCrashAt(net, cluster, MsgType::kStartAdvancement, /*victim=*/0,
             /*downtime=*/20'000, &fired);
  Advance(net, cluster);
  EXPECT_TRUE(fired);
  ASSERT_TRUE(cluster.node_alive(0));

  ASSERT_TRUE(cluster.CheckInvariants().ok());
  Result<Value> v = cluster.node(0).store().Read("acct", cluster.node(0).vr());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num, 6);  // 12/3 checkpointed + 6/3 replayed
}

// NC3V participant crash between its yes-vote and the commit decision: the
// prepared state is durable, the root retransmits the decision until the
// restarted node applies and acks it.
TEST(CrashRecoveryTest, CrashedParticipantHonorsRetransmittedDecision) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 21, .min_delay = 100,
                           .mean_extra_delay = 200},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.mode = NodeMode::kNC3V;
  options.wal_dir = TestDir("crash_2pc_participant");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  options.twopc_retry_interval = 10'000;
  Cluster cluster(options, &net, &metrics, &history);

  bool fired = false;
  ArmCrashAt(net, cluster, MsgType::kDecision, /*victim=*/1,
             /*downtime=*/20'000, &fired);

  bool done = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Put("doc", "v1")
                     .Child(1, {OpPut("doc", "v1")})
                     .Child(2, {OpPut("doc", "v1")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });
  EXPECT_TRUE(fired);
  EXPECT_GT(metrics.twopc_retransmits.load(), 0);
  ASSERT_TRUE(cluster.node_alive(1));

  // The commit is visible on the recovered node (its after-images and the
  // retransmitted decision both replayed from the log).
  for (size_t n = 0; n < 3; ++n) {
    Result<Value> v = cluster.node(n).store().Read("doc", 1);
    ASSERT_TRUE(v.ok()) << "node " << n;
    EXPECT_EQ(v->str, "v1") << "node " << n;
  }

  // Locks are fully released: a second non-commuting writer gets through.
  net.SetDeliveryTap(nullptr);
  done = false;
  cluster.Submit(2,
                 TxnBuilder(2)
                     .Put("doc", "v2")
                     .Child(0, {OpPut("doc", "v2")})
                     .Child(1, {OpPut("doc", "v2")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok());
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });

  // Deferred completion counters survived the crash: quiescence is still
  // detectable and the version machinery runs.
  Advance(net, cluster);
  Advance(net, cluster);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  CheckResult check = CheckHistory(history.Transactions(), CheckerOptions{});
  EXPECT_TRUE(check.ok()) << check.Summary();
}

// NC3V root crash after sending prepares but before any decision: presumed
// abort. The restarted root finds the in-doubt transaction in its log with
// no decision record, logs an abort, and re-drives it to every node -
// participants roll back and release their locks.
TEST(CrashRecoveryTest, CrashedRootPresumesAbort) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 31, .min_delay = 100,
                           .mean_extra_delay = 200},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.mode = NodeMode::kNC3V;
  options.wal_dir = TestDir("crash_2pc_root");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  options.twopc_retry_interval = 10'000;
  Cluster cluster(options, &net, &metrics, &history);

  // Kill the ROOT (node 0) at the instant its prepare reaches node 1.
  bool fired = false;
  net.SetDeliveryTap([&](NodeId to, const Message& msg) {
    if (fired || to != 1 || msg.type != MsgType::kPrepare) return;
    fired = true;
    cluster.KillNode(0);
    net.ScheduleAfter(20'000, [&cluster] { cluster.RestartNode(0); });
  });

  bool orphan_result = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Put("doc", "dead")
                     .Child(1, {OpPut("doc", "dead")})
                     .Child(2, {OpPut("doc", "dead")})
                     .Build(),
                 [&orphan_result](const TxnResult&) { orphan_result = true; });
  net.loop().RunUntil([&] { return fired && cluster.node_alive(0); });
  net.SetDeliveryTap(nullptr);

  // A probe writer over the same key set serializes behind the in-doubt
  // locks; it can only commit once the re-driven abort released them on
  // every node.
  bool done = false;
  cluster.Submit(2,
                 TxnBuilder(2)
                     .Put("doc", "alive")
                     .Child(0, {OpPut("doc", "alive")})
                     .Child(1, {OpPut("doc", "alive")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });

  EXPECT_FALSE(orphan_result)
      << "the un-acknowledged transaction must not be reported committed";
  for (size_t n = 0; n < 3; ++n) {
    Result<Value> v = cluster.node(n).store().Read("doc", 1);
    ASSERT_TRUE(v.ok()) << "node " << n;
    EXPECT_EQ(v->str, "alive") << "node " << n;
  }

  // Aborted completions still count for quiescence: advancement completes.
  Advance(net, cluster);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  CheckResult check = CheckHistory(history.Transactions(), CheckerOptions{});
  EXPECT_TRUE(check.ok()) << check.Summary();
}

}  // namespace
}  // namespace threev
