// Deterministic crash/restart tests: a node is killed at an exact protocol
// point and restarted from checkpoint + WAL, and the cluster must finish
// what it was doing with every invariant intact - no acknowledged update
// lost, <= 3 versions per item, history still version-order serializable.
//
// Crash choreography and advancement driving use the shared fuzz-subsystem
// helpers (threev::fuzz::FaultPlan / DriveAdvancement), so these
// hand-written schedules and the generated fuzz schedules exercise one
// implementation.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "threev/core/cluster.h"
#include "threev/fuzz/fault_plan.h"
#include "threev/fuzz/oracle.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"

namespace threev {
namespace {

std::string TestDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / ("threev_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// The advancement protocol must survive losing a node at every one of its
// four externally visible steps: the restarted node recovers its versions
// and counters from the log and answers the coordinator's retransmissions.
TEST(CrashRecoveryTest, NodeCrashAtEachAdvancementPhase) {
  const struct {
    MsgType type;
    const char* name;
  } kPhases[] = {
      {MsgType::kStartAdvancement, "start_advancement"},
      {MsgType::kCounterRead, "counter_read"},
      {MsgType::kReadVersionAdvance, "read_version_advance"},
      {MsgType::kGarbageCollect, "garbage_collect"},
  };
  for (const auto& phase : kPhases) {
    SCOPED_TRACE(phase.name);
    Metrics metrics;
    HistoryRecorder history;
    SimNet net(SimNetOptions{.seed = 11, .min_delay = 100,
                             .mean_extra_delay = 200},
               &metrics);
    ClusterOptions options;
    options.num_nodes = 3;
    options.wal_dir = TestDir(std::string("crash_") + phase.name);
    options.coordinator_poll_interval = 1'000;
    options.coordinator_retry_interval = 5'000;
    Cluster cluster(options, &net, &metrics, &history);

    // Tally cross-node subtransaction deliveries for the conservation
    // probe, exactly as the fuzz driver does.
    fuzz::FaultPlan faults(&net, &cluster);
    fuzz::ExpectedMatrix expected;
    faults.SetObserver([&expected](NodeId to, const Message& msg) {
      if (msg.type != MsgType::kSubtxnRequest || msg.from >= 3 || to >= 3 ||
          msg.from == to) {
        return;
      }
      auto& row = expected[msg.version];
      if (row.empty()) row.assign(9, 0);
      row[static_cast<size_t>(msg.from) * 3 + to] += 1;
    });

    // Acknowledged traffic, quiesced before the fault: every one of these
    // must still be readable after crash + recovery.
    int64_t expected_balance[3] = {0, 0, 0};
    size_t done = 0;
    for (int i = 0; i < 30; ++i) {
      NodeId origin = static_cast<NodeId>(i % 3);
      NodeId other = static_cast<NodeId>((i + 1) % 3);
      cluster.Submit(origin,
                     TxnBuilder(origin)
                         .Add("acct", 2)
                         .Child(other, {OpAdd("acct", 3)})
                         .Build(),
                     [&done](const TxnResult& r) {
                       EXPECT_TRUE(r.status.ok());
                       ++done;
                     });
      expected_balance[origin] += 2;
      expected_balance[other] += 3;
    }
    net.loop().RunUntil([&] { return done == 30; });

    size_t cp = faults.Arm({.at_type = phase.type, .victim = 1,
                            .nth = 1, .downtime = 20'000});
    EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());
    EXPECT_TRUE(faults.Fired(cp))
        << "the targeted message type never reached node 1";
    EXPECT_EQ(metrics.node_crashes.load(), 1);
    EXPECT_GT(metrics.messages_dropped.load(), 0);
    ASSERT_TRUE(cluster.node_alive(1));

    // With the crashed phase completed and the victim recovered, the
    // structural-invariant and counter-conservation probes must hold: the
    // kill left no counter row torn (version 1 is still live here, so the
    // conservation probe re-checks the full traffic matrix through the
    // restarted node's recovered counters).
    EXPECT_EQ(fuzz::InspectionProbe(cluster, net), std::vector<std::string>{});
    EXPECT_EQ(fuzz::ConservationProbe(cluster, net, expected),
              std::vector<std::string>{});

    // A second full advancement proves the recovered node participates in
    // quiescence detection (its counters survived) and GC.
    EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());

    ASSERT_TRUE(cluster.CheckInvariants().ok());
    for (size_t n = 0; n < 3; ++n) {
      Result<Value> v =
          cluster.node(n).store().Read("acct", cluster.node(n).vr());
      ASSERT_TRUE(v.ok()) << "node " << n;
      EXPECT_EQ(v->num, expected_balance[n])
          << "acknowledged update lost on node " << n;
      EXPECT_LE(cluster.node(n).store().MaxVersionsObserved(), 3u);
    }

    CheckerOptions copts;
    copts.check_version_cut = true;
    CheckResult check = CheckHistory(history.Transactions(), copts);
    EXPECT_TRUE(check.ok()) << check.Summary();
  }
}

// A checkpoint between the traffic and the crash must not change the
// outcome - recovery restores the snapshot and replays only the tail.
TEST(CrashRecoveryTest, CrashAfterCheckpointReplaysOnlyTail) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 3}, &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.wal_dir = TestDir("crash_after_ckpt");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  Cluster cluster(options, &net, &metrics, &history);
  fuzz::FaultPlan faults(&net, &cluster);

  size_t done = 0;
  auto burst = [&](int count) {
    size_t target = done + count;
    for (int i = 0; i < count; ++i) {
      NodeId origin = static_cast<NodeId>(i % 3);
      cluster.Submit(origin, TxnBuilder(origin).Add("acct", 1).Build(),
                     [&done](const TxnResult&) { ++done; });
    }
    net.loop().RunUntil([&] { return done == target; });
  };

  burst(12);
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  burst(6);  // in the log but not the checkpoint

  size_t cp = faults.Arm({.at_type = MsgType::kStartAdvancement,
                          .victim = 0, .nth = 1, .downtime = 20'000});
  EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());
  EXPECT_TRUE(faults.Fired(cp));
  ASSERT_TRUE(cluster.node_alive(0));

  ASSERT_TRUE(cluster.CheckInvariants().ok());
  Result<Value> v = cluster.node(0).store().Read("acct", cluster.node(0).vr());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num, 6);  // 12/3 checkpointed + 6/3 replayed
}

// NC3V participant crash between its yes-vote and the commit decision: the
// prepared state is durable, the root retransmits the decision until the
// restarted node applies and acks it.
TEST(CrashRecoveryTest, CrashedParticipantHonorsRetransmittedDecision) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 21, .min_delay = 100,
                           .mean_extra_delay = 200},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.mode = NodeMode::kNC3V;
  options.wal_dir = TestDir("crash_2pc_participant");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  options.twopc_retry_interval = 10'000;
  Cluster cluster(options, &net, &metrics, &history);
  fuzz::FaultPlan faults(&net, &cluster);

  size_t cp = faults.Arm({.at_type = MsgType::kDecision, .victim = 1,
                          .nth = 1, .downtime = 20'000});

  bool done = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Put("doc", "v1")
                     .Child(1, {OpPut("doc", "v1")})
                     .Child(2, {OpPut("doc", "v1")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });
  EXPECT_TRUE(faults.Fired(cp));
  EXPECT_GT(metrics.twopc_retransmits.load(), 0);
  ASSERT_TRUE(cluster.node_alive(1));

  // The commit is visible on the recovered node (its after-images and the
  // retransmitted decision both replayed from the log).
  for (size_t n = 0; n < 3; ++n) {
    Result<Value> v = cluster.node(n).store().Read("doc", 1);
    ASSERT_TRUE(v.ok()) << "node " << n;
    EXPECT_EQ(v->str, "v1") << "node " << n;
  }

  // Locks are fully released: a second non-commuting writer gets through.
  done = false;
  cluster.Submit(2,
                 TxnBuilder(2)
                     .Put("doc", "v2")
                     .Child(0, {OpPut("doc", "v2")})
                     .Child(1, {OpPut("doc", "v2")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok());
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });

  // Deferred completion counters survived the crash: quiescence is still
  // detectable and the version machinery runs.
  EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());
  EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(fuzz::InspectionProbe(cluster, net), std::vector<std::string>{});
  CheckResult check = CheckHistory(history.Transactions(), CheckerOptions{});
  EXPECT_TRUE(check.ok()) << check.Summary();
}

// NC3V root crash after sending prepares but before any decision: presumed
// abort. The restarted root finds the in-doubt transaction in its log with
// no decision record, logs an abort, and re-drives it to every node -
// participants roll back and release their locks.
TEST(CrashRecoveryTest, CrashedRootPresumesAbort) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 31, .min_delay = 100,
                           .mean_extra_delay = 200},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.mode = NodeMode::kNC3V;
  options.wal_dir = TestDir("crash_2pc_root");
  options.coordinator_poll_interval = 1'000;
  options.coordinator_retry_interval = 5'000;
  options.twopc_retry_interval = 10'000;
  Cluster cluster(options, &net, &metrics, &history);
  fuzz::FaultPlan faults(&net, &cluster);

  // Kill the ROOT (node 0) at the instant its prepare reaches node 1.
  size_t cp = faults.Arm({.at_type = MsgType::kPrepare, .victim = 0,
                          .nth = 1, .downtime = 20'000,
                          .trigger_node = 1});

  bool orphan_result = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Put("doc", "dead")
                     .Child(1, {OpPut("doc", "dead")})
                     .Child(2, {OpPut("doc", "dead")})
                     .Build(),
                 [&orphan_result](const TxnResult&) { orphan_result = true; });
  net.loop().RunUntil([&] { return faults.Fired(cp) && cluster.node_alive(0); });

  // A probe writer over the same key set serializes behind the in-doubt
  // locks; it can only commit once the re-driven abort released them on
  // every node.
  bool done = false;
  cluster.Submit(2,
                 TxnBuilder(2)
                     .Put("doc", "alive")
                     .Child(0, {OpPut("doc", "alive")})
                     .Child(1, {OpPut("doc", "alive")})
                     .Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok()) << r.status.ToString();
                   done = true;
                 });
  net.loop().RunUntil([&] { return done; });

  EXPECT_FALSE(orphan_result)
      << "the un-acknowledged transaction must not be reported committed";
  for (size_t n = 0; n < 3; ++n) {
    Result<Value> v = cluster.node(n).store().Read("doc", 1);
    ASSERT_TRUE(v.ok()) << "node " << n;
    EXPECT_EQ(v->str, "alive") << "node " << n;
  }

  // Aborted completions still count for quiescence: advancement completes.
  EXPECT_TRUE(fuzz::DriveAdvancement(net, cluster).ok());
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  CheckResult check = CheckHistory(history.Transactions(), CheckerOptions{});
  EXPECT_TRUE(check.ok()) << check.Summary();
}

}  // namespace
}  // namespace threev
