#include <gtest/gtest.h>

#include "threev/common/logging.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

TEST(ClientTest, TracksInFlightRequests) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 3}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(options, &net, &metrics);

  EXPECT_EQ(cluster.client().InFlight(), 0u);
  size_t done = 0;
  cluster.Submit(0, TxnBuilder(0).Add("x", 1).Build(),
                 [&](const TxnResult&) { ++done; });
  cluster.Submit(1, TxnBuilder(1).Add("y", 1).Build(),
                 [&](const TxnResult&) { ++done; });
  EXPECT_EQ(cluster.client().InFlight(), 2u);
  net.loop().Run();
  EXPECT_EQ(done, 2u);
  EXPECT_EQ(cluster.client().InFlight(), 0u);
}

TEST(ClientTest, ResultCarriesTimes) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 3}, &metrics);
  ClusterOptions options;
  options.num_nodes = 1;
  Cluster cluster(options, &net, &metrics);
  TxnResult result;
  cluster.Submit(0, TxnBuilder(0).Add("x", 1).Build(),
                 [&](const TxnResult& r) { result = r; });
  net.loop().Run();
  EXPECT_GT(result.complete_time, result.submit_time);
  EXPECT_GT(result.latency(), 0);
  EXPECT_NE(result.id, 0u);
}

TEST(ClientTest, StrayResultIgnored) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 3}, &metrics);
  Client client(9, &net);
  net.RegisterEndpoint(9, [&](const Message& m) { client.HandleMessage(m); });
  Message stray;
  stray.type = MsgType::kClientResult;
  stray.from = 0;
  stray.seq = 12345;  // never issued
  client.HandleMessage(stray);  // must not crash
  Message wrong_type;
  wrong_type.type = MsgType::kPrepare;
  client.HandleMessage(wrong_type);
  EXPECT_EQ(client.InFlight(), 0u);
}

TEST(LoggingTest, LevelsFilter) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below threshold: the streaming expression must not even evaluate.
  bool evaluated = false;
  auto touch = [&]() {
    evaluated = true;
    return "x";
  };
  THREEV_LOG(kDebug) << touch();
  EXPECT_FALSE(evaluated);
  SetLogLevel(LogLevel::kDebug);
  THREEV_LOG(kDebug) << touch();
  EXPECT_TRUE(evaluated);
  SetLogLevel(prev);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  THREEV_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(StatusCodeTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= 9; ++i) {
    names.insert(StatusCodeName(static_cast<StatusCode>(i)));
  }
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace threev
