// Concurrency stress tests: many real threads hammering the primitives the
// protocol layer leans on (BlockingQueue, WaitGroup, Histogram, LockManager,
// VersionedStore). These exist primarily as tsan fodder - run them under the
// `tsan` preset to turn latent races into hard failures - but they also
// assert linearizable end-state invariants (nothing lost, nothing duplicated,
// lock table empty) so they catch logic races under the default build too.
//
// Registered with ctest label `stress`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "threev/common/queue.h"
#include "threev/common/wait_group.h"
#include "threev/lock/lock_manager.h"
#include "threev/metrics/histogram.h"
#include "threev/storage/versioned_store.h"

namespace threev {
namespace {

// N producers, M consumers, every pushed value popped exactly once; Close()
// races with the last pushes and must not lose already-accepted items.
TEST(ConcurrencyStressTest, BlockingQueueManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20'000;

  BlockingQueue<int64_t> queue;
  std::atomic<int64_t> accepted_sum{0};
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int64_t> popped_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int64_t> v = queue.Pop()) {
        popped_sum.fetch_add(*v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int64_t v = static_cast<int64_t>(p) * kPerProducer + i + 1;
        if (queue.Push(v)) {
          accepted_sum.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), accepted_sum.load());
  EXPECT_EQ(queue.size(), 0u);
}

// Push/Pop racing Close(): accepted items must still drain, and every Pop
// after the drain must observe nullopt. Repeated to vary interleavings.
TEST(ConcurrencyStressTest, BlockingQueueCloseRace) {
  for (int round = 0; round < 50; ++round) {
    BlockingQueue<int> queue;
    std::atomic<int> accepted{0};
    std::atomic<int> popped{0};
    std::thread producer([&] {
      for (int i = 0; i < 1'000; ++i) {
        if (queue.Push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread consumer([&] {
      while (queue.Pop()) popped.fetch_add(1, std::memory_order_relaxed);
    });
    std::thread closer([&] { queue.Close(); });
    producer.join();
    closer.join();
    consumer.join();
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

// Batch-drain variant: producers race consumers that use PopAll(). Every
// accepted item must surface in exactly one batch, the final PopAll after
// Close() must come back empty, and nothing is lost or duplicated.
TEST(ConcurrencyStressTest, BlockingQueuePopAllManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20'000;

  BlockingQueue<int64_t> queue;
  std::atomic<int64_t> accepted_sum{0};
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int64_t> popped_count{0};
  std::atomic<int64_t> batches{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::deque<int64_t> batch = queue.PopAll();
        if (batch.empty()) return;  // closed and drained
        batches.fetch_add(1, std::memory_order_relaxed);
        for (int64_t v : batch) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int64_t v = static_cast<int64_t>(p) * kPerProducer + i + 1;
        if (queue.Push(v)) {
          accepted_sum.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped_sum.load(), accepted_sum.load());
  // Sanity on the batch accounting (no strict ratio asserted - a fully
  // lockstepped scheduler could legally produce singleton batches).
  EXPECT_GT(batches.load(), 0);
  EXPECT_LE(batches.load(), popped_count.load());
  EXPECT_EQ(queue.size(), 0u);
}

// Concurrent Record() from many threads; totals must be exact after joins.
TEST(ConcurrencyStressTest, HistogramConcurrentRecord) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;

  Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record((t * kPerThread + i) % 1'000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(hist.count(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_GE(hist.min(), 1);
  EXPECT_LE(hist.max(), 1'000);
  // p100 upper bound must cover max; bucketization allows ~6% slack upward.
  EXPECT_GE(hist.Percentile(100.0), hist.max());
  // Merge under quiesced writers is exact in count.
  Histogram other;
  other.Record(5);
  other.Merge(hist);
  EXPECT_EQ(other.count(), hist.count() + 1);
}

// WaitGroup as a rendezvous under churn: Add-before-spawn, Done from worker
// threads, Wait must not return early or hang.
TEST(ConcurrencyStressTest, WaitGroupChurn) {
  for (int round = 0; round < 200; ++round) {
    WaitGroup wg;
    constexpr int kWorkers = 8;
    std::atomic<int> done{0};
    wg.Add(kWorkers);
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        done.fetch_add(1, std::memory_order_relaxed);
        wg.Done();
      });
    }
    wg.Wait();
    EXPECT_EQ(done.load(), kWorkers) << "round " << round;
    for (auto& t : workers) t.join();
  }
}

// Many owners acquiring commuting + non-commuting locks on a small hot key
// set from real threads, releasing everything. End state: empty lock table,
// every grant callback invoked exactly once.
TEST(ConcurrencyStressTest, LockManagerContention) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  constexpr int kKeys = 7;

  LockManager lm;
  std::atomic<int64_t> grants{0};
  std::atomic<int64_t> denials{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t owner = static_cast<uint64_t>(t) * kPerThread + i + 1;
        std::string key = "k" + std::to_string((t + i) % kKeys);
        // Mostly commuting traffic (never blocks against itself), with a
        // non-commuting writer every 16th acquisition to force queueing.
        LockMode mode = (i % 16 == 15) ? LockMode::kNCWrite
                        : (i % 2 == 0) ? LockMode::kCommuteUpdate
                                       : LockMode::kCommuteRead;
        WaitGroup granted;
        granted.Add(1);
        lm.Acquire(key, mode, owner, [&](bool ok) {
          if (ok) {
            grants.fetch_add(1, std::memory_order_relaxed);
          } else {
            denials.fetch_add(1, std::memory_order_relaxed);
          }
          granted.Done();
        });
        granted.Wait();
        lm.ReleaseAll(owner);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(grants.load() + denials.load(),
            static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(denials.load(), 0);  // nothing cancels, so every wait resolves
  EXPECT_EQ(lm.HeldCount(), 0u);
  EXPECT_EQ(lm.WaiterCount(), 0u);
}

// Sharded store under concurrent commuting updates and reads of the same
// hot keys; kAdd commutes, so the final sums are exact regardless of
// interleaving - any lost update is a shard-locking bug.
TEST(ConcurrencyStressTest, VersionedStoreConcurrentReadWrite) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kKeys = 16;
  constexpr int kOpsPerWriter = 5'000;

  VersionedStore store;
  for (int k = 0; k < kKeys; ++k) {
    store.Seed("key" + std::to_string(k), Value{}, /*version=*/1);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Operation op;
        op.kind = OpKind::kAdd;
        op.key = "key" + std::to_string((w + i) % kKeys);
        op.arg = 1;
        auto applied = store.Update(op.key, /*version=*/1, op);
        ASSERT_TRUE(applied.ok());
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kKeys; ++k) {
          // Exercises the read path against racing updates; the value is a
          // monotone running sum, so any result in [0, total] is legal.
          auto v = store.Read("key" + std::to_string(k), /*max_version=*/1);
          if (v.ok()) {
            ASSERT_GE(v->num, 0);
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  int64_t total = 0;
  for (int k = 0; k < kKeys; ++k) {
    auto v = store.Read("key" + std::to_string(k), /*max_version=*/1);
    ASSERT_TRUE(v.ok());
    total += v->num;
  }
  EXPECT_EQ(total, static_cast<int64_t>(kWriters) * kOpsPerWriter);
  EXPECT_LE(store.MaxVersionsObserved(), kMaxSimultaneousVersions);
}

// Hammers the lock-free fast-slot read path specifically: every key here is
// slot-eligible (single version, short key, no ids, str <= 32 bytes), so
// ReadInto serves from the seqlock slots while writers refresh them and a
// GC thread re-warms every slot under the exclusive lock. Three invariants:
//   1. num keys: monotone running sums, exact total at the end (lost update
//      = shard locking bug).
//   2. str keys: writers only ever store uniform-character strings, so any
//      mixed-character or over-long string observed by a reader is a torn
//      seqlock read escaping validation.
//   3. NotFound never surfaces for seeded keys (a slot mismatch must fall
//      back to the locked map, not fabricate a miss).
TEST(ConcurrencyStressTest, VersionedStoreFastSlotReadersVsWritersAndGC) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kNumKeys = 8;
  constexpr int kStrKeys = 4;
  constexpr int kOpsPerWriter = 4'000;

  VersionedStore store;
  for (int k = 0; k < kNumKeys; ++k) {
    store.Seed("hot" + std::to_string(k), Value{}, /*version=*/1);
  }
  for (int k = 0; k < kStrKeys; ++k) {
    store.Seed("str" + std::to_string(k), Value{}, /*version=*/1);
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Operation add;
        add.kind = OpKind::kAdd;
        add.key = "hot" + std::to_string((w + i) % kNumKeys);
        add.arg = 1;
        ASSERT_TRUE(store.Update(add.key, /*version=*/1, add).ok());
        // Uniform-character payload, length 0..32: stays slot-eligible and
        // makes torn string reads detectable.
        Operation put;
        put.kind = OpKind::kPut;
        put.key = "str" + std::to_string(i % kStrKeys);
        put.payload = std::string(i % 33, static_cast<char>('a' + (i % 8)));
        ASSERT_TRUE(store.Update(put.key, /*version=*/1, put).ok());
      }
    });
  }
  // GC takes every shard's exclusive lock and refreshes every slot; racing
  // it against readers is the seqlock's worst case.
  std::thread gc([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.GarbageCollect(/*vr_new=*/1);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Value v;  // reused across calls, like the protocol layer does
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kNumKeys; ++k) {
          Status s =
              store.ReadInto("hot" + std::to_string(k), /*max_version=*/1, &v);
          ASSERT_TRUE(s.ok());
          ASSERT_GE(v.num, 0);
          ASSERT_LE(v.num, int64_t{kWriters} * kOpsPerWriter);
        }
        for (int k = 0; k < kStrKeys; ++k) {
          Status s =
              store.ReadInto("str" + std::to_string(k), /*max_version=*/1, &v);
          ASSERT_TRUE(s.ok());
          ASSERT_LE(v.str.size(), 32u);
          for (char c : v.str) {
            ASSERT_EQ(c, v.str[0]) << "torn string read";
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  gc.join();
  for (auto& t : readers) t.join();

  int64_t total = 0;
  for (int k = 0; k < kNumKeys; ++k) {
    auto v = store.Read("hot" + std::to_string(k), /*max_version=*/1);
    ASSERT_TRUE(v.ok());
    total += v->num;
  }
  EXPECT_EQ(total, int64_t{kWriters} * kOpsPerWriter);
  EXPECT_LE(store.MaxVersionsObserved(), kMaxSimultaneousVersions);
}

}  // namespace
}  // namespace threev
