#include "threev/lock/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace threev {
namespace {

// Records grant outcomes for assertions.
struct Grant {
  bool fired = false;
  bool granted = false;
  LockManager::GrantCallback cb() {
    return [this](bool g) {
      fired = true;
      granted = g;
    };
  }
};

TEST(LockCompatibilityTest, MatrixMatchesPaper) {
  using L = LockMode;
  // Commuting locks are compatible with each other...
  EXPECT_TRUE(LocksCompatible(L::kCommuteRead, L::kCommuteRead));
  EXPECT_TRUE(LocksCompatible(L::kCommuteRead, L::kCommuteUpdate));
  EXPECT_TRUE(LocksCompatible(L::kCommuteUpdate, L::kCommuteUpdate));
  // ...but not with their non-commuting counterparts.
  EXPECT_FALSE(LocksCompatible(L::kCommuteUpdate, L::kNCRead));
  EXPECT_FALSE(LocksCompatible(L::kCommuteUpdate, L::kNCWrite));
  EXPECT_FALSE(LocksCompatible(L::kCommuteRead, L::kNCWrite));
  // Reads commute with reads regardless of class.
  EXPECT_TRUE(LocksCompatible(L::kCommuteRead, L::kNCRead));
  // Classical S/X semantics among non-commuting locks.
  EXPECT_TRUE(LocksCompatible(L::kNCRead, L::kNCRead));
  EXPECT_FALSE(LocksCompatible(L::kNCRead, L::kNCWrite));
  EXPECT_FALSE(LocksCompatible(L::kNCWrite, L::kNCWrite));
  // Symmetry.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(LocksCompatible(static_cast<L>(a), static_cast<L>(b)),
                LocksCompatible(static_cast<L>(b), static_cast<L>(a)));
    }
  }
}

TEST(LockManagerTest, CommutingNeverWaitOnEachOther) {
  LockManager lm;
  Grant g1, g2, g3;
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, g1.cb());
  lm.Acquire("x", LockMode::kCommuteUpdate, 2, g2.cb());
  lm.Acquire("x", LockMode::kCommuteRead, 3, g3.cb());
  EXPECT_TRUE(g1.fired && g1.granted);
  EXPECT_TRUE(g2.fired && g2.granted);
  EXPECT_TRUE(g3.fired && g3.granted);
  EXPECT_EQ(lm.WaiterCount(), 0u);
}

TEST(LockManagerTest, NCWriteBlocksAndIsGrantedOnRelease) {
  LockManager lm;
  Grant cu, ncw;
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, cu.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, ncw.cb());
  EXPECT_TRUE(cu.granted);
  EXPECT_FALSE(ncw.fired);
  EXPECT_EQ(lm.WaiterCount(), 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(ncw.fired && ncw.granted);
  EXPECT_TRUE(lm.Holds("x", 2));
}

TEST(LockManagerTest, FairFifoPreventsStarvation) {
  LockManager lm;
  Grant cu1, ncw, cu2;
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, cu1.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, ncw.cb());
  // A later commuting request would be compatible with holder 1, but must
  // queue behind the waiting NCW so it cannot starve.
  lm.Acquire("x", LockMode::kCommuteUpdate, 3, cu2.cb());
  EXPECT_FALSE(cu2.fired);
  lm.ReleaseAll(1);
  EXPECT_TRUE(ncw.granted);
  EXPECT_FALSE(cu2.fired);
  lm.ReleaseAll(2);
  EXPECT_TRUE(cu2.granted);
}

TEST(LockManagerTest, ReentrantSameOwner) {
  LockManager lm;
  Grant a, b;
  lm.Acquire("x", LockMode::kNCWrite, 1, a.cb());
  lm.Acquire("x", LockMode::kNCRead, 1, b.cb());  // subsumed
  EXPECT_TRUE(a.granted && b.granted);
  EXPECT_EQ(lm.HeldCount(), 1u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(), 0u);
}

TEST(LockManagerTest, UpgradeWhenCompatible) {
  LockManager lm;
  Grant cr, cu;
  lm.Acquire("x", LockMode::kCommuteRead, 1, cr.cb());
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, cu.cb());  // upgrade
  EXPECT_TRUE(cu.granted);
}

TEST(LockManagerTest, UpgradeBlockedByConflictingHolder) {
  LockManager lm;
  Grant r1, r2, w1;
  lm.Acquire("x", LockMode::kNCRead, 1, r1.cb());
  lm.Acquire("x", LockMode::kNCRead, 2, r2.cb());
  lm.Acquire("x", LockMode::kNCWrite, 1, w1.cb());  // upgrade blocked by 2
  EXPECT_FALSE(w1.fired);
  lm.ReleaseAll(2);
  EXPECT_TRUE(w1.fired && w1.granted);
}

TEST(LockManagerTest, CancelWaitsFiresFalse) {
  LockManager lm;
  Grant w, waiter;
  lm.Acquire("x", LockMode::kNCWrite, 1, w.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, waiter.cb());
  EXPECT_FALSE(waiter.fired);
  EXPECT_EQ(lm.CancelWaits(2), 1u);
  EXPECT_TRUE(waiter.fired);
  EXPECT_FALSE(waiter.granted);
  // Release of 1 must not grant the cancelled waiter.
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(), 0u);
}

TEST(LockManagerTest, ReleaseGrantsMultipleCompatibleWaiters) {
  LockManager lm;
  Grant w, r1, r2;
  lm.Acquire("x", LockMode::kNCWrite, 1, w.cb());
  lm.Acquire("x", LockMode::kNCRead, 2, r1.cb());
  lm.Acquire("x", LockMode::kNCRead, 3, r2.cb());
  lm.ReleaseAll(1);
  EXPECT_TRUE(r1.granted);
  EXPECT_TRUE(r2.granted);
}

TEST(LockManagerTest, ReleaseAllSpansKeys) {
  LockManager lm;
  Grant a, b, w1, w2;
  lm.Acquire("x", LockMode::kNCWrite, 1, a.cb());
  lm.Acquire("y", LockMode::kNCWrite, 1, b.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, w1.cb());
  lm.Acquire("y", LockMode::kNCWrite, 2, w2.cb());
  lm.ReleaseAll(1);
  EXPECT_TRUE(w1.granted && w2.granted);
  EXPECT_TRUE(lm.Holds("x", 2));
  EXPECT_TRUE(lm.Holds("y", 2));
}

TEST(LockManagerTest, GrantCallbackMayReenter) {
  LockManager lm;
  Grant inner;
  bool outer_granted = false;
  lm.Acquire("x", LockMode::kNCWrite, 1, [](bool) {});
  lm.Acquire("x", LockMode::kNCWrite, 2, [&](bool granted) {
    outer_granted = granted;
    // Re-enter from inside the grant callback.
    lm.Acquire("y", LockMode::kNCWrite, 2, inner.cb());
  });
  lm.ReleaseAll(1);
  EXPECT_TRUE(outer_granted);
  EXPECT_TRUE(inner.granted);
}

TEST(LockManagerTest, CancelPromotesWaitersBehindTheCancelled) {
  // Regression: cancelling a waiter in the middle of the FIFO must grant
  // the now-compatible waiters queued behind it. Without promotion, the
  // commuting requests below would wait for a release that never comes -
  // a distributed deadlock enabler (found by the message-reordering
  // property sweep).
  LockManager lm;
  Grant holder, nc, cu1, cu2;
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, holder.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, nc.cb());       // blocks
  lm.Acquire("x", LockMode::kCommuteUpdate, 3, cu1.cb());  // fair: queues
  lm.Acquire("x", LockMode::kCommuteUpdate, 4, cu2.cb());  // fair: queues
  EXPECT_FALSE(cu1.fired);
  EXPECT_EQ(lm.CancelWaits(2), 1u);
  EXPECT_TRUE(nc.fired);
  EXPECT_FALSE(nc.granted);
  EXPECT_TRUE(cu1.fired && cu1.granted);
  EXPECT_TRUE(cu2.fired && cu2.granted);
  EXPECT_TRUE(lm.Holds("x", 3));
  EXPECT_TRUE(lm.Holds("x", 4));
}

TEST(LockManagerTest, CancelMidQueuePromotesOnlyUpToNextConflict) {
  LockManager lm;
  Grant holder, nc1, cu, nc2, cu2;
  lm.Acquire("x", LockMode::kCommuteUpdate, 1, holder.cb());
  lm.Acquire("x", LockMode::kNCWrite, 2, nc1.cb());
  lm.Acquire("x", LockMode::kCommuteUpdate, 3, cu.cb());
  lm.Acquire("x", LockMode::kNCWrite, 4, nc2.cb());
  lm.Acquire("x", LockMode::kCommuteUpdate, 5, cu2.cb());
  lm.CancelWaits(2);
  EXPECT_TRUE(cu.granted);       // promoted past the cancelled NCW
  EXPECT_FALSE(nc2.fired);       // still conflicts with holders 1 and 3
  EXPECT_FALSE(cu2.fired);       // fair: stays behind the waiting NCW
}

TEST(LockManagerTest, ReleaseUnknownOwnerIsNoop) {
  LockManager lm;
  lm.ReleaseAll(99);
  EXPECT_EQ(lm.CancelWaits(99), 0u);
}

}  // namespace
}  // namespace threev
