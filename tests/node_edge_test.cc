// Edge cases of the node engine: routing validation, empty plans, wide and
// deep trees, the phase-3 read race, and message robustness.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

struct Env {
  explicit Env(size_t nodes, SimNetOptions net_options = {.seed = 77})
      : net(net_options, &metrics), cluster(Opts(nodes), &net, &metrics) {}

  static ClusterOptions Opts(size_t nodes) {
    ClusterOptions options;
    options.num_nodes = nodes;
    return options;
  }

  TxnResult Run(NodeId origin, const TxnSpec& spec) {
    TxnResult result;
    bool done = false;
    cluster.Submit(origin, spec, [&](const TxnResult& r) {
      result = r;
      done = true;
    });
    net.loop().RunUntil([&] { return done; });
    return result;
  }

  Metrics metrics;
  SimNet net;
  Cluster cluster;
};

TEST(NodeEdgeTest, MisroutedSubmissionRejected) {
  Env env(3);
  // Plan rooted at node 1 submitted to node 0: rejected, not silently
  // executed against the wrong node's data.
  TxnSpec spec = TxnBuilder(1).Add("x", 1).Build();
  TxnResult r = env.Run(0, spec);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(env.cluster.node(0).store().VersionsOf("x").empty());
  EXPECT_TRUE(env.cluster.node(1).store().VersionsOf("x").empty());
}

TEST(NodeEdgeTest, SubmitOverloadRoutesToRootNode) {
  Env env(3);
  TxnResult result;
  bool done = false;
  env.cluster.client().Submit(TxnBuilder(2).Add("y", 9).Build(),
                              [&](const TxnResult& r) {
                                result = r;
                                done = true;
                              });
  env.net.loop().RunUntil([&] { return done; });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(env.cluster.node(2).store().Read("y", 1)->num, 9);
}

TEST(NodeEdgeTest, EmptyTransactionCommits) {
  Env env(2);
  TxnSpec spec;
  spec.root.node = 0;  // no ops, no children
  TxnResult r = env.Run(0, spec);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.reads.empty());
}

TEST(NodeEdgeTest, WideFanOut) {
  Env env(8);
  TxnBuilder builder(0);
  builder.Add("root", 1);
  for (int i = 0; i < 40; ++i) {
    builder.Child(static_cast<NodeId>(1 + i % 7),
                  {OpAdd("wide" + std::to_string(i), 1)});
  }
  TxnResult r = env.Run(0, builder.Build());
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.cluster.node(1).store().Read("wide0", 1)->num, 1);
  EXPECT_EQ(env.cluster.node(7).store().Read("wide6", 1)->num, 1);
  EXPECT_EQ(env.cluster.TotalPendingSubtxns(), 0u);
}

TEST(NodeEdgeTest, DeepChain) {
  Env env(4);
  SubtxnPlan leaf;
  leaf.node = 3;
  leaf.ops = {OpAdd("deep", 1)};
  SubtxnPlan chain = leaf;
  for (int depth = 0; depth < 12; ++depth) {
    SubtxnPlan next;
    next.node = static_cast<NodeId>(depth % 4);
    next.ops = {OpAdd("lvl" + std::to_string(depth), 1)};
    next.children = {chain};
    chain = next;
  }
  TxnSpec spec;
  spec.root = chain;
  TxnResult r = env.Run(spec.root.node, spec);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(env.cluster.node(3).store().Read("deep", 1)->num, 1);
}

TEST(NodeEdgeTest, ReadChildAtNodeWithLaggingReadVersion) {
  // Phase-3 race: a read root assigned vr_new spawns a child query to a
  // node whose vr is still vr_old. The carried version rules make the
  // child read the (already globally consistent) new version anyway.
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 5, .manual = true}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(options, &net, &metrics);

  // Install version-1 data directly and set versions as if phase 2 has
  // completed (version 1 consistent).
  cluster.node(0).store().Seed("a", Value{.num = 11, .ids = {}, .str = ""}, 1);
  cluster.node(1).store().Seed("b", Value{.num = 22, .ids = {}, .str = ""}, 1);
  bool advanced = false;
  cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
  // Run phases 1-2 fully, then deliver phase 3 ONLY to node 0.
  while (net.DeliverMatching(
             -1, -1, static_cast<int>(MsgType::kStartAdvancement)) != 0) {
  }
  // Acks and both counter waves (version 1 is quiescent), but stop before
  // the phase-3 notices.
  for (MsgType t : {MsgType::kStartAdvancementAck, MsgType::kCounterRead,
                    MsgType::kCounterReadReply, MsgType::kCounterRead,
                    MsgType::kCounterReadReply}) {
    while (net.DeliverMatching(-1, -1, static_cast<int>(t)) != 0) {
    }
  }
  // Phase 3 notices are now pending; deliver to node 0 only.
  ASSERT_NE(net.DeliverMatching(
                -1, 0, static_cast<int>(MsgType::kReadVersionAdvance)),
            0u);
  EXPECT_EQ(cluster.node(0).vr(), 1u);
  EXPECT_EQ(cluster.node(1).vr(), 0u);

  TxnResult read;
  bool done = false;
  cluster.Submit(0,
                 TxnBuilder(0).Get("a").Child(1, {OpGet("b")}).Build(),
                 [&](const TxnResult& r) {
                   read = r;
                   done = true;
                 });
  // Deliver the submit and the child query, but NOT node 1's phase-3
  // notice.
  ASSERT_NE(net.DeliverMatching(-1, 0,
                                static_cast<int>(MsgType::kClientSubmit)),
            0u);
  ASSERT_NE(net.DeliverMatching(0, 1,
                                static_cast<int>(MsgType::kSubtxnRequest)),
            0u);
  ASSERT_NE(net.DeliverMatching(1, 0,
                                static_cast<int>(MsgType::kCompletionNotice)),
            0u);
  ASSERT_NE(net.DeliverMatching(-1, -1,
                                static_cast<int>(MsgType::kClientResult)),
            0u);
  ASSERT_TRUE(done);
  EXPECT_EQ(read.version, 1u);
  EXPECT_EQ(read.reads.at("a").num, 11);
  EXPECT_EQ(read.reads.at("b").num, 22);  // carried version beats local vr

  while (!advanced) {
    net.DeliverAll();
    net.loop().Run();
  }
}

TEST(NodeEdgeTest, UnknownMessageTypeIgnored) {
  Env env(1);
  Message m;
  m.type = static_cast<MsgType>(200);
  m.from = 0;
  env.cluster.node(0).HandleMessage(m);  // must not crash
  TxnResult r = env.Run(0, TxnBuilder(0).Add("x", 1).Build());
  EXPECT_TRUE(r.status.ok());
}

TEST(NodeEdgeTest, SingleNodeClusterFullLifecycle) {
  Env env(1);
  for (int i = 0; i < 5; ++i) {
    TxnResult w = env.Run(0, TxnBuilder(0).Add("x", 2).Build());
    EXPECT_TRUE(w.status.ok());
    bool advanced = false;
    env.cluster.coordinator().StartAdvancement(
        [&](Status) { advanced = true; });
    env.net.loop().RunUntil([&] { return advanced; });
  }
  TxnResult r = env.Run(0, TxnBuilder(0).Get("x").Build());
  EXPECT_EQ(r.reads.at("x").num, 10);
  EXPECT_TRUE(env.cluster.CheckInvariants().ok());
}

}  // namespace
}  // namespace threev
