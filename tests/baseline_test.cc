// The paper's Section 1 comparison: the hospital anomaly is visible under
// "No Coordination" and "Manual Versioning" but impossible under 3V.
#include <gtest/gtest.h>

#include "threev/baseline/manual_versioning.h"
#include "threev/baseline/systems.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/scenarios.h"
#include "threev/workload/workload.h"

namespace threev {
namespace {

constexpr int kSubmit = static_cast<int>(MsgType::kClientSubmit);
constexpr int kSubtxn = static_cast<int>(MsgType::kSubtxnRequest);

// The hospital scenario from Figure 1, orchestrated so that the read
// lands between the two writes of the visit transaction:
//   T1 = {w11(x1), w12(x2)}   (radiology = node 0, pediatric = node 1)
//   T2 = {r21(x1), r22(x2)}
// Returns the two balances T2 observed.
std::pair<int64_t, int64_t> RunInterleavedHospital(System& system,
                                                   SimNet& net) {
  TxnSpec visit = MakeHospitalVisit(
      /*patient=*/7, /*visit_id=*/100,
      {{.department = 0, .amount = 120, .procedure = "xray"},
       {.department = 1, .amount = 80, .procedure = "checkup"}});
  TxnSpec inquiry = MakeHospitalInquiry(7, {0, 1});

  bool visit_done = false;
  system.Submit(0, visit, [&](const TxnResult&) { visit_done = true; });
  // Deliver the submission: w11 executes at node 0; w12 is in transit.
  while (net.DeliverMatching(-1, 0, kSubmit) == 0) {
  }

  // The inquiry runs NOW, before w12 lands at node 1.
  TxnResult inquiry_result;
  bool inquiry_done = false;
  system.Submit(0, inquiry, [&](const TxnResult& r) {
    inquiry_result = r;
    inquiry_done = true;
  });
  while (net.DeliverMatching(-1, 0, kSubmit) == 0) {
  }
  // Let the inquiry's child query run at node 1 (but NOT the visit's w12:
  // deliver only read subtransactions - the visit's child is an update).
  for (int guard = 0; guard < 100 && !inquiry_done; ++guard) {
    uint64_t id = 0;
    for (const auto& pm : net.Pending()) {
      bool is_update_subtxn =
          pm.msg.type == MsgType::kSubtxnRequest && !pm.msg.flag;
      if (!is_update_subtxn) {
        id = pm.id;
        break;
      }
    }
    if (id == 0) break;
    net.Deliver(id);
  }
  EXPECT_TRUE(inquiry_done);

  // Drain everything (w12 lands, visit completes).
  while (!visit_done) {
    net.DeliverAll();
    net.loop().Run();
  }
  return {inquiry_result.reads.at(HospitalBalanceKey(7, 0)).num,
          inquiry_result.reads.at(HospitalBalanceKey(7, 1)).num};
}

TEST(BaselineTest, NoCoordinationShowsPartialCharges) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 2, .manual = true}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kNoCoord;
  config.num_nodes = 2;
  auto system = MakeSystem(config, &net, &metrics);
  auto [radiology, pediatric] = RunInterleavedHospital(*system, net);
  // The anomaly: the patient sees the radiology charge but not the
  // pediatric one from the same visit.
  EXPECT_EQ(radiology, 120);
  EXPECT_EQ(pediatric, 0);
}

TEST(BaselineTest, ThreeVNeverShowsPartialCharges) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 2, .manual = true}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kThreeV;
  config.num_nodes = 2;
  auto system = MakeSystem(config, &net, &metrics);
  auto [radiology, pediatric] = RunInterleavedHospital(*system, net);
  // Reads use version 0; the in-flight visit is invisible as a whole.
  EXPECT_EQ(radiology, 0);
  EXPECT_EQ(pediatric, 0);
}

TEST(BaselineTest, ManualVersioningSplitsTransactionAcrossPeriods) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 4, .manual = true}, &metrics);
  ManualVersioningOptions options;
  options.num_nodes = 2;
  options.safety_delay = 1'000;
  ManualVersioningSystem system(options, &net, &metrics);

  // A visit starts in period 1: w11 lands at node 0 in period 1, w12 is
  // delayed past the period switch.
  TxnSpec visit = MakeHospitalVisit(
      9, 200,
      {{.department = 0, .amount = 50, .procedure = "a"},
       {.department = 1, .amount = 60, .procedure = "b"}});
  bool visit_done = false;
  system.Submit(0, visit, [&](const TxnResult&) { visit_done = true; });
  while (net.DeliverMatching(-1, 0, kSubmit) == 0) {
  }

  // The administrative period switch reaches both nodes while w12 is in
  // transit.
  system.SwitchPeriod();
  while (net.DeliverMatching(
             -1, -1, static_cast<int>(MsgType::kStartAdvancement)) != 0) {
  }
  EXPECT_EQ(system.node(0).vu(), 2u);
  EXPECT_EQ(system.node(1).vu(), 2u);

  // Now w12 lands at node 1 - in period 2 (the manual scheme's flaw).
  while (net.DeliverMatching(0, 1, kSubtxn) == 0) {
  }
  EXPECT_EQ(system.node(0).store().Read(HospitalBalanceKey(9, 0), 1)->num,
            50);
  // Node 1's period-1 copy never saw the charge...
  EXPECT_EQ(system.node(1)
                .store()
                .Read(HospitalBalanceKey(9, 1), 1)
                .status()
                .code(),
            StatusCode::kNotFound);
  // ...it sits in period 2 instead.
  EXPECT_EQ(system.node(1).store().Read(HospitalBalanceKey(9, 1), 2)->num,
            60);

  // After the safety delay, period 1 becomes readable: an inquiry reports
  // the radiology charge but not the pediatric one. Incorrect.
  net.loop().Run();  // fire the safety-delay timer
  net.DeliverAll();  // deliver read-advance messages
  EXPECT_EQ(system.node(0).vr(), 1u);
  TxnResult inquiry_result;
  bool inquiry_done = false;
  system.Submit(0, MakeHospitalInquiry(9, {0, 1}), [&](const TxnResult& r) {
    inquiry_result = r;
    inquiry_done = true;
  });
  while (!inquiry_done) {
    net.DeliverAll();
    net.loop().Run();
  }
  EXPECT_EQ(inquiry_result.reads.at(HospitalBalanceKey(9, 0)).num, 50);
  EXPECT_EQ(inquiry_result.reads.at(HospitalBalanceKey(9, 1)).num, 0);

  while (!visit_done) {
    net.DeliverAll();
    net.loop().Run();
  }
}

TEST(BaselineTest, CheckerFlagsNoCoordAndPassesThreeV) {
  for (SystemKind kind : {SystemKind::kNoCoord, SystemKind::kThreeV}) {
    Metrics metrics;
    HistoryRecorder history;
    SimNet net(SimNetOptions{.seed = 21}, &metrics);
    SystemConfig config;
    config.kind = kind;
    config.num_nodes = 4;
    auto system = MakeSystem(config, &net, &metrics, &history);
    if (kind == SystemKind::kThreeV) system->EnableAutoAdvance(15'000);

    WorkloadOptions wopts;
    wopts.num_nodes = 4;
    wopts.num_entities = 20;  // high contention => interleavings
    wopts.read_fraction = 0.4;
    wopts.zipf_theta = 1.1;
    wopts.seed = 33;
    WorkloadGenerator gen(wopts);
    RunOpenLoopSim(*system, net, gen, 800, /*mean_interarrival=*/200);

    CheckResult check = CheckHistory(history.Transactions());
    if (kind == SystemKind::kNoCoord) {
      EXPECT_GT(check.partial_visibility, 0u)
          << "NoCoord should exhibit partial reads: " << check.Summary();
    } else {
      EXPECT_TRUE(check.ok()) << check.Summary();
    }
  }
}

TEST(BaselineTest, ManualVersioningAnomaliesUnderLoad) {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 22}, &metrics);
  SystemConfig config;
  config.kind = SystemKind::kManual;
  config.num_nodes = 4;
  config.manual_safety_delay = 500;  // aggressively small: unsafe
  auto system = MakeSystem(config, &net, &metrics, &history);
  system->EnableAutoAdvance(5'000);

  WorkloadOptions wopts;
  wopts.num_nodes = 4;
  wopts.num_entities = 20;
  wopts.read_fraction = 0.4;
  wopts.seed = 44;
  WorkloadGenerator gen(wopts);
  RunOpenLoopSim(*system, net, gen, 800, /*mean_interarrival=*/200);

  CheckResult check = CheckHistory(history.Transactions());
  EXPECT_GT(check.total_anomalies(), 0u)
      << "manual versioning with a tiny safety delay should corrupt reads";
}

}  // namespace
}  // namespace threev
