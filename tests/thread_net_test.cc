// Integration under real concurrency: the same protocol engines driven by
// per-node mailbox threads and concurrent submitter threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "threev/common/wait_group.h"
#include "threev/core/cluster.h"
#include "threev/net/thread_net.h"
#include "threev/verify/checker.h"

namespace threev {
namespace {

TEST(ThreadNetTest, DeliversAndSchedules) {
  ThreadNet net;
  BlockingQueue<int> got;
  net.RegisterEndpoint(0, [&](const Message& m) {
    got.Push(static_cast<int>(m.seq));
  });
  net.Start();
  Message m;
  m.type = MsgType::kClientSubmit;
  m.seq = 42;
  net.Send(0, m);
  EXPECT_EQ(got.Pop().value(), 42);

  WaitGroup wg;
  wg.Add(1);
  net.ScheduleAfter(1'000, [&] { wg.Done(); });
  EXPECT_TRUE(wg.WaitFor(std::chrono::milliseconds(2000)));
  net.Stop();
}

TEST(ThreadNetTest, ClusterUnderConcurrentLoad) {
  Metrics metrics;
  HistoryRecorder history;
  ThreadNet net(ThreadNetOptions{}, &metrics);
  ClusterOptions options;
  options.num_nodes = 4;
  Cluster cluster(options, &net, &metrics, &history);
  net.Start();
  cluster.coordinator().EnableAutoAdvance(3'000);

  constexpr int kPerThread = 150;
  constexpr int kThreads = 3;
  WaitGroup wg;
  wg.Add(kThreads * kPerThread);
  std::atomic<int> committed{0};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t uid = static_cast<uint64_t>(t) * 100000 + i;
        NodeId a = (t + i) % 4, b = (t + i + 1) % 4;
        TxnSpec spec;
        if (i % 4 == 3) {
          spec = TxnBuilder(b)
                     .Get("log@" + std::to_string(b))
                     .Child(a, {OpGet("log@" + std::to_string(a))})
                     .Build();
        } else {
          spec = TxnBuilder(a)
                     .Add("bal@" + std::to_string(a), 1)
                     .Op(OpInsert("log@" + std::to_string(a), uid))
                     .Child(b, {OpAdd("bal@" + std::to_string(b), 1),
                                OpInsert("log@" + std::to_string(b), uid)})
                     .Build();
        }
        cluster.Submit(spec.root.node, spec, [&](const TxnResult& r) {
          if (r.status.ok()) committed.fetch_add(1);
          wg.Done();
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(30'000)))
      << "transactions did not drain";
  EXPECT_EQ(committed.load(), kThreads * kPerThread);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(metrics.lock_waits.load(), 0);

  // Quiesce the advancement machinery, then check the history.
  cluster.coordinator().DisableAutoAdvance();
  while (cluster.coordinator().running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  net.Stop();
  CheckResult check = CheckHistory(history.Transactions());
  EXPECT_TRUE(check.ok()) << check.Summary();
}

TEST(ThreadNetTest, MixedNonCommutingLoadResolves) {
  Metrics metrics;
  ThreadNet net(ThreadNetOptions{}, &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  options.mode = NodeMode::kNC3V;
  options.nc_lock_timeout = 20'000;
  Cluster cluster(options, &net, &metrics);
  net.Start();

  constexpr int kTotal = 120;
  WaitGroup wg;
  wg.Add(kTotal);
  std::atomic<int> committed{0}, aborted{0};
  for (int i = 0; i < kTotal; ++i) {
    NodeId a = i % 3, b = (i + 1) % 3;
    TxnSpec spec;
    if (i % 5 == 0) {
      // Non-commuting price changes over a small hot set.
      std::string key = "price@" + std::to_string(i % 2);
      spec = TxnBuilder(a)
                 .Put(key + "a", std::to_string(i))
                 .Child(b, {OpPut(key + "b", std::to_string(i))})
                 .Build();
    } else {
      spec = TxnBuilder(a)
                 .Add("stock@" + std::to_string(a), 1)
                 .Child(b, {OpAdd("stock@" + std::to_string(b), 1)})
                 .Build();
    }
    cluster.Submit(a, spec, [&](const TxnResult& r) {
      if (r.status.ok()) {
        committed.fetch_add(1);
      } else {
        aborted.fetch_add(1);
      }
      wg.Done();
    });
  }
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(30'000)));
  EXPECT_EQ(committed.load() + aborted.load(), kTotal);
  // All well-behaved traffic commits; only NC txns may time out.
  EXPECT_GE(committed.load(), kTotal * 4 / 5);
  net.Stop();
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.node(n).locks().HeldCount(), 0u)
        << "locks leaked on node " << n;
  }
}

// workers_per_endpoint > 1: the mailbox feeds several handler threads. The
// handler must be thread-safe (atomics here); every message is delivered
// exactly once, and under a blocking handler the extra workers actually run
// concurrently (with one worker the deliberate sleeps would serialize and
// blow the deadline).
TEST(ThreadNetTest, MultiWorkerEndpointDeliversAllConcurrently) {
  ThreadNet net(ThreadNetOptions{.workers_per_endpoint = 4});
  constexpr int kMessages = 64;
  std::atomic<int64_t> sum{0};
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  WaitGroup wg;
  wg.Add(kMessages);
  net.RegisterEndpoint(0, [&](const Message& m) {
    int now = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
    int prev = max_in_flight.load(std::memory_order_relaxed);
    while (now > prev &&
           !max_in_flight.compare_exchange_weak(prev, now,
                                                std::memory_order_relaxed)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sum.fetch_add(static_cast<int64_t>(m.seq), std::memory_order_relaxed);
    in_flight.fetch_sub(1, std::memory_order_acq_rel);
    wg.Done();
  });
  net.Start();
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.type = MsgType::kClientSubmit;
    m.seq = i + 1;
    net.Send(0, m);
  }
  // 64 x 5ms serialized would be ~320ms; four workers keep it well under.
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(10'000)));
  net.Stop();
  EXPECT_EQ(sum.load(), int64_t{kMessages} * (kMessages + 1) / 2);
  EXPECT_GT(max_in_flight.load(), 1) << "workers never overlapped";
}

TEST(ThreadNetTest, DeliveryDelayStillFifo) {
  ThreadNet net(ThreadNetOptions{.delivery_delay = 500});
  std::vector<int> order;
  std::mutex mu;
  WaitGroup wg;
  wg.Add(10);
  net.RegisterEndpoint(0, [&](const Message& m) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(static_cast<int>(m.seq));
    wg.Done();
  });
  net.Start();
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MsgType::kClientSubmit;
    m.from = 1;
    m.seq = i;
    net.Send(0, m);
  }
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(5000)));
  net.Stop();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace threev
