// Prefix-scan queries: store-level semantics plus end-to-end audit scans
// that must observe a version-consistent cut like any other read.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

TEST(StoreScanTest, PrefixFiltersAndSorts) {
  VersionedStore store;
  store.Seed("acct/1", Value{}, 0);
  store.Seed("acct/2", Value{}, 0);
  store.Seed("other/9", Value{}, 0);
  ASSERT_TRUE(store.Update("acct/2", 1, OpAdd("acct/2", 5)).ok());
  auto rows = store.ScanPrefix("acct/", 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "acct/1");
  EXPECT_EQ(rows[1].first, "acct/2");
  EXPECT_EQ(rows[1].second.num, 5);
}

TEST(StoreScanTest, RespectsVersionCeiling) {
  VersionedStore store;
  ASSERT_TRUE(store.Update("k/1", 1, OpAdd("k/1", 1)).ok());
  ASSERT_TRUE(store.Update("k/2", 2, OpAdd("k/2", 2)).ok());
  // At ceiling 1, k/2 (created at version 2) is invisible.
  auto rows = store.ScanPrefix("k/", 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "k/1");
  rows = store.ScanPrefix("k/", 2);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(StoreScanTest, EmptyPrefixScansEverything) {
  VersionedStore store;
  store.Seed("a", Value{}, 0);
  store.Seed("b", Value{}, 0);
  EXPECT_EQ(store.ScanPrefix("", 0).size(), 2u);
  EXPECT_TRUE(store.ScanPrefix("zzz", 0).empty());
}

TEST(ScanTxnTest, ValidationRejectsScanInUpdates) {
  TxnSpec spec = TxnBuilder(0).Add("x", 1).Scan("acct/").Build();
  EXPECT_FALSE(spec.read_only);
  EXPECT_EQ(spec.Validate(2).code(), StatusCode::kInvalidArgument);
  TxnSpec ok = TxnBuilder(0).Scan("acct/").Build();
  EXPECT_TRUE(ok.read_only);
  EXPECT_TRUE(ok.Validate(2).ok());
}

TEST(ScanTxnTest, EndToEndAuditSeesVersionCut) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 6}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(options, &net, &metrics);

  auto ignore = [](const TxnResult&) {};
  // Three charges for patient 7 across both nodes (version 1).
  cluster.Submit(0, TxnBuilder(0)
                        .Add("charges/7/xray", 120)
                        .Child(1, {OpAdd("charges/7/lab", 45)})
                        .Build(),
                 ignore);
  cluster.Submit(0, TxnBuilder(0).Add("charges/7/visit", 30).Build(),
                 ignore);
  net.loop().Run();

  // Pre-advancement scan: version 0 - nothing.
  TxnSpec audit = TxnBuilder(0)
                      .Scan("charges/7/")
                      .Child(1, {OpScan("charges/7/")})
                      .Build();
  TxnResult before;
  bool done = false;
  cluster.Submit(0, audit, [&](const TxnResult& r) {
    before = r;
    done = true;
  });
  net.loop().RunUntil([&] { return done; });
  EXPECT_TRUE(before.reads.empty());

  bool advanced = false;
  cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
  net.loop().RunUntil([&] { return advanced; });

  // Post-advancement scan sees the full cut from both nodes.
  TxnResult after;
  done = false;
  cluster.Submit(0, audit, [&](const TxnResult& r) {
    after = r;
    done = true;
  });
  net.loop().RunUntil([&] { return done; });
  ASSERT_EQ(after.reads.size(), 3u);
  EXPECT_EQ(after.reads.at("charges/7/xray").num, 120);
  EXPECT_EQ(after.reads.at("charges/7/lab").num, 45);
  EXPECT_EQ(after.reads.at("charges/7/visit").num, 30);

  // New charges in version 2 stay invisible to version-1 scans.
  cluster.Submit(1, TxnBuilder(1).Add("charges/7/mri", 400).Build(), ignore);
  net.loop().Run();
  done = false;
  cluster.Submit(0, audit, [&](const TxnResult& r) {
    after = r;
    done = true;
  });
  net.loop().RunUntil([&] { return done; });
  EXPECT_EQ(after.reads.size(), 3u);
  EXPECT_EQ(after.reads.count("charges/7/mri"), 0u);
}

TEST(ScanTxnTest, ScanOfGarbageCollectedVersionUsesRelabeledData) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 6}, &metrics);
  ClusterOptions options;
  options.num_nodes = 1;
  Cluster cluster(options, &net, &metrics);
  cluster.Submit(0, TxnBuilder(0).Add("s/a", 1).Build(),
                 [](const TxnResult&) {});
  net.loop().Run();
  for (int i = 0; i < 2; ++i) {
    bool advanced = false;
    cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
    net.loop().RunUntil([&] { return advanced; });
  }
  TxnResult r;
  bool done = false;
  cluster.Submit(0, TxnBuilder(0).Scan("s/").Build(), [&](const TxnResult& res) {
    r = res;
    done = true;
  });
  net.loop().RunUntil([&] { return done; });
  ASSERT_EQ(r.reads.size(), 1u);
  EXPECT_EQ(r.reads.at("s/a").num, 1);
}

}  // namespace
}  // namespace threev
