// Unit tests for the serializability checker on hand-built histories.
#include "threev/verify/checker.h"

#include <gtest/gtest.h>

namespace threev {
namespace {

HistoryRecorder::TxnRecord Update(TxnId id, Version version, uint64_t uid,
                                  std::vector<std::string> keys,
                                  bool committed = true) {
  HistoryRecorder::TxnRecord rec;
  rec.id = id;
  rec.read_only = false;
  rec.committed = committed;
  rec.version = version;
  rec.complete_time = static_cast<Micros>(id);
  rec.spec.root.node = 0;
  for (const auto& key : keys) {
    rec.spec.root.ops.push_back(OpInsert(key, uid));
  }
  return rec;
}

HistoryRecorder::TxnRecord Read(
    TxnId id, Version version,
    std::map<std::string, std::vector<uint64_t>> seen) {
  HistoryRecorder::TxnRecord rec;
  rec.id = id;
  rec.read_only = true;
  rec.committed = true;
  rec.version = version;
  rec.complete_time = static_cast<Micros>(id);
  for (auto& [key, ids] : seen) {
    Value v;
    v.ids = ids;
    rec.reads[key] = v;
  }
  return rec;
}

TEST(CheckerTest, CleanHistoryPasses) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a", "b"}),
      Read(2, 1, {{"a", {100}}, {"b", {100}}}),
      Read(3, 1, {{"a", {100}}, {"b", {100}}}),
  };
  CheckerOptions opts;
  opts.check_version_cut = true;
  CheckResult r = CheckHistory(h, opts);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.reads_checked, 2u);
  EXPECT_EQ(r.updates_indexed, 1u);
}

TEST(CheckerTest, DetectsPartialVisibility) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a", "b"}),
      Read(2, 1, {{"a", {100}}, {"b", {}}}),  // saw a, missed b
  };
  CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.partial_visibility, 1u);
  EXPECT_FALSE(r.ok());
}

TEST(CheckerTest, InvisibleUpdateIsFineWithoutVersionCut) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a", "b"}),
      Read(2, 0, {{"a", {}}, {"b", {}}}),  // saw nothing: all-or-NOTHING ok
  };
  EXPECT_TRUE(CheckHistory(h).ok());
}

TEST(CheckerTest, DetectsAbortedVisible) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a"}, /*committed=*/false),
      Read(2, 1, {{"a", {100}}}),
  };
  CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.aborted_visible, 1u);
}

TEST(CheckerTest, VersionCutMissedOldUpdate) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a"}),
      Read(2, 1, {{"a", {}}}),  // version 1 read must see version-1 update
  };
  CheckerOptions opts;
  opts.check_version_cut = true;
  CheckResult r = CheckHistory(h, opts);
  EXPECT_EQ(r.version_cut_violations, 1u);
  // Without the cut check this is a legal (all-or-nothing) read.
  EXPECT_TRUE(CheckHistory(h).ok());
}

TEST(CheckerTest, VersionCutSawFutureUpdate) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 2, 100, {"a"}),
      Read(2, 1, {{"a", {100}}}),  // version 1 read saw a version-2 update
  };
  CheckerOptions opts;
  opts.check_version_cut = true;
  CheckResult r = CheckHistory(h, opts);
  EXPECT_EQ(r.version_cut_violations, 1u);
}

TEST(CheckerTest, DetectsNonMonotonicReads) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 1, 100, {"a"}),
      Read(2, 1, {{"a", {100}}}),
      Read(3, 1, {{"a", {}}}),  // later read lost the record
  };
  CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.nonmonotonic_reads, 1u);
}

TEST(CheckerTest, ReadsOrderedByVersionNotCompletionTime) {
  // A version-1 read completing after a version-2 read is serialized
  // before it; seeing fewer records is legal.
  std::vector<HistoryRecorder::TxnRecord> h = {
      Update(1, 2, 100, {"a"}),
      Read(10, 2, {{"a", {100}}}),  // completes first (id = time = 10)
      Read(20, 1, {{"a", {}}}),     // older version, completes later
  };
  CheckResult r = CheckHistory(h);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(CheckerTest, UnknownRecordIdsIgnored) {
  std::vector<HistoryRecorder::TxnRecord> h = {
      Read(2, 1, {{"a", {999}}}),  // seeded data, no indexed writer
  };
  EXPECT_TRUE(CheckHistory(h).ok());
}

TEST(CheckerTest, SamplesAreCapped) {
  std::vector<HistoryRecorder::TxnRecord> h;
  h.push_back(Update(1, 1, 100, {"a", "b"}));
  for (TxnId i = 2; i < 30; ++i) {
    h.push_back(Read(i, 1, {{"a", {100}}, {"b", {}}}));
  }
  CheckerOptions opts;
  opts.max_samples = 3;
  CheckResult r = CheckHistory(h, opts);
  EXPECT_GT(r.partial_visibility, 3u);
  EXPECT_EQ(r.samples.size(), 3u);
}

}  // namespace
}  // namespace threev
