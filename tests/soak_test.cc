// Long-horizon soak: many advancement cycles under sustained mixed load
// with adversarially slow/variable links. Verifies that the system is
// stable in the large: versions and counters are garbage-collected (no
// unbounded growth), every invariant holds at every epoch, and the final
// data is exactly the sum of what committed.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

namespace threev {
namespace {

TEST(SoakTest, FiftyAdvancementCyclesUnderLoad) {
  Metrics metrics;
  HistoryRecorder history;
  // Slow links with heavy tails: trees regularly straddle switches.
  SimNet net(SimNetOptions{.seed = 1234, .min_delay = 200,
                           .mean_extra_delay = 1'500},
             &metrics);
  ClusterOptions options;
  options.num_nodes = 5;
  options.coordinator_poll_interval = 1'000;
  Cluster cluster(options, &net, &metrics, &history);

  WorkloadOptions wopts;
  wopts.num_nodes = 5;
  wopts.num_entities = 60;
  wopts.zipf_theta = 1.0;
  wopts.read_fraction = 0.25;
  wopts.fanout = 3;
  wopts.seed = 99;
  WorkloadGenerator gen(wopts);

  Rng arrivals(4321);
  size_t done = 0, submitted = 0;
  Micros t = 0;
  int advancements = 0;

  // Interleave: every epoch, schedule a batch of traffic, start an
  // advancement, drain, and audit.
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 60; ++i) {
      t += static_cast<Micros>(arrivals.Exponential(150));
      WorkloadJob job = gen.Next();
      net.loop().ScheduleAt(t, [&cluster, job, &done] {
        cluster.Submit(job.origin, job.spec,
                       [&done](const TxnResult&) { ++done; });
      });
      ++submitted;
    }
    size_t target = submitted;
    net.loop().RunUntil([&] { return done >= target; });
    // One full advancement per epoch: wait out any stale run, then drive
    // a fresh one to completion.
    net.loop().RunUntil([&] { return !cluster.coordinator().running(); });
    bool advanced = false;
    ASSERT_TRUE(cluster.coordinator().StartAdvancement(
        [&advanced](Status) { advanced = true; }));
    net.loop().RunUntil([&] { return advanced; });
    ++advancements;
    t = net.Now();

    ASSERT_TRUE(cluster.CheckInvariants().ok()) << "epoch " << epoch;
    // Counter tables are garbage-collected: at most the 3 live versions.
    for (size_t n = 0; n < 5; ++n) {
      EXPECT_LE(cluster.node(n).counters().ActiveVersions().size(), 4u)
          << "counters leak on node " << n << " at epoch " << epoch;
    }
  }
  // Let any trailing advancement finish.
  net.loop().Run();

  EXPECT_EQ(done, submitted);
  EXPECT_EQ(advancements, 50);
  EXPECT_GE(cluster.node(0).vr(), 50u);

  // Every store holds at most 2 versions per key now (quiescent state).
  for (size_t n = 0; n < 5; ++n) {
    for (const auto& key : cluster.node(n).store().Keys()) {
      EXPECT_LE(cluster.node(n).store().VersionsOf(key).size(), 2u)
          << key << " on node " << n;
    }
  }

  // Full history check, including the exact version cut.
  CheckerOptions copts;
  copts.check_version_cut = true;
  CheckResult check = CheckHistory(history.Transactions(), copts);
  EXPECT_TRUE(check.ok()) << check.Summary();
  EXPECT_GT(check.reads_checked, 500u);

  // Conservation: the final readable balance of every key equals the sum
  // of committed deltas with version <= vr (replay from history).
  Version vr = cluster.node(0).vr();
  std::map<std::string, int64_t> expected;
  for (const auto& txn : history.Transactions()) {
    if (txn.read_only || !txn.committed || txn.version > vr) continue;
    std::vector<const SubtxnPlan*> stack = {&txn.spec.root};
    while (!stack.empty()) {
      const SubtxnPlan* plan = stack.back();
      stack.pop_back();
      for (const auto& op : plan->ops) {
        if (op.kind == OpKind::kAdd) expected[op.key] += op.arg;
      }
      for (const auto& c : plan->children) stack.push_back(&c);
    }
  }
  size_t verified = 0;
  for (const auto& [key, sum] : expected) {
    auto at = key.rfind('@');
    size_t node = std::stoul(key.substr(at + 1));
    Result<Value> value = cluster.node(node).store().Read(key, vr);
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(value->num, sum) << key;
    ++verified;
  }
  EXPECT_GT(verified, 100u);
}

}  // namespace
}  // namespace threev
