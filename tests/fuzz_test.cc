// Tests for the deterministic schedule-exploration fuzzer itself: plan
// generation is a pure function of (seed, quick), runs are bit-reproducible,
// repro artifacts round-trip, drop schedules converge through
// retransmission, and - the reason the subsystem exists - an injected
// protocol bug is caught by the oracle battery and shrunk to a tiny
// schedule.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "threev/fuzz/fuzz.h"
#include "threev/fuzz/plan.h"
#include "threev/fuzz/shrink.h"

namespace threev {
namespace {

using fuzz::BuildPlan;
using fuzz::FaultKind;
using fuzz::FaultSpec;
using fuzz::FilterPlan;
using fuzz::FuzzOptions;
using fuzz::FuzzPlan;
using fuzz::FuzzResult;
using fuzz::PlanFromRepro;
using fuzz::ReproFromJson;
using fuzz::ReproSpec;
using fuzz::ReproToJson;
using fuzz::RunPlan;
using fuzz::Shrink;
using fuzz::ShrinkOutcome;

FuzzOptions ScratchOptions(const std::string& name) {
  FuzzOptions options;
  options.scratch_dir =
      (std::filesystem::path(::testing::TempDir()) / ("threev_fz_" + name))
          .string();
  return options;
}

TEST(FuzzPlanTest, BuildPlanIsPure) {
  for (uint64_t seed : {1ull, 42ull, 987654321ull}) {
    FuzzPlan a = BuildPlan(seed, /*quick=*/false);
    FuzzPlan b = BuildPlan(seed, /*quick=*/false);
    EXPECT_EQ(a.Summary(), b.Summary());
    EXPECT_EQ(a.txns.size(), b.txns.size());
    EXPECT_EQ(a.faults.size(), b.faults.size());
    // quick must derive a different (smaller) plan, not a truncation that
    // accidentally shares the full plan's structure.
    FuzzPlan q = BuildPlan(seed, /*quick=*/true);
    EXPECT_LT(q.txns.size(), a.txns.size());
  }
}

TEST(FuzzPlanTest, ReorderRulesNeverCoexistWithAbortInjection) {
  // FIFO-bypass reordering breaks the compensation model (a compensating
  // child can overtake its original), so the generator must never emit
  // both. 200 seeds x 2 profiles gives every fault-kind roll a chance.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    for (bool quick : {false, true}) {
      FuzzPlan plan = BuildPlan(seed, quick);
      bool reorders = false;
      for (const FaultSpec& f : plan.faults) {
        if (f.kind == FaultKind::kReorderChannel) reorders = true;
      }
      if (reorders) {
        EXPECT_EQ(plan.profile.abort_probability, 0.0)
            << "seed " << seed << " quick " << quick;
      }
    }
  }
}

TEST(FuzzPlanTest, FilterPlanKeepsOnlyListedIndices) {
  FuzzPlan plan = BuildPlan(7, /*quick=*/true);
  ASSERT_GE(plan.txns.size(), 3u);
  FuzzPlan filtered = FilterPlan(plan, {0, 2}, {});
  EXPECT_EQ(filtered.txns.size(), 2u);
  EXPECT_TRUE(filtered.faults.empty());
  EXPECT_EQ(filtered.seed, plan.seed);
  // The kept transactions are the originals, not re-randomized ones.
  EXPECT_EQ(filtered.txns[0].origin, plan.txns[0].origin);
  EXPECT_EQ(filtered.txns[1].origin, plan.txns[2].origin);
}

TEST(FuzzPlanTest, ReproArtifactRoundTrips) {
  ReproSpec repro;
  repro.seed = 123456789;
  repro.quick = true;
  repro.all_txns = false;
  repro.all_faults = false;
  repro.txns = {0, 5, 17};
  repro.faults = {1};
  repro.note = "counter tally mismatch at version 2 [0][1]";
  std::string json = ReproToJson(repro);
  ReproSpec parsed;
  std::string error;
  ASSERT_TRUE(ReproFromJson(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, repro.seed);
  EXPECT_EQ(parsed.quick, repro.quick);
  EXPECT_EQ(parsed.all_txns, repro.all_txns);
  EXPECT_EQ(parsed.txns, repro.txns);
  EXPECT_EQ(parsed.faults, repro.faults);
  EXPECT_EQ(parsed.note, repro.note);

  // PlanFromRepro == FilterPlan(BuildPlan(seed, quick), txns, faults).
  FuzzPlan direct = FilterPlan(BuildPlan(repro.seed, repro.quick),
                               repro.txns, repro.faults);
  EXPECT_EQ(PlanFromRepro(parsed).Summary(), direct.Summary());

  ASSERT_FALSE(ReproFromJson("{\"schema\": \"bogus\"}", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FuzzRunTest, SameSeedSameHistoryHash) {
  // Bit-reproducibility is the contract everything else (repro artifacts,
  // shrinking, corpus regression) stands on. Seed 3's quick plan includes
  // a crash point, so the hash also covers kill/restart scheduling.
  for (bool quick : {true}) {
    FuzzOptions options = ScratchOptions("determinism");
    FuzzResult a = fuzz::RunSeed(3, quick, options);
    FuzzResult b = fuzz::RunSeed(3, quick, options);
    EXPECT_TRUE(a.ok) << a.Summary();
    EXPECT_GT(a.crashes, 0) << "seed 3 quick is expected to kill a node";
    EXPECT_EQ(a.history_hash, b.history_hash);
    EXPECT_EQ(a.virtual_elapsed, b.virtual_elapsed);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.aborted, b.aborted);
  }
}

TEST(FuzzRunTest, SmallCleanSweep) {
  FuzzOptions options = ScratchOptions("sweep");
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzResult result = fuzz::RunSeed(seed, /*quick=*/true, options);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.Summary();
  }
}

TEST(FuzzRunTest, DropScheduleConvergesThroughRetransmission) {
  // A drop rule with probability 1 drains its whole budget, and the run
  // still converges: every targeted message type has a retransmission
  // path, and the budget stays below the coordinator's retry allowance.
  FuzzPlan plan = BuildPlan(9, /*quick=*/true);
  plan.faults.clear();
  FaultSpec drop;
  drop.kind = FaultKind::kDropRule;
  drop.drop_type = MsgType::kCounterRead;
  drop.probability = 1.0;
  drop.budget = 6;
  plan.faults.push_back(drop);
  FaultSpec drop2;
  drop2.kind = FaultKind::kDropRule;
  drop2.drop_type = MsgType::kStartAdvancementAck;
  drop2.probability = 1.0;
  drop2.budget = 4;
  plan.faults.push_back(drop2);
  FuzzResult result = RunPlan(plan, ScratchOptions("drops"));
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_EQ(result.injected_drops, 10) << "both budgets must fully drain";
}

TEST(FuzzOracleTest, InjectedBugIsCaughtAndShrinksSmall) {
  // Acceptance gate for the whole subsystem: a silently skipped completion
  // counter (test-only NodeOptions flag) must break quiescence /
  // conservation, be caught by the oracles, and shrink to a schedule of
  // at most 10 events.
  FuzzOptions options = ScratchOptions("bug");
  options.injected_bug = FuzzOptions::InjectedBug::kSkipCompletionCounter;
  options.bug_node = 0;
  FuzzPlan plan = BuildPlan(42, /*quick=*/true);

  ShrinkOutcome outcome = Shrink(plan, options);
  ASSERT_TRUE(outcome.shrunk) << "the injected bug was not even detected";
  EXPECT_LE(outcome.events, 10u) << "shrinker left too large a schedule";
  EXPECT_FALSE(outcome.final_result.ok);
  EXPECT_FALSE(outcome.repro.note.empty());

  // The artifact replays to the same failure with the bug present...
  FuzzPlan replay = PlanFromRepro(outcome.repro);
  FuzzResult bad = RunPlan(replay, options);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.history_hash, outcome.final_result.history_hash)
      << "replay of the minimized schedule must be bit-identical";
  // ...and passes on a healthy build (the schedule is innocent, the bug
  // was the point).
  FuzzResult good = RunPlan(replay, ScratchOptions("bug_clean"));
  EXPECT_TRUE(good.ok) << good.Summary();
}

}  // namespace
}  // namespace threev
