// Durability subsystem: WAL framing and replay, checkpoint files, and the
// recovery path that rebuilds node state from checkpoint + log.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "threev/core/cluster.h"
#include "threev/core/counters.h"
#include "threev/durability/checkpoint.h"
#include "threev/durability/recovery.h"
#include "threev/durability/wal.h"
#include "threev/net/sim_net.h"
#include "threev/storage/versioned_store.h"

namespace threev {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory.
std::string TestDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("threev_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

WalRecord UpdateRecord(const std::string& key, Version v, int64_t num,
                       TxnId txn = 7) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.version = v;
  rec.txn = txn;
  WalImage img;
  img.key = key;
  img.version = v;
  img.value.num = num;
  rec.images.push_back(std::move(img));
  return rec;
}

TEST(WalCodecTest, RecordRoundTripsAllFields) {
  WalRecord rec;
  rec.type = WalRecordType::kNcExecute;
  rec.version = 3;
  rec.flag = true;
  rec.peer = 2;
  rec.txn = (uint64_t{5} << 40) | 123;
  rec.seq = 4096;
  rec.failed = true;
  WalImage img;
  img.key = "acct@1";
  img.version = 3;
  img.value.num = -42;
  img.value.ids = {9, 8, 7};
  img.value.str = "s";
  rec.images.push_back(img);
  UndoEntry undo;
  undo.key = "acct@1";
  undo.version = 3;
  undo.created = true;
  undo.prior.num = 1;
  rec.undo.push_back(undo);

  std::vector<uint8_t> buf = EncodeWalRecord(rec);
  Result<WalRecord> back = DecodeWalRecord(buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(EncodeWalRecord(*back), buf);
  EXPECT_EQ(back->type, rec.type);
  EXPECT_EQ(back->txn, rec.txn);
  EXPECT_TRUE(back->failed);
  ASSERT_EQ(back->images.size(), 1u);
  EXPECT_EQ(back->images[0], rec.images[0]);
  ASSERT_EQ(back->undo.size(), 1u);
  EXPECT_EQ(back->undo[0].prior.num, 1);
}

TEST(WalTest, AppendThenReadAllInOrder) {
  const std::string dir = TestDir("wal_append");
  WalOptions opts;
  opts.dir = dir;
  auto wal = WriteAheadLog::Open(opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*wal)->Append(UpdateRecord("k", 1, i)).ok());
  }
  uint64_t bytes = 0;
  auto records = WriteAheadLog::ReadAll(dir, 1, &bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ((*records)[i].images[0].value.num, i);
  }
  EXPECT_EQ(bytes, (*wal)->bytes_appended());
}

TEST(WalTest, TornTailEndsReplayCleanly) {
  const std::string dir = TestDir("wal_torn");
  WalOptions opts;
  opts.dir = dir;
  {
    auto wal = WriteAheadLog::Open(opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(UpdateRecord("k", 1, i)).ok());
    }
  }
  // Simulate a crash mid-append: a frame header promising more payload
  // than the file holds.
  std::FILE* f = std::fopen(
      WriteAheadLog::SegmentPath(dir, 1).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const uint8_t torn[8] = {0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4};
  ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
  std::fclose(f);

  auto records = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 5u) << "torn tail must not abort recovery";
}

TEST(WalTest, CorruptFrameStopsSegmentReplay) {
  const std::string dir = TestDir("wal_corrupt");
  WalOptions opts;
  opts.dir = dir;
  {
    auto wal = WriteAheadLog::Open(opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(UpdateRecord("k", 1, i)).ok());
    }
  }
  // Flip one payload byte in the middle of the segment: replay keeps the
  // prefix and discards everything from the corrupt frame on.
  const std::string path = WriteAheadLog::SegmentPath(dir, 1);
  auto size = fs::file_size(path);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  auto records = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(records.ok());
  EXPECT_LT(records->size(), 5u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].images[0].value.num, static_cast<int64_t>(i));
  }
}

TEST(WalTest, RotationAndTruncation) {
  const std::string dir = TestDir("wal_rotate");
  WalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 128;  // force frequent rotation
  auto wal = WriteAheadLog::Open(opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*wal)->Append(UpdateRecord("key", 1, i)).ok());
  }
  std::vector<uint64_t> segs = WriteAheadLog::ListSegments(dir);
  ASSERT_GT(segs.size(), 2u);
  uint64_t cut = segs[segs.size() / 2];

  auto all = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 30u);
  auto tail = WriteAheadLog::ReadAll(dir, cut);
  ASSERT_TRUE(tail.ok());

  ASSERT_TRUE((*wal)->TruncateBefore(cut).ok());
  EXPECT_EQ(WriteAheadLog::ListSegments(dir).front(), cut);
  auto after = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(after.ok());
  // Truncation only removed what the cut no longer needs.
  EXPECT_EQ(after->size(), tail->size());
}

TEST(WalTest, ReopenNeverAppendsBehindATornTail) {
  const std::string dir = TestDir("wal_reopen");
  WalOptions opts;
  opts.dir = dir;
  uint64_t first_seg;
  {
    auto wal = WriteAheadLog::Open(opts);
    ASSERT_TRUE(wal.ok());
    first_seg = (*wal)->current_segment();
    ASSERT_TRUE((*wal)->Append(UpdateRecord("k", 1, 1)).ok());
  }
  // Torn frame at the tail of the first incarnation's segment.
  std::FILE* f = std::fopen(
      WriteAheadLog::SegmentPath(dir, first_seg).c_str(), "ab");
  const uint8_t garbage[3] = {0xde, 0xad, 0xbe};
  ASSERT_EQ(std::fwrite(garbage, 1, sizeof(garbage), f), sizeof(garbage));
  std::fclose(f);

  auto wal2 = WriteAheadLog::Open(opts);
  ASSERT_TRUE(wal2.ok());
  EXPECT_GT((*wal2)->current_segment(), first_seg)
      << "appending behind a torn tail would make new records unreachable";
  ASSERT_TRUE((*wal2)->Append(UpdateRecord("k", 1, 2)).ok());

  auto records = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].images[0].value.num, 2);
}

TEST(CheckpointTest, RoundTrip) {
  const std::string dir = TestDir("ckpt_roundtrip");
  CheckpointData ck;
  ck.vu = 4;
  ck.vr = 3;
  ck.seq_floor = 8192;
  ck.wal_segment = 6;
  WalImage img;
  img.key = "a@0";
  img.version = 3;
  img.value.num = 17;
  ck.store.push_back(img);
  CheckpointData::CounterRow row;
  row.version = 4;
  row.r = {1, 2, 3};
  row.c = {4, 5, 6};
  ck.counters.push_back(row);

  ASSERT_TRUE(WriteCheckpointFile(dir, ck).ok());
  auto back = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->vu, 4u);
  EXPECT_EQ(back->vr, 3u);
  EXPECT_EQ(back->seq_floor, 8192u);
  EXPECT_EQ(back->wal_segment, 6u);
  ASSERT_EQ(back->store.size(), 1u);
  EXPECT_EQ(back->store[0], img);
  ASSERT_EQ(back->counters.size(), 1u);
  EXPECT_EQ(back->counters[0].r, row.r);
  EXPECT_EQ(back->counters[0].c, row.c);
}

TEST(CheckpointTest, CorruptLatestFallsBackToOlder) {
  const std::string dir = TestDir("ckpt_fallback");
  CheckpointData old_ck;
  old_ck.vu = 2;
  old_ck.vr = 1;
  old_ck.wal_segment = 3;
  ASSERT_TRUE(WriteCheckpointFile(dir, old_ck).ok());

  CheckpointData new_ck = old_ck;
  new_ck.vu = 3;
  new_ck.wal_segment = 9;
  ASSERT_TRUE(WriteCheckpointFile(dir, new_ck).ok());
  // Writing the newer checkpoint superseded (deleted) the older one;
  // restore it to model a crash between write and cleanup, then corrupt
  // the newer file.
  ASSERT_TRUE(WriteCheckpointFile(dir, old_ck).ok());
  std::string latest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().string();
    if (name.find("00000009") != std::string::npos) latest = name;
  }
  ASSERT_FALSE(latest.empty());
  std::FILE* f = std::fopen(latest.c_str(), "rb+");
  std::fseek(f, 10, SEEK_SET);
  std::fputc(0x5a, f);
  std::fclose(f);

  auto back = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(back.ok()) << "corrupt checkpoint must fall back, not fail";
  EXPECT_EQ(back->vu, 2u);
  EXPECT_EQ(back->wal_segment, 3u);
}

TEST(RecoveryTest, ReplaySameLogTwiceYieldsIdenticalState) {
  const std::string dir = TestDir("recovery_idempotent");
  {
    WalOptions opts;
    opts.dir = dir;
    auto wal = WriteAheadLog::Open(opts);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(UpdateRecord("x@0", 1, 10)).ok());
    ASSERT_TRUE((*wal)->Append(UpdateRecord("y@0", 1, 20)).ok());
    WalRecord sw;
    sw.type = WalRecordType::kVersionSwitch;
    sw.version = 2;
    sw.flag = true;
    ASSERT_TRUE((*wal)->Append(sw).ok());
    WalRecord cnt;
    cnt.type = WalRecordType::kCounter;
    cnt.version = 2;
    cnt.flag = true;
    cnt.peer = 1;
    ASSERT_TRUE((*wal)->Append(cnt).ok());
    ASSERT_TRUE((*wal)->Append(UpdateRecord("x@0", 2, 15)).ok());
    WalRecord seq;
    seq.type = WalRecordType::kSeqReserve;
    seq.seq = 4096;
    ASSERT_TRUE((*wal)->Append(seq).ok());
  }

  auto recover = [&dir](VersionedStore* store, CounterTable* counters) {
    auto state = RecoverNodeState(dir, store, counters);
    EXPECT_TRUE(state.ok());
    return *state;
  };
  VersionedStore s1, s2;
  CounterTable c1(3), c2(3);
  RecoveredState r1 = recover(&s1, &c1);
  RecoveredState r2 = recover(&s2, &c2);

  EXPECT_EQ(r1.vu, 2u);
  EXPECT_EQ(r1.vr, 0u);
  EXPECT_EQ(r1.seq_floor, 4096u);
  EXPECT_EQ(r1.vu, r2.vu);
  EXPECT_EQ(r1.seq_floor, r2.seq_floor);
  EXPECT_EQ(s1.DumpAll(), s2.DumpAll());
  EXPECT_EQ(c1.SnapshotR(2), c2.SnapshotR(2));
  EXPECT_EQ(c1.R(2, 1), 1);

  // Physical after-images are individually idempotent: re-applying the
  // whole image stream on top of an already-recovered store is a no-op.
  auto records = WriteAheadLog::ReadAll(dir, 1);
  ASSERT_TRUE(records.ok());
  RecoveredState scratch;
  CounterTable dummy(3);
  for (const auto& rec : *records) {
    if (rec.type == WalRecordType::kUpdate) {
      ApplyWalRecord(rec, &s1, &dummy, &scratch);
    }
  }
  EXPECT_EQ(s1.DumpAll(), s2.DumpAll());
}

TEST(RecoveryTest, EmptyDirRecoversToInitialState) {
  const std::string dir = TestDir("recovery_empty");
  VersionedStore store;
  CounterTable counters(2);
  auto state = RecoverNodeState(dir, &store, &counters);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->vu, 1u);
  EXPECT_EQ(state->vr, 0u);
  EXPECT_EQ(state->seq_floor, 1u);
  EXPECT_EQ(store.KeyCount(), 0u);
  EXPECT_TRUE(state->in_doubt.empty());
}

// End-to-end: a single-node cluster runs traffic, checkpoints (which
// truncates the log), is killed and restarted, and the recovered store
// serves every acknowledged write.
TEST(RecoveryTest, CheckpointRestartRoundTrip) {
  const std::string dir = TestDir("recovery_cluster");
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 5}, &metrics);
  ClusterOptions options;
  options.num_nodes = 1;
  options.wal_dir = dir;
  Cluster cluster(options, &net, &metrics);

  size_t done = 0;
  for (int i = 0; i < 10; ++i) {
    cluster.Submit(0, TxnBuilder(0).Add("acct", 5).Build(),
                   [&done](const TxnResult& r) {
                     EXPECT_TRUE(r.status.ok());
                     ++done;
                   });
  }
  net.loop().RunUntil([&] { return done == 10; });

  ASSERT_TRUE(cluster.CheckpointAll().ok());
  uint64_t ckpt_seg = cluster.node(0).wal()->current_segment();
  EXPECT_GE(WriteAheadLog::ListSegments(dir + "/node-0").front(), ckpt_seg)
      << "checkpoint must truncate covered segments";
  EXPECT_EQ(metrics.checkpoints_written.load(), 1);

  // A couple more (logged but not checkpointed) writes, then crash.
  done = 0;
  for (int i = 0; i < 3; ++i) {
    cluster.Submit(0, TxnBuilder(0).Add("acct", 1).Build(),
                   [&done](const TxnResult&) { ++done; });
  }
  net.loop().RunUntil([&] { return done == 3; });
  cluster.KillNode(0);
  cluster.RestartNode(0);

  EXPECT_EQ(metrics.recoveries.load(), 2);  // initial open + restart
  Result<Value> v = cluster.node(0).store().Read("acct", 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num, 53);

  // The restarted node is fully operational.
  done = 0;
  cluster.Submit(0, TxnBuilder(0).Add("acct", 7).Build(),
                 [&done](const TxnResult& r) {
                   EXPECT_TRUE(r.status.ok());
                   ++done;
                 });
  net.loop().RunUntil([&] { return done == 1; });
  v = cluster.node(0).store().Read("acct", 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num, 60);
}

TEST(RecoveryTest, CheckpointRefusedWhileSubtxnsPending) {
  const std::string dir = TestDir("recovery_busy");
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 2, .manual = true}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  options.wal_dir = dir;
  Cluster cluster(options, &net, &metrics);

  bool done = false;
  cluster.Submit(
      0, TxnBuilder(0).Add("a", 1).Child(1, {OpAdd("b", 1)}).Build(),
      [&done](const TxnResult&) { done = true; });
  // Deliver the submit but hold the child subtransaction in flight: node 0
  // has an open tree and must refuse to checkpoint.
  net.DeliverMatching(-1, 0, static_cast<int>(MsgType::kClientSubmit));
  Status s = cluster.node(0).WriteCheckpoint();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();

  net.DeliverAll();
  net.loop().RunUntil([&] { return done; });
  EXPECT_TRUE(cluster.CheckpointAll().ok());
}

}  // namespace
}  // namespace threev
