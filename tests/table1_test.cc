// Exact replay of the paper's Table 1 example execution (Section 2.3) and
// the Figure 2 version states, using SimNet's manual mode to reproduce the
// paper's interleaving event by event.
//
// Sites: p=0 (items A, B), q=1 (items D, E), s=2 (item F).
// Update tx i  (at p, version 1): A+=10; children: iq at q (D+=20, E+=30;
//                                 child iqp at p: B+=40), is at s (F+=50).
// Update tx j  (at q, version 2): D+=200; child jp at p (A+=100).
// Read tx x (at p) reads A; read tx y (at q) reads D - both version 0.
#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

constexpr int kSubmit = static_cast<int>(MsgType::kClientSubmit);
constexpr int kSubtxn = static_cast<int>(MsgType::kSubtxnRequest);
constexpr int kNotice = static_cast<int>(MsgType::kCompletionNotice);
constexpr int kStartAdv = static_cast<int>(MsgType::kStartAdvancement);
constexpr int kResult = static_cast<int>(MsgType::kClientResult);

class Table1Test : public ::testing::Test {
 protected:
  Table1Test()
      : net_(SimNetOptions{.manual = true}, &metrics_),
        cluster_(MakeOptions(), &net_, &metrics_) {
    // Initial data, all in version 0 (Figure 2 start state).
    cluster_.node(0).store().Seed("A", Value{});
    cluster_.node(0).store().Seed("B", Value{});
    cluster_.node(1).store().Seed("D", Value{});
    cluster_.node(1).store().Seed("E", Value{});
    cluster_.node(2).store().Seed("F", Value{});
  }

  static ClusterOptions MakeOptions() {
    ClusterOptions options;
    options.num_nodes = 3;
    return options;
  }

  // Shorthand: deliver the oldest held message matching (from,to,type).
  void Deliver(int from, int to, int type) {
    ASSERT_NE(net_.DeliverMatching(from, to, type), 0u)
        << "no held message " << from << "->" << to << " type " << type;
  }

  NodeId client() const { return cluster_.client_id(); }
  NodeId coord() const { return cluster_.coordinator_id(); }

  int64_t R(int node, Version v, NodeId to) {
    return cluster_.node(node).counters().R(v, to);
  }
  int64_t C(int node, Version v, NodeId from) {
    return cluster_.node(node).counters().C(v, from);
  }

  Metrics metrics_;
  SimNet net_;
  Cluster cluster_;
};

TEST_F(Table1Test, ReplaysPaperExecution) {
  const NodeId p = 0, q = 1, s = 2;

  // --- Transaction plans ---------------------------------------------
  SubtxnPlan iqp;  // i -> q -> p
  iqp.node = p;
  iqp.ops = {OpAdd("B", 40)};
  SubtxnPlan iq;
  iq.node = q;
  iq.ops = {OpAdd("D", 20), OpAdd("E", 30)};
  iq.children = {iqp};
  TxnSpec txn_i = TxnBuilder(p).Add("A", 10).ChildPlan(iq).Child(
      s, {OpAdd("F", 50)}).Build();

  TxnSpec txn_j = TxnBuilder(q).Add("D", 200).Child(p, {OpAdd("A", 100)})
                      .Build();
  TxnSpec read_x = TxnBuilder(p).Get("A").Build();
  TxnSpec read_y = TxnBuilder(q).Get("D").Build();

  TxnResult result_i, result_j, result_x, result_y;
  cluster_.Submit(p, txn_i, [&](const TxnResult& r) { result_i = r; });
  cluster_.Submit(p, read_x, [&](const TxnResult& r) { result_x = r; });

  // TIME 1-4: update tx i arrives at p; updates A version 1; issues
  // subtransactions iq and is; request counters bumped before sending.
  Deliver(client(), p, kSubmit);
  EXPECT_EQ(R(p, 1, p), 1);  // R1pp = 1
  EXPECT_EQ(R(p, 1, q), 1);  // R1pq = 1
  EXPECT_EQ(R(p, 1, s), 1);  // R1ps = 1
  EXPECT_EQ(cluster_.node(p).store().VersionsOf("A"),
            (std::vector<Version>{0, 1}));
  EXPECT_EQ(cluster_.node(p).store().Read("A", 1)->num, 10);

  // TIME 5-6: read tx x arrives at p, reads A version 0.
  Deliver(client(), p, kSubmit);
  Deliver(p, client(), kResult);
  EXPECT_EQ(result_x.version, 0u);
  EXPECT_EQ(result_x.reads.at("A").num, 0);

  // TIME 7: is arrives at s, updates F version 1, completes (C1ps = 1).
  Deliver(p, s, kSubtxn);
  EXPECT_EQ(cluster_.node(s).store().Read("F", 1)->num, 50);
  EXPECT_EQ(C(s, 1, p), 1);  // C1ps = 1

  // TIME 8: version advancement begins (messages in flight, not yet
  // delivered anywhere).
  bool advanced = false;
  ASSERT_TRUE(cluster_.coordinator().StartAdvancement(
      [&](Status st) { advanced = st.ok(); }));

  // TIME 9-10: the advancement notice reaches q first; q switches to
  // update version 2.
  Deliver(coord(), q, kStartAdv);
  EXPECT_EQ(cluster_.node(q).vu(), 2u);
  EXPECT_EQ(cluster_.node(p).vu(), 1u);  // p not notified yet

  // TIME 10-12: update tx j arrives at q, gets version 2, updates D
  // version 2 (copy-on-update from version 0), spawns jp.
  cluster_.Submit(q, txn_j, [&](const TxnResult& r) { result_j = r; });
  Deliver(client(), q, kSubmit);
  EXPECT_EQ(R(q, 2, q), 1);  // R2qq = 1
  EXPECT_EQ(R(q, 2, p), 1);  // R2qp = 1
  EXPECT_EQ(cluster_.node(q).store().VersionsOf("D"),
            (std::vector<Version>{0, 2}));
  EXPECT_EQ(cluster_.node(q).store().Read("D", 2)->num, 200);

  // TIME 13-16: iq (version 1) arrives at q after the switch. D already
  // has a version-2 copy, so iq's write lands in versions 1 AND 2 (the
  // dual write); E has no version-2 copy, so only version 1.
  Deliver(p, q, kSubtxn);
  EXPECT_EQ(cluster_.node(q).store().VersionsOf("D"),
            (std::vector<Version>{0, 1, 2}));
  EXPECT_EQ(cluster_.node(q).store().Read("D", 0)->num, 0);
  EXPECT_EQ(cluster_.node(q).store().Read("D", 1)->num, 20);
  EXPECT_EQ(cluster_.node(q).store().Read("D", 2)->num, 220);
  EXPECT_EQ(cluster_.node(q).store().VersionsOf("E"),
            (std::vector<Version>{0, 1}));
  EXPECT_EQ(cluster_.node(q).store().Read("E", 1)->num, 30);
  EXPECT_EQ(R(q, 1, p), 1);  // R1qp = 1 (iqp issued)
  EXPECT_GE(metrics_.dual_version_writes.load(), 1);

  // TIME 17-18: read tx y arrives at q, still reads D version 0.
  cluster_.Submit(q, read_y, [&](const TxnResult& r) { result_y = r; });
  Deliver(client(), q, kSubmit);
  Deliver(q, client(), kResult);
  EXPECT_EQ(result_y.version, 0u);
  EXPECT_EQ(result_y.reads.at("D").num, 0);

  // TIME 19-20: jp (version 2) arrives at p BEFORE p was notified of the
  // advancement; p infers the advancement from the version-id, advances
  // its update version, and jp updates A version 2. C2qp = 1.
  Deliver(q, p, kSubtxn);
  EXPECT_EQ(cluster_.node(p).vu(), 2u);
  EXPECT_EQ(metrics_.version_inferences.load(), 1);
  EXPECT_EQ(cluster_.node(p).store().VersionsOf("A"),
            (std::vector<Version>{0, 1, 2}));
  EXPECT_EQ(cluster_.node(p).store().Read("A", 2)->num, 110);
  EXPECT_EQ(C(p, 2, q), 1);  // C2qp = 1

  // The explicit advancement notice now arrives at p: already advanced.
  Deliver(coord(), p, kStartAdv);
  EXPECT_EQ(cluster_.node(p).vu(), 2u);
  Deliver(coord(), s, kStartAdv);
  EXPECT_EQ(cluster_.node(s).vu(), 2u);

  // TIME 19-20 (site p, straggler): iqp (version 1) arrives at p, which is
  // already on update version 2; B has no version-2 copy, so the write
  // lands only in version 1. C1qp = 1.
  Deliver(q, p, kSubtxn);
  EXPECT_EQ(cluster_.node(p).store().VersionsOf("B"),
            (std::vector<Version>{0, 1}));
  EXPECT_EQ(cluster_.node(p).store().Read("B", 1)->num, 40);
  EXPECT_EQ(C(p, 1, q), 1);  // C1qp = 1

  // TIME 21-22: jp's completion notice arrives at q; j is complete
  // (C2qq = 1).
  Deliver(p, q, kNotice);
  EXPECT_EQ(C(q, 2, q), 1);  // C2qq = 1
  Deliver(q, client(), kResult);
  EXPECT_TRUE(result_j.status.ok());
  EXPECT_EQ(result_j.version, 2u);

  // TIME 25-26: iqp's completion notice arrives at q; iq is complete
  // (C1pq = 1) and reports to its parent at p.
  Deliver(p, q, kNotice);
  EXPECT_EQ(C(q, 1, p), 1);  // C1pq = 1

  // TIME 23-27: both child notices reach p; i is complete (C1pp = 1).
  Deliver(s, p, kNotice);
  EXPECT_EQ(C(p, 1, p), 0);  // iq still outstanding
  Deliver(q, p, kNotice);
  EXPECT_EQ(C(p, 1, p), 1);  // C1pp = 1
  Deliver(p, client(), kResult);
  EXPECT_TRUE(result_i.status.ok());
  EXPECT_EQ(result_i.version, 1u);

  // "Beyond this point all version data values are stable, all version
  // counters match up." Check every pair for versions 1 and 2.
  EXPECT_EQ(R(p, 1, p), C(p, 1, p));
  EXPECT_EQ(R(p, 1, q), C(q, 1, p));
  EXPECT_EQ(R(p, 1, s), C(s, 1, p));
  EXPECT_EQ(R(q, 1, p), C(p, 1, q));
  EXPECT_EQ(R(q, 2, q), C(q, 2, q));
  EXPECT_EQ(R(q, 2, p), C(p, 2, q));

  // "A coordinator can determine this by means of an asynchronous read of
  // the counters, and then inform each site, asynchronously, of a read
  // version advancement." Deliver everything left: acks, the two-wave
  // counter reads of phases 2 and 4, the read-version switch, and GC.
  net_.DeliverAll();
  net_.loop().Run();
  while (!advanced) {
    net_.DeliverAll();
    net_.loop().Run();
  }
  ASSERT_TRUE(advanced);

  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster_.node(n).vr(), 1u);
    EXPECT_EQ(cluster_.node(n).vu(), 2u);
  }
  // Phase 4 garbage collection: version 0 gone, version 1 readable.
  EXPECT_EQ(cluster_.node(p).store().VersionsOf("A"),
            (std::vector<Version>{1, 2}));
  EXPECT_EQ(cluster_.node(p).store().VersionsOf("B"),
            (std::vector<Version>{1}));
  EXPECT_EQ(cluster_.node(q).store().VersionsOf("D"),
            (std::vector<Version>{1, 2}));
  EXPECT_EQ(cluster_.node(q).store().VersionsOf("E"),
            (std::vector<Version>{1}));
  EXPECT_EQ(cluster_.node(s).store().VersionsOf("F"),
            (std::vector<Version>{1}));

  // A new read now sees version 1: all of i's effects, none of j's.
  TxnResult result_x2;
  cluster_.Submit(p, read_x, [&](const TxnResult& r) { result_x2 = r; });
  net_.DeliverAll();
  EXPECT_EQ(result_x2.version, 1u);
  EXPECT_EQ(result_x2.reads.at("A").num, 10);

  EXPECT_TRUE(cluster_.CheckInvariants().ok());
  EXPECT_LE(cluster_.node(q).store().MaxVersionsObserved(), 3u);
  EXPECT_EQ(cluster_.TotalPendingSubtxns(), 0u);
}

}  // namespace
}  // namespace threev
