#include "threev/workload/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "threev/workload/scenarios.h"

namespace threev {
namespace {

WorkloadOptions Opts() {
  WorkloadOptions options;
  options.num_nodes = 4;
  options.num_entities = 100;
  options.fanout = 2;
  options.read_fraction = 0.3;
  options.seed = 5;
  return options;
}

TEST(WorkloadTest, JobsAreValidPlans) {
  WorkloadGenerator gen(Opts());
  for (int i = 0; i < 200; ++i) {
    WorkloadJob job = gen.Next();
    EXPECT_TRUE(job.spec.Validate(4).ok());
    EXPECT_EQ(job.origin, job.spec.root.node);
    EXPECT_LE(job.spec.root.Participants().size(), 2u);
  }
}

TEST(WorkloadTest, ReadFractionRoughlyHonored) {
  WorkloadGenerator gen(Opts());
  int reads = 0;
  for (int i = 0; i < 2000; ++i) {
    if (gen.Next().spec.read_only) ++reads;
  }
  EXPECT_NEAR(reads / 2000.0, 0.3, 0.05);
}

TEST(WorkloadTest, NonCommutingFractionProducesNCSpecs) {
  WorkloadOptions options = Opts();
  options.read_fraction = 0;
  options.noncommuting_fraction = 0.5;
  WorkloadGenerator gen(options);
  int nc = 0;
  for (int i = 0; i < 1000; ++i) {
    if (gen.Next().spec.klass == TxnClass::kNonCommuting) ++nc;
  }
  EXPECT_NEAR(nc / 1000.0, 0.5, 0.07);
}

TEST(WorkloadTest, RecordIdsAreUnique) {
  WorkloadOptions options = Opts();
  options.read_fraction = 0;
  WorkloadGenerator gen(options);
  std::set<int64_t> ids;
  for (int i = 0; i < 500; ++i) {
    WorkloadJob job = gen.Next();
    for (const auto& op : job.spec.root.ops) {
      if (op.kind == OpKind::kInsert) {
        EXPECT_TRUE(ids.insert(op.arg).second) << "duplicate record id";
      }
    }
  }
  EXPECT_FALSE(ids.empty());
}

TEST(WorkloadTest, UpdateAndReadCoverSameKeysPerEntity) {
  // The checker depends on audits covering exactly the record-log keys
  // updates write: both derive from the same deterministic per-entity home
  // set. Collect keys per entity over a mixed stream and compare.
  WorkloadOptions options = Opts();
  options.read_fraction = 0.5;
  WorkloadGenerator gen(options);

  auto keys_of = [](const SubtxnPlan& root, OpKind kind) {
    std::set<std::string> keys;
    std::vector<const SubtxnPlan*> stack = {&root};
    while (!stack.empty()) {
      const SubtxnPlan* plan = stack.back();
      stack.pop_back();
      for (const auto& op : plan->ops) {
        if (op.kind == kind) keys.insert(op.key);
      }
      for (const auto& c : plan->children) stack.push_back(&c);
    }
    return keys;
  };
  auto entity_of = [](const std::string& key) {
    // "rec/<entity>@<node>"
    auto slash = key.find('/');
    auto at = key.rfind('@');
    return key.substr(slash + 1, at - slash - 1);
  };

  std::map<std::string, std::set<std::string>> written, audited;
  for (int i = 0; i < 3000; ++i) {
    WorkloadJob job = gen.Next();
    if (job.spec.read_only) {
      for (const auto& key : keys_of(job.spec.root, OpKind::kGet)) {
        if (key.rfind("rec/", 0) == 0) audited[entity_of(key)].insert(key);
      }
    } else {
      for (const auto& key : keys_of(job.spec.root, OpKind::kInsert)) {
        written[entity_of(key)].insert(key);
      }
    }
  }
  ASSERT_FALSE(written.empty());
  int compared = 0;
  for (const auto& [entity, keys] : written) {
    auto it = audited.find(entity);
    if (it == audited.end()) continue;  // entity never audited in sample
    EXPECT_EQ(keys, it->second) << "entity " << entity;
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST(WorkloadTest, AllSummaryKeysMatchHomePlacement) {
  WorkloadGenerator gen(Opts());
  for (const std::string& key : gen.AllSummaryKeys()) {
    auto at = key.rfind('@');
    ASSERT_NE(at, std::string::npos);
    size_t node = std::stoul(key.substr(at + 1));
    EXPECT_LT(node, 4u);
  }
}

TEST(ScenariosTest, HospitalVisitShape) {
  TxnSpec visit = MakeHospitalVisit(
      12, 99, {{.department = 1, .amount = 10, .procedure = "a"},
               {.department = 3, .amount = 20, .procedure = "b"}});
  EXPECT_EQ(visit.root.node, 1u);
  EXPECT_FALSE(visit.read_only);
  EXPECT_EQ(visit.klass, TxnClass::kWellBehaved);
  EXPECT_EQ(visit.root.CountSubtxns(), 2u);
  EXPECT_EQ(visit.root.ops[0], OpAdd(HospitalBalanceKey(12, 1), 10));
  EXPECT_EQ(visit.root.ops[1], OpInsert(HospitalChargesKey(12, 1), 99));
}

TEST(ScenariosTest, InquiryIsReadOnly) {
  TxnSpec inquiry = MakeHospitalInquiry(12, {0, 2});
  EXPECT_TRUE(inquiry.read_only);
  EXPECT_EQ(inquiry.root.node, 0u);
  EXPECT_EQ(inquiry.root.children[0].node, 2u);
}

TEST(ScenariosTest, CallRecordCommutes) {
  TxnSpec call = MakeCallRecord(5, 1001, {0, 1, 2}, 120);
  EXPECT_EQ(call.klass, TxnClass::kWellBehaved);
  EXPECT_EQ(call.root.CountSubtxns(), 3u);
}

TEST(ScenariosTest, PriceChangeIsNonCommuting) {
  TxnSpec change = MakePriceChange(5, {0, 1}, "19.99");
  EXPECT_EQ(change.klass, TxnClass::kNonCommuting);
  EXPECT_FALSE(change.read_only);
}

TEST(ScenariosTest, SaleDecrementsStockAndCountsSold) {
  TxnSpec sale = MakeSale(7, {{.store = 2, .sku = 9, .quantity = 3}});
  EXPECT_EQ(sale.root.ops[0], OpAdd(StockKey(9, 2), -3));
  EXPECT_EQ(sale.root.ops[1], OpAdd(SoldKey(9, 2), 3));
}

TEST(ScenariosTest, SensorReadingRecordsAndRollsUp) {
  TxnSpec reading = MakeSensorReading(/*line=*/4, /*reading_id=*/777,
                                      /*line_node=*/1, /*plant_node=*/0,
                                      /*parts_delta=*/12, /*alarm=*/true);
  EXPECT_EQ(reading.klass, TxnClass::kWellBehaved);
  EXPECT_EQ(reading.root.node, 1u);
  EXPECT_EQ(reading.root.CountSubtxns(), 2u);
  // Observation recorded + per-line summaries at the line node.
  EXPECT_EQ(reading.root.ops[0], OpInsert(LineLogKey(4, 1), 777));
  EXPECT_EQ(reading.root.ops[1], OpAdd(LinePartsKey(4, 1), 12));
  EXPECT_EQ(reading.root.ops[2], OpAdd(LineAlarmsKey(4, 1), 1));
  // Plant rollup at the aggregate node.
  EXPECT_EQ(reading.root.children[0].node, 0u);
  EXPECT_EQ(reading.root.children[0].ops[0], OpAdd(PlantPartsKey(0), 12));
}

TEST(ScenariosTest, SensorReadingSameNodeCollapses) {
  TxnSpec reading = MakeSensorReading(4, 778, 2, 2, 5, false);
  EXPECT_EQ(reading.root.CountSubtxns(), 1u);
  EXPECT_EQ(reading.root.ops.back(), OpAdd(PlantPartsKey(2), 5));
}

TEST(ScenariosTest, DashboardQueryIsReadOnly) {
  TxnSpec query = MakeDashboardQuery(4, 1, 0);
  EXPECT_TRUE(query.read_only);
  EXPECT_EQ(query.root.CountSubtxns(), 2u);
}

}  // namespace
}  // namespace threev
