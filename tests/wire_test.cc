#include "threev/net/wire.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace threev {
namespace {

TEST(WireTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.U8(7);
  w.U32(123456);
  w.U64(0xdeadbeefcafef00dull);
  w.I64(-42);
  w.Bool(true);
  w.Str("hello");
  std::vector<uint8_t> buf = w.Take();
  WireReader r(buf.data(), buf.size());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 123456u);
  EXPECT_EQ(r.U64(), 0xdeadbeefcafef00dull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncationFailsCleanly) {
  WireWriter w;
  w.U64(1);
  std::vector<uint8_t> buf = w.Take();
  WireReader r(buf.data(), 4);  // truncated
  r.U64();
  EXPECT_FALSE(r.ok());
}

Message MakeFullMessage() {
  Message m;
  m.type = MsgType::kSubtxnRequest;
  m.from = 3;
  m.txn = 0x1234567890ull;
  m.subtxn = 42;
  m.parent_subtxn = 41;
  m.version = 7;
  m.seq = 99;
  m.flag = true;
  m.klass = 1;
  m.origin = 2;
  m.plan.node = 1;
  m.plan.ops = {OpAdd("bal/x", 50), OpInsert("rec/x", 77),
                OpPut("note", "payload")};
  SubtxnPlan child;
  child.node = 2;
  child.ops = {OpGet("bal/y")};
  m.plan.children.push_back(child);
  m.spawned = {10, 11, 12};
  Value v;
  v.num = -5;
  v.ids = {1, 2, 3};
  v.str = "abc";
  m.reads.emplace_back("k1", v);
  m.counters_r = {{0, 5}, {1, 7}};
  m.counters_c = {{0, 5}, {1, 6}};
  m.status_code = StatusCode::kAborted;
  m.status_msg = "lock timeout";
  m.trace = TraceContext{0x1111222233334444ull, 0x5555666677778888ull,
                         0x9999aaaabbbbccccull};
  return m;
}

void ExpectMessagesEqual(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.txn, b.txn);
  EXPECT_EQ(a.subtxn, b.subtxn);
  EXPECT_EQ(a.parent_subtxn, b.parent_subtxn);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.flag, b.flag);
  EXPECT_EQ(a.klass, b.klass);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.plan.node, b.plan.node);
  ASSERT_EQ(a.plan.ops.size(), b.plan.ops.size());
  for (size_t i = 0; i < a.plan.ops.size(); ++i) {
    EXPECT_EQ(a.plan.ops[i], b.plan.ops[i]);
  }
  ASSERT_EQ(a.plan.children.size(), b.plan.children.size());
  EXPECT_EQ(a.spawned, b.spawned);
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (size_t i = 0; i < a.reads.size(); ++i) {
    EXPECT_EQ(a.reads[i].first, b.reads[i].first);
    EXPECT_EQ(a.reads[i].second, b.reads[i].second);
  }
  EXPECT_EQ(a.counters_r, b.counters_r);
  EXPECT_EQ(a.counters_c, b.counters_c);
  EXPECT_EQ(a.status_code, b.status_code);
  EXPECT_EQ(a.status_msg, b.status_msg);
  EXPECT_EQ(a.trace.trace_id, b.trace.trace_id);
  EXPECT_EQ(a.trace.span_id, b.trace.span_id);
  EXPECT_EQ(a.trace.parent_span_id, b.trace.parent_span_id);
}

TEST(WireTest, MessageRoundTrip) {
  Message m = MakeFullMessage();
  std::vector<uint8_t> buf = EncodeMessage(m);
  Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectMessagesEqual(m, *decoded);
}

TEST(WireTest, EmptyMessageRoundTrip) {
  Message m;
  std::vector<uint8_t> buf = EncodeMessage(m);
  Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  ExpectMessagesEqual(m, *decoded);
}

TEST(WireTest, DeepPlanRoundTrip) {
  Message m;
  SubtxnPlan* cur = &m.plan;
  for (int i = 0; i < 10; ++i) {
    cur->node = i;
    cur->ops.push_back(OpAdd("k" + std::to_string(i), i));
    cur->children.emplace_back();
    cur = &cur->children.back();
  }
  std::vector<uint8_t> buf = EncodeMessage(m);
  Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  const SubtxnPlan* p = &decoded->plan;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p->node, static_cast<NodeId>(i));
    ASSERT_FALSE(p->children.empty());
    p = &p->children[0];
  }
}

TEST(WireTest, TruncatedMessageRejected) {
  Message m = MakeFullMessage();
  std::vector<uint8_t> buf = EncodeMessage(m);
  for (size_t cut : {size_t{1}, buf.size() / 2, buf.size() - 1}) {
    Result<Message> decoded = DecodeMessage(buf.data(), cut);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  Message m;
  std::vector<uint8_t> buf = EncodeMessage(m);
  buf.push_back(0xff);
  EXPECT_FALSE(DecodeMessage(buf.data(), buf.size()).ok());
}

// Every MsgType - including the admin introspection pair - must have a real
// name (lint's wire-symmetry rule keys on the name table, and trace dumps
// label kMsgSend/kMsgRecv instants with it) and appear in ToString().
TEST(MessageTest, EveryMsgTypeHasDistinctNameAndToString) {
  constexpr int kNumMsgTypes =
      static_cast<int>(MsgType::kAdminInspectReply) + 1;
  std::set<std::string> names;
  for (int t = 0; t < kNumMsgTypes; ++t) {
    MsgType type = static_cast<MsgType>(t);
    EXPECT_STRNE(MsgTypeName(type), "?") << "type " << t;
    names.insert(MsgTypeName(type));
    Message m;
    m.type = type;
    m.from = 4;
    EXPECT_NE(m.ToString().find(MsgTypeName(type)), std::string::npos)
        << m.ToString();
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumMsgTypes));
  // One past the end hits the unknown arm, not out-of-bounds behaviour.
  EXPECT_STREQ(MsgTypeName(static_cast<MsgType>(kNumMsgTypes)), "?");
}

TEST(WireTest, ApproxBytesIsReasonable) {
  Message m = MakeFullMessage();
  size_t actual = EncodeMessage(m).size();
  size_t approx = m.ApproxBytes();
  // Within 2x either way - it only feeds metrics.
  EXPECT_GT(approx * 2, actual);
  EXPECT_GT(actual * 2, approx);
}

}  // namespace
}  // namespace threev
