// Observability acceptance: a traced SimNet cluster must produce a span
// tree that chains one update transaction across >= 3 nodes and covers a
// full 4-phase advancement, and the kAdminInspect probe must round-trip on
// all three transports (SimNet, ThreadNet, and TcpNet over real sockets -
// TcpNet's local-delivery bypass means only a genuinely remote peer
// exercises the wire path).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "threev/common/wait_group.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/net/tcp_net.h"
#include "threev/net/thread_net.h"
#include "threev/trace/trace.h"

namespace threev {
namespace {

TEST(TraceTest, ClusterTraceChainsAcrossNodesAndAdvancement) {
  Tracer tracer;
  tracer.set_enabled(true);
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 11, .tracer = &tracer}, &metrics);
  ClusterOptions options;
  options.num_nodes = 4;
  options.tracer = &tracer;
  Cluster cluster(options, &net, &metrics);

  // One update fanning out to two children: root at node 0, subtxns at
  // nodes 1 and 2.
  TxnResult result;
  bool done = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Add("bal@0", 10)
                     .Child(1, {OpAdd("bal@1", 20)})
                     .Child(2, {OpAdd("bal@2", 30)})
                     .Build(),
                 [&](const TxnResult& r) {
                   result = r;
                   done = true;
                 });
  net.loop().Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok());

  bool advanced = false;
  ASSERT_TRUE(cluster.coordinator().StartAdvancement(
      [&](Status s) { advanced = s.ok(); }));
  net.loop().Run();
  ASSERT_TRUE(advanced);

  std::vector<TraceRecord> recs = tracer.Snapshot();
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(tracer.dropped(), 0u);

  // The client request span roots the transaction's trace.
  uint64_t trace_id = 0;
  for (const auto& r : recs) {
    if (r.op == TraceOp::kClientRequest && r.kind == TraceKind::kBegin) {
      trace_id = r.trace_id;
    }
  }
  ASSERT_NE(trace_id, 0u);

  // Every begin span of that trace, indexed by span id, so parent links can
  // be resolved.
  std::unordered_map<uint64_t, const TraceRecord*> begins;
  for (const auto& r : recs) {
    if (r.kind == TraceKind::kBegin && r.trace_id == trace_id) {
      begins[r.span_id] = &r;
    }
  }

  // Execution spans (root txn + subtxns) of the one trace land on >= 3
  // distinct node tracks, and every one of them has a resolvable parent in
  // the same trace - the cross-node chain the wire context propagates.
  std::set<NodeId> exec_nodes;
  for (const auto& [span_id, r] : begins) {
    if (r->op != TraceOp::kTxn && r->op != TraceOp::kSubtxn) continue;
    exec_nodes.insert(r->node);
    ASSERT_NE(r->parent_span_id, 0u) << "unparented span on node " << r->node;
    EXPECT_TRUE(begins.count(r->parent_span_id))
        << "span on node " << r->node << " parented outside the trace";
  }
  EXPECT_GE(exec_nodes.size(), 3u);

  // The transports recorded send/recv instants carrying the same context.
  size_t sends = 0, recvs = 0;
  for (const auto& r : recs) {
    if (r.trace_id != trace_id) continue;
    if (r.op == TraceOp::kMsgSend) ++sends;
    if (r.op == TraceOp::kMsgRecv) ++recvs;
  }
  EXPECT_GE(sends, 2u);  // at least the two subtxn requests
  EXPECT_GE(recvs, 2u);

  // One full advancement: phases 1..4 each begin and end exactly once, all
  // under one kAdvancement umbrella span.
  std::multiset<int64_t> phase_begins, phase_ends;
  size_t adv_begin = 0, adv_end = 0;
  for (const auto& r : recs) {
    if (r.op == TraceOp::kAdvancePhase) {
      if (r.kind == TraceKind::kBegin) phase_begins.insert(r.arg);
      if (r.kind == TraceKind::kEnd) phase_ends.insert(r.arg);
    }
    if (r.op == TraceOp::kAdvancement) {
      adv_begin += r.kind == TraceKind::kBegin;
      adv_end += r.kind == TraceKind::kEnd;
    }
  }
  EXPECT_EQ(phase_begins, (std::multiset<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(phase_ends, (std::multiset<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(adv_begin, 1u);
  EXPECT_EQ(adv_end, 1u);

  // The dump layer renders it; schema details are tools/check_trace_json.py
  // territory (wired over the simulate_cli fixture in ctest).
  std::string json = tracer.ChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("phase4_drain_gc"), std::string::npos);
  EXPECT_NE(json.find("subtxn"), std::string::npos);
  std::string path = ::testing::TempDir() + "/trace_test_dump.json";
  EXPECT_TRUE(tracer.WriteChromeJson(path));
}

TEST(TraceTest, InspectAllOnSimNetReportsProtocolState) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 5}, &metrics);
  ClusterOptions options;
  options.num_nodes = 3;
  Cluster cluster(options, &net, &metrics);

  bool done = false;
  cluster.Submit(0,
                 TxnBuilder(0)
                     .Add("k@0", 1)
                     .Child(1, {OpAdd("k@1", 1)})
                     .Build(),
                 [&](const TxnResult&) { done = true; });
  net.loop().Run();
  ASSERT_TRUE(done);

  std::vector<NodeInspection> report;
  cluster.InspectAll([&](std::vector<NodeInspection> r) {
    report = std::move(r);
  });
  net.loop().Run();

  // Nodes 0..2 plus the coordinator, in endpoint order.
  ASSERT_EQ(report.size(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    const NodeInspection& n = report[i];
    EXPECT_EQ(n.node, static_cast<NodeId>(i));
    EXPECT_EQ(n.Stat("vu"), 1);
    EXPECT_EQ(n.Stat("vr"), 0);
    EXPECT_EQ(n.Stat("pending_subtxns"), 0);
    EXPECT_EQ(n.StatStr("mode"), "pure3v");
    EXPECT_EQ(n.Stat("counters_version"), 1);
    EXPECT_FALSE(n.ToString().empty());
  }
  const NodeInspection& coord = report[3];
  EXPECT_EQ(coord.node, cluster.coordinator_id());
  EXPECT_EQ(coord.StatStr("phase_name"), "idle");
  EXPECT_EQ(coord.Stat("vu_view"), 1);

  // Counter row R[origin] for version 1 reflects the committed root +
  // child: node 0 initiated one subtxn tree rooted locally.
  bool saw_counter = false;
  for (const auto& [node, count] : report[0].counters_r) {
    if (node == 0 && count > 0) saw_counter = true;
  }
  EXPECT_TRUE(saw_counter);
}

TEST(TraceTest, AdminInspectOverThreadNet) {
  Metrics metrics;
  ThreadNet net(ThreadNetOptions{}, &metrics);
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(options, &net, &metrics);
  net.Start();

  WaitGroup wg;
  wg.Add(2);
  NodeInspection node_insp, coord_insp;
  cluster.client().Inspect(0, [&](const NodeInspection& r) {
    node_insp = r;
    wg.Done();
  });
  cluster.client().Inspect(cluster.coordinator_id(),
                           [&](const NodeInspection& r) {
                             coord_insp = r;
                             wg.Done();
                           });
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(15'000)));
  EXPECT_EQ(node_insp.node, 0u);
  EXPECT_EQ(node_insp.Stat("vu"), 1);
  EXPECT_TRUE(node_insp.HasStat("store_keys"));
  EXPECT_EQ(coord_insp.node, cluster.coordinator_id());
  EXPECT_EQ(coord_insp.StatStr("phase_name"), "idle");
  net.Stop();
}

TEST(TraceTest, AdminInspectOverTcpSockets) {
  // Two TcpNet processes-in-miniature: node 0 on its own instance, the
  // client on another, so the probe to node 0 crosses a real socket (a
  // same-instance probe would take TcpNet's local bypass and never touch
  // the codec).
  constexpr NodeId kNode0 = 0, kCoord = 1, kClient = 2;
  uint16_t base =
      static_cast<uint16_t>(45500 + (::getpid() % 1000) * 2);
  std::map<NodeId, std::string> peers = {
      {kNode0, "127.0.0.1:" + std::to_string(base)},
      {kCoord, "127.0.0.1:" + std::to_string(base + 1)},
      {kClient, "127.0.0.1:" + std::to_string(base + 1)},
  };
  Metrics metrics;
  TcpNet net0(TcpNetOptions{.peers = peers, .listen_port = base}, &metrics);
  TcpNet net1(TcpNetOptions{.peers = peers,
                            .listen_port = static_cast<uint16_t>(base + 1)},
              &metrics);

  NodeOptions nopts;
  nopts.id = kNode0;
  nopts.num_nodes = 1;
  Node node0(nopts, &net0, &metrics);
  net0.RegisterEndpoint(kNode0,
                        [&](const Message& m) { node0.HandleMessage(m); });

  CoordinatorOptions copts;
  copts.id = kCoord;
  copts.num_nodes = 1;
  AdvanceCoordinator coordinator(copts, &net1, &metrics);
  net1.RegisterEndpoint(kCoord, [&](const Message& m) {
    coordinator.HandleMessage(m);
  });
  Client client(kClient, &net1);
  net1.RegisterEndpoint(kClient,
                        [&](const Message& m) { client.HandleMessage(m); });

  ASSERT_TRUE(net0.Start().ok());
  ASSERT_TRUE(net1.Start().ok());

  WaitGroup wg;
  wg.Add(2);
  NodeInspection remote, local;
  client.Inspect(kNode0, [&](const NodeInspection& r) {
    remote = r;  // crossed the wire: encode -> TCP -> decode
    wg.Done();
  });
  client.Inspect(kCoord, [&](const NodeInspection& r) {
    local = r;  // same-instance local dispatch
    wg.Done();
  });
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(15'000)));

  EXPECT_EQ(remote.node, kNode0);
  EXPECT_EQ(remote.Stat("vu"), 1);
  EXPECT_EQ(remote.Stat("vr"), 0);
  EXPECT_EQ(remote.StatStr("mode"), "pure3v");
  EXPECT_TRUE(remote.HasStat("counters_version"));
  EXPECT_EQ(local.node, kCoord);
  EXPECT_EQ(local.StatStr("phase_name"), "idle");
  EXPECT_EQ(local.Stat("epoch"), 0);

  net0.Stop();
  net1.Stop();
}

}  // namespace
}  // namespace threev
