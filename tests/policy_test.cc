// Advancement trigger policies (the paper's "Desired Solution" knobs).
#include "threev/core/policy.h"

#include <gtest/gtest.h>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev {
namespace {

struct Env {
  Env() : net(SimNetOptions{.seed = 4}, &metrics), cluster(Opts(), &net, &metrics) {}

  static ClusterOptions Opts() {
    ClusterOptions options;
    options.num_nodes = 2;
    return options;
  }

  void SubmitUpdates(int n) {
    for (int i = 0; i < n; ++i) {
      cluster.Submit(
          0, TxnBuilder(0).Add("x", 1).Child(1, {OpAdd("y", 1)}).Build(),
          [&](const TxnResult&) { ++completed; });
    }
  }

  Metrics metrics;
  SimNet net;
  Cluster cluster;
  size_t completed = 0;
};

TEST(PolicyTest, TxnCountThresholdTriggersAdvancement) {
  Env env;
  AdvancePolicyOptions options;
  options.txn_threshold = 10;
  options.check_interval = 1'000;
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  driver.Start();

  env.SubmitUpdates(9);
  env.net.loop().RunFor(20'000);
  EXPECT_EQ(driver.triggered_count(), 0u) << "below threshold";

  env.SubmitUpdates(5);
  env.net.loop().RunFor(50'000);
  EXPECT_EQ(driver.triggered_count(), 1u);
  EXPECT_EQ(env.cluster.node(0).vr(), 1u);
  driver.Stop();
}

TEST(PolicyTest, ThresholdRearmsAfterEachAdvancement) {
  Env env;
  AdvancePolicyOptions options;
  options.txn_threshold = 5;
  options.check_interval = 1'000;
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  driver.Start();
  for (int round = 0; round < 3; ++round) {
    env.SubmitUpdates(6);
    env.net.loop().RunFor(60'000);
  }
  EXPECT_EQ(driver.triggered_count(), 3u);
  EXPECT_EQ(env.cluster.node(0).vr(), 3u);
  driver.Stop();
}

TEST(PolicyTest, MinPeriodRateLimits) {
  Env env;
  AdvancePolicyOptions options;
  options.txn_threshold = 1;
  options.check_interval = 1'000;
  options.min_period = 1'000'000;  // at most one advancement in this test
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  driver.Start();
  for (int round = 0; round < 5; ++round) {
    env.SubmitUpdates(3);
    env.net.loop().RunFor(40'000);
  }
  EXPECT_EQ(driver.triggered_count(), 1u);
  driver.Stop();
}

TEST(PolicyTest, ValueDriftPredicateTrigger) {
  Env env;
  env.cluster.node(0).store().Seed("x", Value{}, 0);
  // "Advance when the update version drifted >= 50 ahead of the read
  // version" - the paper's value-difference policy.
  AdvancePolicyOptions options;
  options.check_interval = 1'000;
  options.trigger = [&]() -> bool {
    Node& node = env.cluster.node(0);
    auto current = node.store().Read("x", node.vu());
    auto readable = node.store().Read("x", node.vr());
    int64_t drift = (current.ok() ? current->num : 0) -
                    (readable.ok() ? readable->num : 0);
    return drift >= 50;
  };
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  driver.Start();

  for (int i = 0; i < 4; ++i) {
    env.cluster.Submit(0, TxnBuilder(0).Add("x", 10).Build(),
                       [](const TxnResult&) {});
  }
  env.net.loop().RunFor(20'000);
  EXPECT_EQ(driver.triggered_count(), 0u) << "drift 40 < 50";

  for (int i = 0; i < 2; ++i) {
    env.cluster.Submit(0, TxnBuilder(0).Add("x", 10).Build(),
                       [](const TxnResult&) {});
  }
  env.net.loop().RunFor(60'000);
  EXPECT_EQ(driver.triggered_count(), 1u);
  // After advancement the drift is back under the threshold.
  EXPECT_EQ(env.cluster.node(0).store().Read("x", 1)->num, 60);
  driver.Stop();
}

TEST(PolicyTest, RequestOnceHonorsOneAtATime) {
  Env env;
  AdvancePolicyOptions options;
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  // RequestOnce works without arming the periodic checker (and arming it
  // would keep the event loop non-empty forever).
  EXPECT_TRUE(driver.RequestOnce());
  EXPECT_FALSE(driver.RequestOnce()) << "one advancement at a time";
  env.net.loop().Run();
  EXPECT_TRUE(driver.RequestOnce());
  env.net.loop().Run();
  EXPECT_EQ(driver.triggered_count(), 2u);
}

TEST(PolicyTest, StopPreventsFurtherTriggers) {
  Env env;
  AdvancePolicyOptions options;
  options.txn_threshold = 1;
  options.check_interval = 1'000;
  AdvancePolicyDriver driver(options, &env.cluster.coordinator(),
                             &env.metrics, &env.net);
  driver.Start();
  driver.Stop();
  env.SubmitUpdates(10);
  env.net.loop().RunFor(50'000);
  EXPECT_EQ(driver.triggered_count(), 0u);
}

}  // namespace
}  // namespace threev
