// Committed seed corpus: quick-profile seeds whose derived schedules hit
// every crash-point family the generator can draw (all four advancement
// phases plus the Vote / Decision / Prepare 2PC points) and the
// reorder-under-load shape. Each seed once exposed real driver or
// generator behavior during development; replaying them under the full
// oracle battery on every build is the fuzzer's regression net. If a
// protocol change legitimately shifts what a seed derives, re-survey with
// `threev_fuzz --print-plan` and update the table - do not delete seeds.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "threev/fuzz/fuzz.h"
#include "threev/fuzz/plan.h"

namespace threev {
namespace {

struct CorpusSeed {
  uint64_t seed;
  const char* what;  // why this seed is in the corpus
  int64_t min_crashes;
};

const CorpusSeed kCorpus[] = {
    {1, "abort-free reorder/drop rules, no crash", 0},
    {3, "kill during StartAdvancement fan-out", 1},
    {6, "kill during ReadVersionAdvance (phase 2)", 1},
    {7, "kill during CounterRead collection", 1},
    {10, "two kills during GarbageCollect (phase 4)", 2},
    {11, "2PC Vote kill plus GarbageCollect kill", 2},
    {13, "2PC Prepare kill plus CounterRead kill", 2},
    {16, "2PC Decision kill plus Prepare kill", 2},
    {29, "double Decision kill (same txn family)", 2},
    {42, "the injected-bug acceptance seed, healthy here", 0},
    // Seeds 170 and 191 caught a real liveness bug during development:
    // they kill the 2PC root at its own Vote delivery under an active
    // drop rule, so the restarted root's recovery re-broadcast of the
    // presumed-abort decision lost a message - and, being fire-once,
    // stranded prepared participants on their NC locks forever. Fixed by
    // retrying recovery decisions against a per-node ack set
    // (Node::ArmRecoveryDecisionRetry); these seeds pin the fix.
    {170, "root killed at Vote + dropped recovery decision", 2},
    {191, "root killed at Vote + delayed recovery decision", 2},
};

class FuzzCorpusTest : public ::testing::TestWithParam<CorpusSeed> {};

TEST_P(FuzzCorpusTest, SeedPassesOracles) {
  const CorpusSeed& entry = GetParam();
  fuzz::FuzzOptions options;
  options.scratch_dir = (std::filesystem::path(::testing::TempDir()) /
                         ("threev_corpus_" + std::to_string(entry.seed)))
                            .string();
  fuzz::FuzzResult result = fuzz::RunSeed(entry.seed, /*quick=*/true, options);
  EXPECT_TRUE(result.ok) << "corpus seed " << entry.seed << " (" << entry.what
                         << "): " << result.Summary();
  EXPECT_GE(result.crashes, entry.min_crashes)
      << "seed " << entry.seed
      << " no longer derives the schedule it was committed for (" << entry.what
      << "); re-survey with threev_fuzz --print-plan";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzCorpusTest, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<CorpusSeed>& info) {
      return "seed_" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace threev
