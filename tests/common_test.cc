#include <gtest/gtest.h>

#include "threev/common/clock.h"
#include "threev/common/queue.h"
#include "threev/common/random.h"
#include "threev/common/status.h"
#include "threev/metrics/histogram.h"
#include "threev/sim/event_loop.h"

namespace threev {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key x");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::Aborted("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kAborted);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(ZipfTest, SkewPrefersLowIds) {
  Rng rng(5);
  ZipfGenerator zipf(100, 1.0);
  int low = 0, total = 10000;
  for (int i = 0; i < total; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // Zipf(1.0) over 100 items: top-10 should dominate well beyond uniform 10%.
  EXPECT_GT(low, total / 4);
}

TEST(ZipfTest, ZeroThetaIsRoughlyUniform) {
  Rng rng(5);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(BlockingQueueTest, PushPopOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50, 5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99, 8);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.min(), 10);
}

TEST(HistogramTest, LargeValuesBounded) {
  Histogram h;
  h.Record(int64_t{1} << 40);
  EXPECT_GE(h.Percentile(100), (int64_t{1} << 40) * 9 / 10);
}

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30);
}

TEST(EventLoopTest, TiesRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(10, [&] {
    loop.ScheduleAfter(5, [&] { fired = 1; });
  });
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.Now(), 15);
}

TEST(EventLoopTest, CancelSkipsEvent) {
  EventLoop loop;
  int fired = 0;
  uint64_t id = loop.ScheduleAt(10, [&] { fired = 1; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, RunForStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.ScheduleAt(10, [&] { fired++; });
  loop.ScheduleAt(100, [&] { fired++; });
  loop.RunFor(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.Now(), 50);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, RunUntilPredicate) {
  EventLoop loop;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    loop.ScheduleAt(i * 10, [&] { ++count; });
  }
  EXPECT_TRUE(loop.RunUntil([&] { return count >= 3; }));
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace threev
