// Robustness fuzzing of the wire codec: random truncations, mutations and
// raw byte soup must never crash, over-allocate, or decode to trailing
// garbage - a TCP peer can feed arbitrary frames.
#include <gtest/gtest.h>

#include "threev/common/random.h"
#include "threev/net/wire.h"

namespace threev {
namespace {

Message RandomMessage(Rng& rng) {
  Message m;
  m.type = static_cast<MsgType>(rng.Uniform(17));
  m.from = static_cast<NodeId>(rng.Uniform(16));
  m.txn = rng.Next();
  m.subtxn = rng.Next();
  m.version = static_cast<Version>(rng.Uniform(5));
  m.seq = rng.Next();
  m.flag = rng.Bernoulli(0.5);
  m.klass = static_cast<uint8_t>(rng.Uniform(2));
  m.plan.node = static_cast<NodeId>(rng.Uniform(16));
  size_t nops = rng.Uniform(5);
  for (size_t i = 0; i < nops; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        m.plan.ops.push_back(OpAdd("k" + std::to_string(rng.Uniform(9)),
                                   rng.UniformRange(-100, 100)));
        break;
      case 1:
        m.plan.ops.push_back(OpGet("g" + std::to_string(rng.Uniform(9))));
        break;
      case 2:
        m.plan.ops.push_back(OpInsert("log", rng.Next() % 10000));
        break;
      default:
        m.plan.ops.push_back(
            OpPut("p", std::string(rng.Uniform(64), 'z')));
    }
  }
  if (rng.Bernoulli(0.4)) {
    SubtxnPlan child;
    child.node = static_cast<NodeId>(rng.Uniform(16));
    child.ops.push_back(OpAdd("c", 1));
    m.plan.children.push_back(child);
  }
  size_t nreads = rng.Uniform(3);
  for (size_t i = 0; i < nreads; ++i) {
    Value v;
    v.num = rng.UniformRange(-5, 5);
    size_t nids = rng.Uniform(4);
    for (size_t j = 0; j < nids; ++j) v.ids.push_back(rng.Next() % 100);
    m.reads.emplace_back("r" + std::to_string(i), v);
  }
  size_t nc = rng.Uniform(4);
  for (size_t i = 0; i < nc; ++i) {
    m.counters_r.emplace_back(static_cast<NodeId>(i),
                              static_cast<int64_t>(rng.Uniform(1000)));
    m.counters_c.emplace_back(static_cast<NodeId>(i),
                              static_cast<int64_t>(rng.Uniform(1000)));
  }
  m.status_code = static_cast<StatusCode>(rng.Uniform(10));
  m.status_msg = std::string(rng.Uniform(32), 'e');
  return m;
}

TEST(WireFuzzTest, RandomMessagesRoundTrip) {
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    // Spot-check a few invariant fields.
    EXPECT_EQ(decoded->txn, m.txn);
    EXPECT_EQ(decoded->plan.ops.size(), m.plan.ops.size());
    EXPECT_EQ(decoded->reads.size(), m.reads.size());
    EXPECT_EQ(decoded->status_msg, m.status_msg);
  }
}

TEST(WireFuzzTest, TruncationsNeverCrash) {
  Rng rng(202);
  for (int i = 0; i < 100; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    for (size_t cut = 0; cut < buf.size(); cut += 1 + rng.Uniform(7)) {
      Result<Message> decoded = DecodeMessage(buf.data(), cut);
      EXPECT_FALSE(decoded.ok());
    }
  }
}

TEST(WireFuzzTest, MutationsNeverCrashOrOverAllocate) {
  Rng rng(303);
  for (int i = 0; i < 300; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    // Flip a handful of random bytes; decode must not crash (result may
    // be ok with mangled fields or a clean error).
    for (int flips = 0; flips < 4; ++flips) {
      buf[rng.Uniform(buf.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    (void)decoded;
  }
}

TEST(WireFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(404);
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(512);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    (void)decoded;
  }
}

}  // namespace
}  // namespace threev
