// Robustness fuzzing of the wire codec: random truncations, mutations and
// raw byte soup must never crash, over-allocate, or decode to trailing
// garbage - a TCP peer can feed arbitrary frames.
#include <gtest/gtest.h>

#include <algorithm>

#include "threev/common/random.h"
#include "threev/durability/wal.h"
#include "threev/net/wire.h"

namespace threev {
namespace {

Message RandomMessage(Rng& rng) {
  Message m;
  m.type = static_cast<MsgType>(rng.Uniform(19));
  m.from = static_cast<NodeId>(rng.Uniform(16));
  m.txn = rng.Next();
  m.subtxn = rng.Next();
  m.version = static_cast<Version>(rng.Uniform(5));
  m.seq = rng.Next();
  m.flag = rng.Bernoulli(0.5);
  m.klass = static_cast<uint8_t>(rng.Uniform(2));
  m.plan.node = static_cast<NodeId>(rng.Uniform(16));
  size_t nops = rng.Uniform(5);
  for (size_t i = 0; i < nops; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        m.plan.ops.push_back(OpAdd("k" + std::to_string(rng.Uniform(9)),
                                   rng.UniformRange(-100, 100)));
        break;
      case 1:
        m.plan.ops.push_back(OpGet("g" + std::to_string(rng.Uniform(9))));
        break;
      case 2:
        m.plan.ops.push_back(OpInsert("log", rng.Next() % 10000));
        break;
      default:
        m.plan.ops.push_back(
            OpPut("p", std::string(rng.Uniform(64), 'z')));
    }
  }
  if (rng.Bernoulli(0.4)) {
    SubtxnPlan child;
    child.node = static_cast<NodeId>(rng.Uniform(16));
    child.ops.push_back(OpAdd("c", 1));
    m.plan.children.push_back(child);
  }
  size_t nreads = rng.Uniform(3);
  for (size_t i = 0; i < nreads; ++i) {
    Value v;
    v.num = rng.UniformRange(-5, 5);
    size_t nids = rng.Uniform(4);
    for (size_t j = 0; j < nids; ++j) v.ids.push_back(rng.Next() % 100);
    // String payloads ride here too (kAdminInspectReply string stats such
    // as active_versions); they must round-trip alongside num/ids.
    if (rng.Bernoulli(0.3)) v.str = std::string(rng.Uniform(24), 'v');
    m.reads.emplace_back("r" + std::to_string(i), v);
  }
  size_t nc = rng.Uniform(4);
  for (size_t i = 0; i < nc; ++i) {
    m.counters_r.emplace_back(static_cast<NodeId>(i),
                              static_cast<int64_t>(rng.Uniform(1000)));
    m.counters_c.emplace_back(static_cast<NodeId>(i),
                              static_cast<int64_t>(rng.Uniform(1000)));
  }
  m.status_code = static_cast<StatusCode>(rng.Uniform(10));
  m.status_msg = std::string(rng.Uniform(32), 'e');
  // Half the messages carry a trace context (the all-zero case is the
  // tracing-off wire form and must round-trip too).
  if (rng.Bernoulli(0.5)) {
    m.trace.trace_id = rng.Next();
    m.trace.span_id = rng.Next();
    m.trace.parent_span_id = rng.Next();
  }
  return m;
}

TEST(WireFuzzTest, RandomMessagesRoundTrip) {
  Rng rng(101);
  std::vector<uint8_t> reused;
  for (int i = 0; i < 500; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    // TcpNet writes EncodedMessageSize as the frame length before encoding
    // the payload, so the pre-pass must match the encoder byte-for-byte.
    ASSERT_EQ(buf.size(), EncodedMessageSize(m)) << "iteration " << i;
    // The buffer-reusing encode path must produce identical bytes.
    EncodeMessageInto(m, &reused);
    ASSERT_EQ(reused, buf) << "iteration " << i;
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    // Spot-check a few invariant fields.
    EXPECT_EQ(decoded->txn, m.txn);
    EXPECT_EQ(decoded->version, m.version);
    EXPECT_EQ(decoded->flag, m.flag);
    EXPECT_EQ(decoded->plan.ops.size(), m.plan.ops.size());
    ASSERT_EQ(decoded->reads.size(), m.reads.size());
    for (size_t r = 0; r < m.reads.size(); ++r) {
      EXPECT_EQ(decoded->reads[r].first, m.reads[r].first);
      EXPECT_TRUE(decoded->reads[r].second == m.reads[r].second)
          << "iteration " << i << " read " << r;
    }
    EXPECT_EQ(decoded->status_msg, m.status_msg);
    EXPECT_TRUE(decoded->trace == m.trace) << "iteration " << i;
  }
}

// The versioned admin probe (fuzz oracle's counter walk) rides on the
// version + flag fields of kAdminInspect, and its reply carries counter
// rows plus mixed numeric/string stats. Both directions must round-trip
// bit-exactly - version 0 with flag=true (the "explicitly version 0" probe)
// is the case a sloppy encoder would collapse into the default form.
TEST(WireFuzzTest, AdminInspectProbeFieldsRoundTrip) {
  Rng rng(4242);
  for (int i = 0; i < 100; ++i) {
    Message probe;
    probe.type = MsgType::kAdminInspect;
    probe.from = static_cast<NodeId>(rng.Uniform(8));
    probe.seq = rng.Next();
    probe.version = static_cast<Version>(rng.Uniform(3));  // often 0
    probe.flag = rng.Bernoulli(0.5);
    std::vector<uint8_t> buf = EncodeMessage(probe);
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_EQ(decoded->version, probe.version);
    EXPECT_EQ(decoded->flag, probe.flag);

    Message reply;
    reply.type = MsgType::kAdminInspectReply;
    reply.from = probe.from;
    reply.seq = probe.seq;
    reply.version = probe.version;
    Value mv;
    mv.num = static_cast<int64_t>(rng.Uniform(4));
    reply.reads.emplace_back("max_versions_observed", mv);
    Value av;
    av.str = std::to_string(rng.Uniform(5)) + "," +
             std::to_string(rng.Uniform(5));
    reply.reads.emplace_back("active_versions", av);
    size_t nc = 1 + rng.Uniform(4);
    for (size_t j = 0; j < nc; ++j) {
      reply.counters_r.emplace_back(static_cast<NodeId>(j),
                                    static_cast<int64_t>(rng.Uniform(500)));
      reply.counters_c.emplace_back(static_cast<NodeId>(j),
                                    static_cast<int64_t>(rng.Uniform(500)));
    }
    std::vector<uint8_t> rbuf = EncodeMessage(reply);
    Result<Message> rdec = DecodeMessage(rbuf.data(), rbuf.size());
    ASSERT_TRUE(rdec.ok()) << "iteration " << i;
    ASSERT_EQ(rdec->reads.size(), 2u);
    EXPECT_EQ(rdec->reads[0].second.num, mv.num);
    EXPECT_EQ(rdec->reads[1].second.str, av.str);
    EXPECT_TRUE(rdec->counters_r == reply.counters_r);
    EXPECT_TRUE(rdec->counters_c == reply.counters_c);
    EXPECT_EQ(EncodeMessage(*rdec), rbuf) << "iteration " << i;
  }
}

// The trace context must survive the wire byte-exactly: a span id with any
// byte pattern (including bytes that look like string lengths or counts to
// a misaligned decoder) comes back identical, and re-encoding the decoded
// message reproduces the original buffer bit-for-bit.
TEST(WireFuzzTest, TraceContextRoundTripsByteExact) {
  Rng rng(909);
  for (int i = 0; i < 200; ++i) {
    Message m = RandomMessage(rng);
    m.trace.trace_id = rng.Next();
    m.trace.span_id = rng.Next();
    m.trace.parent_span_id = rng.Next();
    std::vector<uint8_t> buf = EncodeMessage(m);
    ASSERT_EQ(buf.size(), EncodedMessageSize(m));
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_EQ(decoded->trace.trace_id, m.trace.trace_id);
    EXPECT_EQ(decoded->trace.span_id, m.trace.span_id);
    EXPECT_EQ(decoded->trace.parent_span_id, m.trace.parent_span_id);
    EXPECT_EQ(EncodeMessage(*decoded), buf) << "iteration " << i;
  }
}

// Regression: decoders used to reserve() whatever element count the frame
// declared. A frame claiming ~4 billion ids in a few dozen bytes must fail
// as truncated without attempting a multi-gigabyte allocation (reserves are
// now capped by remaining-bytes / min-element-size).
TEST(WireFuzzTest, HugeDeclaredCountNeverOverAllocates) {
  Message m;
  m.type = MsgType::kCompletionNotice;
  m.txn = 7;
  Value v;
  v.num = 42;
  v.ids = {1, 2, 3};
  m.reads.emplace_back("acct", v);
  std::vector<uint8_t> buf = EncodeMessage(m);

  // Locate the ids count prefix: u32 3 followed by u64 1, u64 2, u64 3.
  const uint8_t pattern[] = {3, 0, 0, 0,                          // count
                             1, 0, 0, 0, 0, 0, 0, 0,              // id 1
                             2, 0, 0, 0, 0, 0, 0, 0,              // id 2
                             3, 0, 0, 0, 0, 0, 0, 0};             // id 3
  auto it = std::search(buf.begin(), buf.end(), std::begin(pattern),
                        std::end(pattern));
  ASSERT_NE(it, buf.end());
  it[0] = 0xFF;
  it[1] = 0xFF;
  it[2] = 0xFF;
  it[3] = 0xFF;

  Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
  EXPECT_FALSE(decoded.ok());  // and did not try to reserve 32 GiB
}

TEST(WireFuzzTest, TruncationsNeverCrash) {
  Rng rng(202);
  for (int i = 0; i < 100; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    for (size_t cut = 0; cut < buf.size(); cut += 1 + rng.Uniform(7)) {
      Result<Message> decoded = DecodeMessage(buf.data(), cut);
      EXPECT_FALSE(decoded.ok());
    }
  }
}

TEST(WireFuzzTest, MutationsNeverCrashOrOverAllocate) {
  Rng rng(303);
  for (int i = 0; i < 300; ++i) {
    Message m = RandomMessage(rng);
    std::vector<uint8_t> buf = EncodeMessage(m);
    // Flip a handful of random bytes; decode must not crash (result may
    // be ok with mangled fields or a clean error).
    for (int flips = 0; flips < 4; ++flips) {
      buf[rng.Uniform(buf.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    (void)decoded;
  }
}

TEST(WireFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(404);
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(512);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
    (void)decoded;
  }
}

// --- WAL record codec: recovery reads these frames off disk, where a torn
// write or bit rot can hand the decoder anything. Same contract as the
// network codec: never crash, never over-allocate.

WalRecord RandomWalRecord(Rng& rng) {
  WalRecord rec;
  rec.type = static_cast<WalRecordType>(1 + rng.Uniform(9));
  rec.version = static_cast<Version>(rng.Uniform(6));
  rec.flag = rng.Bernoulli(0.5);
  rec.peer = static_cast<NodeId>(rng.Uniform(8));
  rec.txn = rng.Next();
  rec.seq = rng.Next();
  rec.failed = rng.Bernoulli(0.2);
  size_t nimages = rng.Uniform(4);
  for (size_t i = 0; i < nimages; ++i) {
    WalImage img;
    img.key = "k" + std::to_string(rng.Uniform(9));
    img.version = static_cast<Version>(rng.Uniform(4));
    img.value.num = rng.UniformRange(-1000, 1000);
    size_t nids = rng.Uniform(3);
    for (size_t j = 0; j < nids; ++j) img.value.ids.push_back(rng.Next());
    img.value.str = std::string(rng.Uniform(48), 'w');
    rec.images.push_back(std::move(img));
  }
  size_t nundo = rng.Uniform(3);
  for (size_t i = 0; i < nundo; ++i) {
    UndoEntry u;
    u.key = "u" + std::to_string(rng.Uniform(9));
    u.version = static_cast<Version>(rng.Uniform(4));
    u.created = rng.Bernoulli(0.5);
    u.prior.num = rng.UniformRange(-9, 9);
    rec.undo.push_back(std::move(u));
  }
  return rec;
}

TEST(WalFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(505);
  for (int i = 0; i < 500; ++i) {
    WalRecord rec = RandomWalRecord(rng);
    std::vector<uint8_t> buf = EncodeWalRecord(rec);
    Result<WalRecord> back = DecodeWalRecord(buf.data(), buf.size());
    ASSERT_TRUE(back.ok()) << "iteration " << i;
    EXPECT_EQ(EncodeWalRecord(*back), buf) << "iteration " << i;
    EXPECT_EQ(back->txn, rec.txn);
    EXPECT_EQ(back->images.size(), rec.images.size());
    EXPECT_EQ(back->undo.size(), rec.undo.size());
  }
}

TEST(WalFuzzTest, TruncationsNeverCrash) {
  Rng rng(606);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> buf = EncodeWalRecord(RandomWalRecord(rng));
    for (size_t cut = 0; cut < buf.size(); cut += 1 + rng.Uniform(5)) {
      Result<WalRecord> back = DecodeWalRecord(buf.data(), cut);
      EXPECT_FALSE(back.ok());
    }
  }
}

TEST(WalFuzzTest, MutationsNeverCrashOrOverAllocate) {
  Rng rng(707);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> buf = EncodeWalRecord(RandomWalRecord(rng));
    for (int flips = 0; flips < 4; ++flips) {
      buf[rng.Uniform(buf.size())] ^=
          static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    Result<WalRecord> back = DecodeWalRecord(buf.data(), buf.size());
    (void)back;  // ok-with-mangled-fields or clean error, never a crash
  }
}

TEST(WalFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(808);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> buf(rng.Uniform(512));
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    Result<WalRecord> back = DecodeWalRecord(buf.data(), buf.size());
    (void)back;
  }
}

}  // namespace
}  // namespace threev
