#include "threev/metrics/metrics.h"

#include <gtest/gtest.h>

#include <thread>

namespace threev {
namespace {

TEST(MetricsTest, ReportMentionsAllSections) {
  Metrics metrics;
  metrics.txns_committed = 5;
  metrics.messages_sent = 42;
  metrics.dual_version_writes = 3;
  metrics.lock_waits = 1;
  metrics.update_latency.Record(100);
  std::string report = metrics.Report();
  EXPECT_NE(report.find("committed=5"), std::string::npos);
  EXPECT_NE(report.find("messages=42"), std::string::npos);
  EXPECT_NE(report.find("dual_writes=3"), std::string::npos);
  EXPECT_NE(report.find("lock_waits=1"), std::string::npos);
  EXPECT_NE(report.find("update_latency"), std::string::npos);
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics metrics;
  metrics.txns_committed = 5;
  metrics.version_copies = 7;
  metrics.staleness.Record(1000);
  metrics.Reset();
  EXPECT_EQ(metrics.txns_committed.load(), 0);
  EXPECT_EQ(metrics.version_copies.load(), 0);
  EXPECT_EQ(metrics.staleness.count(), 0);
}

TEST(MetricsTest, ConcurrentRecordingIsExactOnTotals) {
  Metrics metrics;
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        metrics.txns_committed.fetch_add(1, std::memory_order_relaxed);
        metrics.update_latency.Record(i % 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(metrics.txns_committed.load(), kThreads * kPer);
  EXPECT_EQ(metrics.update_latency.count(), kThreads * kPer);
}

TEST(HistogramPropertyTest, PercentilesAreMonotone) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Record((i * 2654435761u) % 1000000);
  int64_t prev = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(100), h.max());
  EXPECT_GE(h.Percentile(0), 0);
}

TEST(HistogramTest, MergeCombinesCountsSumAndExtremes) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.Record(i);        // [1, 100]
  for (int i = 1000; i <= 1500; ++i) b.Record(i);    // [1000, 1500]
  a.Merge(b);
  EXPECT_EQ(a.count(), 100 + 501);
  EXPECT_EQ(a.sum(), 100 * 101 / 2 + 501 * 1250);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 1500);
  // The merged distribution is bimodal: the median falls in b's mode, and
  // low percentiles still resolve a's mode (bucket error ~6%).
  EXPECT_GE(a.Percentile(50), 1000 * 0.94);
  EXPECT_LE(a.Percentile(10), 100 * 1.07 + 2);
  // Merging an empty histogram is a no-op on totals and extremes.
  Histogram empty;
  int64_t count = a.count(), sum = a.sum(), mn = a.min(), mx = a.max();
  a.Merge(empty);
  EXPECT_EQ(a.count(), count);
  EXPECT_EQ(a.sum(), sum);
  EXPECT_EQ(a.min(), mn);
  EXPECT_EQ(a.max(), mx);
  // Merging INTO an empty histogram adopts the source's extremes.
  Histogram fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.count(), a.count());
  EXPECT_EQ(fresh.min(), 1);
  EXPECT_EQ(fresh.max(), 1500);
}

TEST(MetricsTest, MergeFromAggregatesCountersAndHistograms) {
  Metrics a, b;
  a.txns_committed = 3;
  a.wal_fsyncs = 1;
  a.update_latency.Record(100);
  b.txns_committed = 4;
  b.messages_dropped = 2;
  b.update_latency.Record(300);
  b.staleness.Record(50);
  a.MergeFrom(b);
  EXPECT_EQ(a.txns_committed.load(), 7);
  EXPECT_EQ(a.wal_fsyncs.load(), 1);
  EXPECT_EQ(a.messages_dropped.load(), 2);
  EXPECT_EQ(a.update_latency.count(), 2);
  EXPECT_EQ(a.update_latency.sum(), 400);
  EXPECT_EQ(a.staleness.count(), 1);
  // b is untouched.
  EXPECT_EQ(b.txns_committed.load(), 4);
  EXPECT_EQ(b.update_latency.count(), 1);
}

TEST(HistogramPropertyTest, PercentileWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(i);
  // Log-bucketed: ~6% relative error bound.
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    double exact = p / 100.0 * 100000;
    double got = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(got, exact, exact * 0.08 + 2) << "p=" << p;
  }
}

}  // namespace
}  // namespace threev
