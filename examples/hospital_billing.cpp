// The paper's Section 1 motivating example, end to end: a hospital with
// four departmental accounting systems, patient visits charging several
// departments at once, balance inquiries, and hourly version advancement.
//
// Demonstrates the headline guarantee: an inquiry either sees ALL charges
// of a visit or none - never a partial bill - while neither updates nor
// version advancement ever wait for each other.
//
// Build & run:  ./build/examples/hospital_billing
#include <cstdio>

#include "threev/common/random.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/scenarios.h"

using namespace threev;

namespace {
const char* kDepartments[] = {"radiology", "pediatrics", "cardiology",
                              "pharmacy"};
}

int main() {
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = 7}, &metrics);

  ClusterOptions options;
  options.num_nodes = 4;
  Cluster cluster(options, &net, &metrics, &history);

  // "Advance versions every hour" - scaled down to every 20 virtual ms.
  cluster.coordinator().EnableAutoAdvance(20'000);

  Rng rng(2026);
  uint64_t next_visit_id = 1;
  size_t done = 0, submitted = 0;
  int partial_bills = 0;
  Micros arrival = 0;  // Poisson arrivals spread over ~200 virtual ms

  // Track per-patient expected totals for the final audit.
  constexpr uint64_t kPatients = 50;

  for (int i = 0; i < 2000; ++i) {
    arrival += static_cast<Micros>(rng.Exponential(100.0));
    uint64_t patient = rng.Uniform(kPatients);
    if (rng.Bernoulli(0.25)) {
      // A balance inquiry across all departments. Verify all-or-nothing
      // visibility right in the callback: per visit id, the number of
      // departments listing it must equal that visit's department count
      // (encoded in the low bits of the id below).
      // The front desk queries whichever department the patient walked
      // into first; that department's node roots the inquiry tree.
      NodeId origin = static_cast<NodeId>(rng.Uniform(4));
      std::vector<NodeId> departments;
      for (NodeId d = 0; d < 4; ++d) departments.push_back((origin + d) % 4);
      TxnSpec inquiry = MakeHospitalInquiry(patient, departments);
      net.loop().ScheduleAt(arrival, [&, inquiry, origin] {
        cluster.Submit(origin, inquiry, [&](const TxnResult& r) {
          std::map<uint64_t, int> seen;
          for (const auto& [key, value] : r.reads) {
            for (uint64_t id : value.ids) seen[id]++;
          }
          for (const auto& [id, count] : seen) {
            int departments = static_cast<int>(id % 8);
            if (count != departments) ++partial_bills;
          }
          ++done;
        });
      });
    } else {
      // A visit charging 2-3 departments; visit_id encodes the department
      // count so the inquiry above can verify completeness.
      int departments = 2 + static_cast<int>(rng.Uniform(2));
      NodeId first = static_cast<NodeId>(rng.Uniform(4));
      std::vector<HospitalCharge> charges;
      for (int d = 0; d < departments; ++d) {
        charges.push_back({static_cast<NodeId>((first + d) % 4),
                           rng.UniformRange(20, 400),
                           kDepartments[(first + d) % 4]});
      }
      uint64_t visit_id =
          (next_visit_id++ << 3) | static_cast<uint64_t>(departments);
      TxnSpec visit = MakeHospitalVisit(patient, visit_id, charges);
      net.loop().ScheduleAt(arrival, [&, visit, first] {
        cluster.Submit(first, visit, [&](const TxnResult&) { ++done; });
      });
    }
    ++submitted;
  }
  net.loop().RunUntil([&] { return done >= submitted; });

  std::printf("hospital ran %zu transactions over %lld virtual ms\n",
              submitted, static_cast<long long>(net.Now() / 1000));
  std::printf("version advancements: %lld (reads lag <= one period)\n",
              static_cast<long long>(metrics.advancements_completed.load()));
  std::printf("partial bills observed by inquiries: %d (must be 0)\n",
              partial_bills);
  std::printf("update latency:  %s\n",
              metrics.update_latency.Summary().c_str());
  std::printf("inquiry latency: %s\n",
              metrics.read_latency.Summary().c_str());
  std::printf("inquiry staleness: %s\n", metrics.staleness.Summary().c_str());

  CheckResult check = CheckHistory(history.Transactions());
  std::printf("history check: %s\n", check.Summary().c_str());
  Status invariants = cluster.CheckInvariants();
  std::printf("invariants: %s\n", invariants.ToString().c_str());
  return (partial_bills == 0 && check.ok() && invariants.ok()) ? 0 : 1;
}
