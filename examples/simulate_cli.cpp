// Flag-driven experiment runner: explore any strategy / workload / cadence
// combination from the command line without writing code.
//
//   ./build/examples/simulate_cli --system=3v --nodes=8 --txns=5000
//       --interarrival=120 --read-fraction=0.3 --nc-fraction=0.05
//       --advance-period=20000 --seed=7
//
// Systems: 3v | globalsync | nocoord | manual
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

using namespace threev;

namespace {

struct Flags {
  std::string system = "3v";
  size_t nodes = 8;
  size_t txns = 5000;
  long interarrival = 150;
  double read_fraction = 0.2;
  double nc_fraction = 0.0;
  double zipf = 0.9;
  size_t entities = 500;
  size_t fanout = 2;
  long advance_period = 25'000;
  long safety_delay = 5'000;
  double abort_rate = 0.0;
  uint64_t seed = 1;
  std::string trace_out;  // flight-recorder dump path; empty = tracing off
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--system", &v)) {
      flags.system = v;
    } else if (ParseFlag(argv[i], "--nodes", &v)) {
      flags.nodes = std::stoul(v);
    } else if (ParseFlag(argv[i], "--txns", &v)) {
      flags.txns = std::stoul(v);
    } else if (ParseFlag(argv[i], "--interarrival", &v)) {
      flags.interarrival = std::stol(v);
    } else if (ParseFlag(argv[i], "--read-fraction", &v)) {
      flags.read_fraction = std::stod(v);
    } else if (ParseFlag(argv[i], "--nc-fraction", &v)) {
      flags.nc_fraction = std::stod(v);
    } else if (ParseFlag(argv[i], "--zipf", &v)) {
      flags.zipf = std::stod(v);
    } else if (ParseFlag(argv[i], "--entities", &v)) {
      flags.entities = std::stoul(v);
    } else if (ParseFlag(argv[i], "--fanout", &v)) {
      flags.fanout = std::stoul(v);
    } else if (ParseFlag(argv[i], "--advance-period", &v)) {
      flags.advance_period = std::stol(v);
    } else if (ParseFlag(argv[i], "--safety-delay", &v)) {
      flags.safety_delay = std::stol(v);
    } else if (ParseFlag(argv[i], "--abort-rate", &v)) {
      flags.abort_rate = std::stod(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "--trace-out", &v)) {
      flags.trace_out = v;
    } else {
      flags.help = true;
    }
  }
  return flags;
}

SystemKind KindOf(const std::string& name) {
  if (name == "globalsync") return SystemKind::kGlobalSync;
  if (name == "nocoord") return SystemKind::kNoCoord;
  if (name == "manual") return SystemKind::kManual;
  return SystemKind::kThreeV;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.help) {
    std::printf(
        "usage: simulate_cli [--system=3v|globalsync|nocoord|manual]\n"
        "  [--nodes=N] [--txns=N] [--interarrival=USEC] [--seed=N]\n"
        "  [--read-fraction=F] [--nc-fraction=F] [--zipf=F] [--entities=N]\n"
        "  [--fanout=N] [--advance-period=USEC|0] [--safety-delay=USEC]\n"
        "  [--abort-rate=F] [--trace-out=PATH.json]\n");
    return 2;
  }

  Metrics metrics;
  HistoryRecorder history;
  Tracer tracer;
  tracer.set_enabled(!flags.trace_out.empty());
  SimNet net(SimNetOptions{.seed = flags.seed, .tracer = &tracer}, &metrics);
  SystemConfig config;
  config.kind = KindOf(flags.system);
  config.num_nodes = flags.nodes;
  config.seed = flags.seed;
  config.mixed_workload = flags.nc_fraction > 0;
  config.manual_safety_delay = flags.safety_delay;
  config.inject_abort_probability = flags.abort_rate;
  config.tracer = &tracer;
  auto system = MakeSystem(config, &net, &metrics, &history);
  if (flags.advance_period > 0) {
    system->EnableAutoAdvance(flags.advance_period);
  }

  WorkloadOptions wopts;
  wopts.num_nodes = flags.nodes;
  wopts.num_entities = flags.entities;
  wopts.zipf_theta = flags.zipf;
  wopts.read_fraction = flags.read_fraction;
  wopts.noncommuting_fraction = flags.nc_fraction;
  wopts.fanout = flags.fanout;
  wopts.seed = flags.seed * 99 + 1;
  WorkloadGenerator gen(wopts);

  std::printf("running %zu txns on %s (%zu nodes, seed %llu)...\n",
              flags.txns, system->name(), flags.nodes,
              static_cast<unsigned long long>(flags.seed));
  SimRunStats stats =
      RunOpenLoopSim(*system, net, gen, flags.txns, flags.interarrival);
  system->DisableAutoAdvance();
  net.loop().Run();

  std::printf("\ncommitted=%zu aborted=%zu over %lld virtual ms "
              "(%.0f txn/s)\n",
              stats.committed, stats.aborted,
              static_cast<long long>(stats.virtual_elapsed / 1000),
              stats.throughput_per_sec());
  std::printf("%s", metrics.Report().c_str());

  CheckResult check = CheckHistory(history.Transactions());
  std::printf("history check: %s\n", check.Summary().c_str());
  for (const auto& sample : check.samples) {
    std::printf("  e.g. %s\n", sample.c_str());
  }
  Status invariants = system->CheckInvariants();
  std::printf("invariants: %s\n", invariants.ToString().c_str());
  if (!flags.trace_out.empty()) {
    if (!tracer.WriteChromeJson(flags.trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   flags.trace_out.c_str());
      return 1;
    }
    std::printf("trace: %s (%llu records dropped)\n", flags.trace_out.c_str(),
                static_cast<unsigned long long>(tracer.dropped()));
  }
  return 0;
}
