// True multi-process deployment over TCP ("manual networking plumbing"):
// this binary forks one OS process per database node; the parent process
// hosts the advancement coordinator and the client, submits distributed
// transactions over real sockets, runs a version advancement, and verifies
// the reads.
//
// Build & run:  ./build/examples/multiprocess_tcp [base_port]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "threev/common/wait_group.h"
#include "threev/core/cluster.h"
#include "threev/net/tcp_net.h"

using namespace threev;

namespace {

constexpr size_t kNumNodes = 3;

std::map<NodeId, std::string> PeerMap(uint16_t base_port) {
  std::map<NodeId, std::string> peers;
  for (NodeId n = 0; n < kNumNodes; ++n) {
    peers[n] = "127.0.0.1:" + std::to_string(base_port + n);
  }
  // Coordinator and client share the parent process's port.
  peers[kNumNodes] = "127.0.0.1:" + std::to_string(base_port + kNumNodes);
  peers[kNumNodes + 1] = peers[kNumNodes];
  return peers;
}

// Child: host one database node until the parent kills us.
[[noreturn]] void RunNodeProcess(NodeId id, uint16_t base_port) {
  Metrics metrics;
  TcpNet net(TcpNetOptions{.peers = PeerMap(base_port),
                           .listen_port =
                               static_cast<uint16_t>(base_port + id)},
             &metrics);
  NodeOptions options;
  options.id = id;
  options.num_nodes = kNumNodes;
  Node node(options, &net, &metrics);
  net.RegisterEndpoint(id, [&](const Message& m) { node.HandleMessage(m); });
  Status s = net.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "node %u failed to start: %s\n", id,
                 s.ToString().c_str());
    std::exit(1);
  }
  std::printf("  [node %u] pid %d listening on %u\n", id, getpid(),
              base_port + id);
  std::fflush(stdout);
  for (;;) pause();
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t base_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1]))
               : static_cast<uint16_t>(43000 + (getpid() % 2000));

  std::printf("spawning %zu node processes (ports %u..%u)\n", kNumNodes,
              base_port, base_port + static_cast<unsigned>(kNumNodes) - 1);
  std::vector<pid_t> children;
  for (NodeId id = 0; id < kNumNodes; ++id) {
    pid_t pid = fork();
    if (pid == 0) RunNodeProcess(id, base_port);
    children.push_back(pid);
  }

  // Parent: coordinator + client.
  Metrics metrics;
  TcpNet net(TcpNetOptions{.peers = PeerMap(base_port),
                           .listen_port =
                               static_cast<uint16_t>(base_port + kNumNodes)},
             &metrics);
  CoordinatorOptions copts;
  copts.id = kNumNodes;
  copts.num_nodes = kNumNodes;
  copts.poll_interval = 10'000;
  AdvanceCoordinator coordinator(copts, &net, &metrics);
  net.RegisterEndpoint(copts.id,
                       [&](const Message& m) { coordinator.HandleMessage(m); });
  Client client(kNumNodes + 1, &net);
  net.RegisterEndpoint(client.id(),
                       [&](const Message& m) { client.HandleMessage(m); });
  if (Status s = net.Start(); !s.ok()) {
    std::fprintf(stderr, "driver failed to start: %s\n", s.ToString().c_str());
    return 1;
  }

  // Record 30 cross-process transactions.
  WaitGroup wg;
  wg.Add(30);
  for (int i = 0; i < 30; ++i) {
    NodeId a = i % kNumNodes;
    NodeId b = (i + 1) % kNumNodes;
    client.Submit(a,
                  TxnBuilder(a)
                      .Add("calls@" + std::to_string(a), 1)
                      .Child(b, {OpAdd("calls@" + std::to_string(b), 1)})
                      .Build(),
                  [&](const TxnResult& r) {
                    if (!r.status.ok()) {
                      std::fprintf(stderr, "txn failed: %s\n",
                                   r.status.ToString().c_str());
                    }
                    wg.Done();
                  });
  }
  bool drained = wg.WaitFor(std::chrono::milliseconds(30'000));
  std::printf("recorded 30 transactions across processes: %s\n",
              drained ? "ok" : "TIMEOUT");

  // One version advancement across the three processes.
  WaitGroup adv;
  adv.Add(1);
  coordinator.StartAdvancement([&](Status) { adv.Done(); });
  bool adv_ok = adv.WaitFor(std::chrono::milliseconds(30'000));
  std::printf("version advancement over TCP: %s\n", adv_ok ? "ok" : "TIMEOUT");

  // Read back: each node recorded 20 call legs (2 per txn x 30 / 3 nodes).
  WaitGroup rd;
  rd.Add(1);
  TxnResult read;
  client.Submit(
      0,
      TxnBuilder(0)
          .Get("calls@0")
          .Child(1, {OpGet("calls@1")})
          .Child(2, {OpGet("calls@2")})
          .Build(),
      [&](const TxnResult& r) {
        read = r;
        rd.Done();
      });
  bool read_ok = rd.WaitFor(std::chrono::milliseconds(30'000));
  long long total = 0;
  if (read_ok) {
    for (const auto& [key, value] : read.reads) {
      std::printf("  %s = %lld (version %u)\n", key.c_str(),
                  static_cast<long long>(value.num), read.version);
      total += value.num;
    }
  }
  std::printf("total legs read: %lld (expected 60)\n", total);

  for (pid_t pid : children) kill(pid, SIGTERM);
  for (pid_t pid : children) waitpid(pid, nullptr, 0);
  net.Stop();
  bool ok = drained && adv_ok && read_ok && total == 60;
  std::printf("multiprocess demo: %s\n", ok ? "SUCCESS" : "FAILURE");
  return ok ? 0 : 1;
}
