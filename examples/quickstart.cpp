// Quickstart: a 3-node 3V cluster in a deterministic simulation.
//
//   1. Record two multi-node update transactions (they commute).
//   2. Observe that reads see the stable read version (nothing yet).
//   3. Advance versions - fully asynchronously - and read again.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

using namespace threev;

int main() {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 42}, &metrics);

  ClusterOptions options;
  options.num_nodes = 3;
  Cluster cluster(options, &net, &metrics);

  // --- 1. Two commuting update transactions spanning nodes 0 and 1 ------
  auto ignore = [](const TxnResult&) {};
  cluster.Submit(0, TxnBuilder(0)
                        .Add("alice/balance@0", 120)
                        .Child(1, {OpAdd("alice/balance@1", 80)})
                        .Build(),
                 ignore);
  cluster.Submit(1, TxnBuilder(1)
                        .Add("alice/balance@1", 40)
                        .Child(0, {OpAdd("alice/balance@0", 10)})
                        .Build(),
                 ignore);
  net.loop().Run();
  std::printf("recorded 2 update transactions (version %u)\n",
              cluster.node(0).vu());

  // --- 2. A read-only transaction: stable read version, nothing visible -
  TxnSpec audit = TxnBuilder(0)
                      .Get("alice/balance@0")
                      .Child(1, {OpGet("alice/balance@1")})
                      .Build();
  TxnResult before;
  cluster.Submit(0, audit, [&](const TxnResult& r) { before = r; });
  net.loop().Run();
  std::printf("read @version %u: node0=%lld node1=%lld (stale by design)\n",
              before.version,
              static_cast<long long>(before.reads.at("alice/balance@0").num),
              static_cast<long long>(before.reads.at("alice/balance@1").num));

  // --- 3. Version advancement: 4 phases, zero user-transaction waits ----
  bool advanced = false;
  cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
  net.loop().Run();
  std::printf("advancement complete: %s (vr=%u vu=%u)\n",
              advanced ? "yes" : "no", cluster.node(0).vr(),
              cluster.node(0).vu());

  TxnResult after;
  cluster.Submit(0, audit, [&](const TxnResult& r) { after = r; });
  net.loop().Run();
  std::printf("read @version %u: node0=%lld node1=%lld (all-or-nothing)\n",
              after.version,
              static_cast<long long>(after.reads.at("alice/balance@0").num),
              static_cast<long long>(after.reads.at("alice/balance@1").num));

  std::printf("\nmetrics:\n%s", metrics.Report().c_str());
  Status invariants = cluster.CheckInvariants();
  std::printf("invariants: %s\n", invariants.ToString().c_str());
  return invariants.ok() ? 0 : 1;
}
