// threev_fuzz: deterministic schedule-exploration fuzzer CLI.
//
// One 64-bit seed derives a whole run - workload plan, fault schedule,
// network delays - executed over SimNet on one thread, bit-reproducibly
// (same seed => same history hash). After every run an oracle battery
// checks the paper's structural invariants, counter-matrix conservation,
// serializability with the version-cut rule, and WAL-replay equivalence.
//
//   threev_fuzz --seed=42                 one full-profile run
//   threev_fuzz --seed=42 --quick         smoke profile (CI per-PR)
//   threev_fuzz --sweep=500 --quick       seeds 1..500; exits 1 on failure
//   threev_fuzz --seed=42 --runs=3        determinism check (hash equality)
//   threev_fuzz --seed=42 --shrink        minimize a failing seed, write
//                                         a repro artifact (JSON)
//   threev_fuzz --replay=repro.json       re-run a shrunk artifact
//   threev_fuzz --inject-bug=skip-completion --seed=42 --shrink
//                                         validate the oracles + shrinker
//                                         against a known protocol bug
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "threev/fuzz/fuzz.h"
#include "threev/fuzz/plan.h"
#include "threev/fuzz/shrink.h"

namespace {

using threev::fuzz::BuildPlan;
using threev::fuzz::FilterPlan;
using threev::fuzz::FuzzOptions;
using threev::fuzz::FuzzPlan;
using threev::fuzz::FuzzResult;
using threev::fuzz::PlanFromRepro;
using threev::fuzz::ReproFromJson;
using threev::fuzz::ReproSpec;
using threev::fuzz::ReproToJson;
using threev::fuzz::RunPlan;
using threev::fuzz::Shrink;
using threev::fuzz::ShrinkOutcome;

struct Flags {
  uint64_t seed = 1;
  bool seed_set = false;
  bool quick = false;
  uint64_t sweep = 0;       // run seeds 1..sweep
  uint64_t sweep_start = 1;
  int runs = 1;             // repeat the same seed, compare hashes
  bool shrink = false;
  std::string replay;       // repro artifact path
  std::string artifacts_dir = ".";
  std::string scratch_dir;
  std::string inject_bug;   // "skip-completion"
  int bug_node = 0;
  bool print_plan = false;
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = std::stoull(v);
      flags.seed_set = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.quick = true;
    } else if (ParseFlag(argv[i], "--sweep", &v)) {
      flags.sweep = std::stoull(v);
    } else if (ParseFlag(argv[i], "--sweep-start", &v)) {
      flags.sweep_start = std::stoull(v);
    } else if (ParseFlag(argv[i], "--runs", &v)) {
      flags.runs = std::stoi(v);
    } else if (std::strcmp(argv[i], "--shrink") == 0) {
      flags.shrink = true;
    } else if (ParseFlag(argv[i], "--replay", &v)) {
      flags.replay = v;
    } else if (ParseFlag(argv[i], "--artifacts-dir", &v)) {
      flags.artifacts_dir = v;
    } else if (ParseFlag(argv[i], "--scratch-dir", &v)) {
      flags.scratch_dir = v;
    } else if (ParseFlag(argv[i], "--inject-bug", &v)) {
      flags.inject_bug = v;
    } else if (ParseFlag(argv[i], "--bug-node", &v)) {
      flags.bug_node = std::stoi(v);
    } else if (std::strcmp(argv[i], "--print-plan") == 0) {
      flags.print_plan = true;
    } else {
      flags.help = true;
    }
  }
  return flags;
}

FuzzOptions MakeOptions(const Flags& flags) {
  FuzzOptions options;
  options.scratch_dir = flags.scratch_dir;
  if (flags.inject_bug == "skip-completion") {
    options.injected_bug = FuzzOptions::InjectedBug::kSkipCompletionCounter;
    options.bug_node = flags.bug_node;
  } else if (!flags.inject_bug.empty()) {
    std::fprintf(stderr, "unknown --inject-bug=%s\n",
                 flags.inject_bug.c_str());
    std::exit(2);
  }
  return options;
}

std::string ArtifactPath(const Flags& flags, uint64_t seed) {
  return (std::filesystem::path(flags.artifacts_dir) /
          ("threev_fuzz_repro_" + std::to_string(seed) + ".json"))
      .string();
}

// Shrinks a failing plan and writes the repro artifact; returns its path.
std::string ShrinkAndSave(const FuzzPlan& plan, const FuzzOptions& options,
                          const Flags& flags) {
  ShrinkOutcome outcome = Shrink(plan, options);
  if (!outcome.shrunk) return "";
  std::string path = ArtifactPath(flags, plan.seed);
  std::ofstream out(path);
  out << ReproToJson(outcome.repro) << "\n";
  out.close();
  std::printf(
      "shrink: %zu candidate runs, minimized to %zu events "
      "(%zu txns + %zu faults)\nrepro artifact: %s\nminimized run: %s\n",
      outcome.candidate_runs, outcome.events, outcome.repro.txns.size(),
      outcome.repro.faults.size(), path.c_str(),
      outcome.final_result.Summary().c_str());
  return path;
}

int RunOne(const Flags& flags) {
  FuzzOptions options = MakeOptions(flags);
  FuzzPlan plan = BuildPlan(flags.seed, flags.quick);
  if (flags.print_plan) std::printf("%s\n", plan.Summary().c_str());

  uint64_t first_hash = 0;
  for (int run = 0; run < flags.runs; ++run) {
    FuzzResult result = RunPlan(plan, options);
    std::printf("seed=%llu run=%d: %s\n",
                static_cast<unsigned long long>(plan.seed), run,
                result.Summary().c_str());
    if (run == 0) {
      first_hash = result.history_hash;
    } else if (result.history_hash != first_hash) {
      std::printf("NONDETERMINISM: run %d hash differs from run 0\n", run);
      return 1;
    }
    if (!result.ok) {
      if (flags.shrink) ShrinkAndSave(plan, options, flags);
      return 1;
    }
  }
  return 0;
}

int RunSweep(const Flags& flags) {
  FuzzOptions options = MakeOptions(flags);
  int failures = 0;
  for (uint64_t seed = flags.sweep_start;
       seed < flags.sweep_start + flags.sweep; ++seed) {
    FuzzPlan plan = BuildPlan(seed, flags.quick);
    FuzzResult result = RunPlan(plan, options);
    if (!result.ok) {
      ++failures;
      std::printf("seed=%llu: %s\n", static_cast<unsigned long long>(seed),
                  result.Summary().c_str());
      if (flags.shrink) ShrinkAndSave(plan, options, flags);
    }
  }
  std::printf("sweep: %llu seeds [%llu..%llu], %d failing\n",
              static_cast<unsigned long long>(flags.sweep),
              static_cast<unsigned long long>(flags.sweep_start),
              static_cast<unsigned long long>(flags.sweep_start +
                                              flags.sweep - 1),
              failures);
  return failures == 0 ? 0 : 1;
}

int RunReplay(const Flags& flags) {
  std::ifstream in(flags.replay);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.replay.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ReproSpec repro;
  std::string error;
  if (!ReproFromJson(buf.str(), &repro, &error)) {
    std::fprintf(stderr, "bad repro artifact %s: %s\n", flags.replay.c_str(),
                 error.c_str());
    return 2;
  }
  if (!repro.note.empty()) {
    std::printf("note: %s\n", repro.note.c_str());
  }
  FuzzPlan plan = PlanFromRepro(repro);
  if (flags.print_plan) std::printf("%s\n", plan.Summary().c_str());
  FuzzResult result = RunPlan(plan, MakeOptions(flags));
  std::printf("replay seed=%llu: %s\n",
              static_cast<unsigned long long>(repro.seed),
              result.Summary().c_str());
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.help) {
    std::printf(
        "usage: threev_fuzz [--seed=N] [--quick] [--sweep=N]\n"
        "         [--sweep-start=N] [--runs=K] [--shrink] [--replay=FILE]\n"
        "         [--artifacts-dir=DIR] [--scratch-dir=DIR]\n"
        "         [--inject-bug=skip-completion] [--bug-node=I]\n"
        "         [--print-plan]\n");
    return 2;
  }
  if (!flags.replay.empty()) return RunReplay(flags);
  if (flags.sweep > 0) return RunSweep(flags);
  return RunOne(flags);
}
