// AT&T-style call recording (the paper's original motivation): calls
// traverse several switches, each leg is recorded where it happened, and
// billing queries must never see half a call.
//
// This example runs the SAME workload under all four coordination
// strategies from the paper's introduction and prints a side-by-side
// comparison: throughput, latency, staleness, and billing anomalies.
//
// Build & run:  ./build/examples/telecom_calls
#include <cstdio>

#include "threev/baseline/systems.h"
#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

using namespace threev;

int main() {
  std::printf(
      "%-18s %10s %10s %10s %12s %10s\n", "strategy", "txn/s", "p50-upd",
      "p99-upd", "staleness", "anomalies");

  for (SystemKind kind :
       {SystemKind::kThreeV, SystemKind::kGlobalSync, SystemKind::kNoCoord,
        SystemKind::kManual}) {
    Metrics metrics;
    HistoryRecorder history;
    SimNet net(SimNetOptions{.seed = 99, .min_delay = 300,
                             .mean_extra_delay = 200},
               &metrics);
    SystemConfig config;
    config.kind = kind;
    config.num_nodes = 8;
    config.seed = 99;
    config.manual_safety_delay = 5'000;
    auto system = MakeSystem(config, &net, &metrics, &history);
    system->EnableAutoAdvance(25'000);

    WorkloadOptions wopts;
    wopts.num_nodes = 8;
    wopts.num_entities = 500;  // subscribers
    wopts.read_fraction = 0.2;
    wopts.fanout = 3;  // a call touches three switches
    wopts.seed = 5;
    WorkloadGenerator gen(wopts);

    SimRunStats stats =
        RunOpenLoopSim(*system, net, gen, 4000, /*mean_interarrival=*/120);
    CheckResult check = CheckHistory(history.Transactions());

    std::printf("%-18s %10.0f %9lldus %9lldus %10lldus %10zu\n",
                system->name(), stats.throughput_per_sec(),
                static_cast<long long>(metrics.update_latency.Percentile(50)),
                static_cast<long long>(metrics.update_latency.Percentile(99)),
                static_cast<long long>(metrics.staleness.Percentile(50)),
                check.total_anomalies());
  }
  std::printf(
      "\n3V matches NoCoord's speed while matching GlobalSync's "
      "correctness;\nManualVersioning is correct only when its safety delay "
      "is generous\n(here it is not), and its reads are a full period "
      "stale.\n");
  return 0;
}
