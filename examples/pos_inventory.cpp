// Point-of-sale inventory across a retail chain, exercising the NC3V
// extension (Section 5): sales and stock audits commute (the fast path),
// but price changes are overwrites - non-commuting - and flow through
// commute/NC locks plus two-phase commit, without slowing the fast path
// when they are absent.
//
// Build & run:  ./build/examples/pos_inventory
#include <cstdio>

#include "threev/common/random.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"
#include "threev/workload/scenarios.h"

using namespace threev;

int main() {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 17}, &metrics);

  ClusterOptions options;
  options.num_nodes = 6;  // six stores
  options.mode = NodeMode::kNC3V;
  options.nc_lock_timeout = 50'000;
  Cluster cluster(options, &net, &metrics);
  cluster.coordinator().EnableAutoAdvance(30'000);

  // Seed initial stock: 200 units of each of 40 SKUs in every store.
  for (uint64_t sku = 0; sku < 40; ++sku) {
    for (NodeId store = 0; store < 6; ++store) {
      Value stock;
      stock.num = 200;
      cluster.node(store).store().Seed(StockKey(sku, store), stock);
    }
  }

  Rng rng(555);
  size_t done = 0, submitted = 0;
  size_t sales = 0, audits = 0, price_changes = 0, price_aborts = 0;

  for (int i = 0; i < 3000; ++i) {
    uint64_t sku = rng.Uniform(40);
    double dice = rng.NextDouble();
    if (dice < 0.75) {
      // A sale shipping from 1-2 stores (commuting decrement).
      std::vector<SaleLine> lines;
      NodeId first = static_cast<NodeId>(rng.Uniform(6));
      lines.push_back({first, sku, rng.UniformRange(1, 3)});
      if (rng.Bernoulli(0.5)) {
        lines.push_back({static_cast<NodeId>((first + 1) % 6), sku, 1});
      }
      cluster.Submit(first, MakeSale(1000 + i, lines),
                     [&](const TxnResult&) { ++done; });
      ++sales;
    } else if (dice < 0.95) {
      // Chain-wide stock audit (read-only: no locks, never delayed).
      cluster.Submit(static_cast<NodeId>(rng.Uniform(6)),
                     MakeStockAudit(sku, {0, 1, 2, 3, 4, 5}),
                     [&](const TxnResult&) { ++done; });
      ++audits;
    } else {
      // A price change across all stores: non-commuting, 2PC.
      std::string price = std::to_string(5 + rng.Uniform(95)) + ".99";
      cluster.Submit(static_cast<NodeId>(rng.Uniform(6)),
                     MakePriceChange(sku, {0, 1, 2, 3, 4, 5}, price),
                     [&](const TxnResult& r) {
                       if (!r.status.ok()) ++price_aborts;
                       ++done;
                     });
      ++price_changes;
    }
    ++submitted;
  }
  net.loop().RunUntil([&] { return done >= submitted; });
  cluster.coordinator().DisableAutoAdvance();
  net.loop().Run();  // drain lock cleanups / 2PC acks

  std::printf("point-of-sale: %zu sales, %zu audits, %zu price changes "
              "(%zu aborted+retryable)\n",
              sales, audits, price_changes, price_aborts);
  std::printf("virtual time: %lld ms, advancements: %lld\n",
              static_cast<long long>(net.Now() / 1000),
              static_cast<long long>(metrics.advancements_completed.load()));
  std::printf("sale latency:  %s\n",
              metrics.update_latency.Summary().c_str());
  std::printf("audit latency: %s\n", metrics.read_latency.Summary().c_str());
  std::printf("lock waits: %lld (only around price changes), "
              "version-gate waits: %lld\n",
              static_cast<long long>(metrics.lock_waits.load()),
              static_cast<long long>(metrics.version_gate_waits.load()));

  // Conservation audit: after an advancement, stock + sold == seeded 200
  // for every (sku, store) - commutativity kept every version consistent.
  bool advanced = false;
  cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
  net.loop().RunUntil([&] { return advanced; });

  int violations = 0;
  Version vr = cluster.node(0).vr();
  for (uint64_t sku = 0; sku < 40; ++sku) {
    for (NodeId store = 0; store < 6; ++store) {
      auto stock = cluster.node(store).store().Read(StockKey(sku, store), vr);
      auto sold = cluster.node(store).store().Read(SoldKey(sku, store), vr);
      int64_t total = (stock.ok() ? stock->num : 0) +
                      (sold.ok() ? sold->num : 0);
      if (total != 200) ++violations;
    }
  }
  std::printf("conservation check (stock+sold==200 per sku/store): %s\n",
              violations == 0 ? "OK" : "VIOLATED");
  Status invariants = cluster.CheckInvariants();
  std::printf("invariants: %s\n", invariants.ToString().c_str());
  return (violations == 0 && invariants.ok()) ? 0 : 1;
}
