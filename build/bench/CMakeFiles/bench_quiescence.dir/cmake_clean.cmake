file(REMOVE_RECURSE
  "CMakeFiles/bench_quiescence.dir/bench_quiescence.cc.o"
  "CMakeFiles/bench_quiescence.dir/bench_quiescence.cc.o.d"
  "bench_quiescence"
  "bench_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
