# Empty compiler generated dependencies file for bench_quiescence.
# This may be replaced when dependencies are built.
