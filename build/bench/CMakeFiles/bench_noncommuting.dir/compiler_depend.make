# Empty compiler generated dependencies file for bench_noncommuting.
# This may be replaced when dependencies are built.
