file(REMOVE_RECURSE
  "CMakeFiles/bench_noncommuting.dir/bench_noncommuting.cc.o"
  "CMakeFiles/bench_noncommuting.dir/bench_noncommuting.cc.o.d"
  "bench_noncommuting"
  "bench_noncommuting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noncommuting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
