# Empty compiler generated dependencies file for bench_advancement.
# This may be replaced when dependencies are built.
