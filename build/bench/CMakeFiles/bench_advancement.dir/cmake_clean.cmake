file(REMOVE_RECURSE
  "CMakeFiles/bench_advancement.dir/bench_advancement.cc.o"
  "CMakeFiles/bench_advancement.dir/bench_advancement.cc.o.d"
  "bench_advancement"
  "bench_advancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
