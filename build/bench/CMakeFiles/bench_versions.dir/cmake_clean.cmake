file(REMOVE_RECURSE
  "CMakeFiles/bench_versions.dir/bench_versions.cc.o"
  "CMakeFiles/bench_versions.dir/bench_versions.cc.o.d"
  "bench_versions"
  "bench_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
