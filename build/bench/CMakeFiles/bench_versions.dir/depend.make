# Empty dependencies file for bench_versions.
# This may be replaced when dependencies are built.
