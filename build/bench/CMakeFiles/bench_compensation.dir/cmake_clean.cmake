file(REMOVE_RECURSE
  "CMakeFiles/bench_compensation.dir/bench_compensation.cc.o"
  "CMakeFiles/bench_compensation.dir/bench_compensation.cc.o.d"
  "bench_compensation"
  "bench_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
