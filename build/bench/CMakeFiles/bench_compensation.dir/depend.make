# Empty dependencies file for bench_compensation.
# This may be replaced when dependencies are built.
