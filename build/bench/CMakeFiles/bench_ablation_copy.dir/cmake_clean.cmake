file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_copy.dir/bench_ablation_copy.cc.o"
  "CMakeFiles/bench_ablation_copy.dir/bench_ablation_copy.cc.o.d"
  "bench_ablation_copy"
  "bench_ablation_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
