# Empty compiler generated dependencies file for bench_ablation_copy.
# This may be replaced when dependencies are built.
