file(REMOVE_RECURSE
  "CMakeFiles/bench_anomaly.dir/bench_anomaly.cc.o"
  "CMakeFiles/bench_anomaly.dir/bench_anomaly.cc.o.d"
  "bench_anomaly"
  "bench_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
