# Empty compiler generated dependencies file for bench_anomaly.
# This may be replaced when dependencies are built.
