add_test([=[SoakTest.FiftyAdvancementCyclesUnderLoad]=]  /root/repo/build/tests/soak_test [==[--gtest_filter=SoakTest.FiftyAdvancementCyclesUnderLoad]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SoakTest.FiftyAdvancementCyclesUnderLoad]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 120)
set(  soak_test_TESTS SoakTest.FiftyAdvancementCyclesUnderLoad)
