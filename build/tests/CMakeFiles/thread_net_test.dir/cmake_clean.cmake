file(REMOVE_RECURSE
  "CMakeFiles/thread_net_test.dir/thread_net_test.cc.o"
  "CMakeFiles/thread_net_test.dir/thread_net_test.cc.o.d"
  "thread_net_test"
  "thread_net_test.pdb"
  "thread_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
