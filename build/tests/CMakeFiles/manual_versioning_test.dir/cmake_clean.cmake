file(REMOVE_RECURSE
  "CMakeFiles/manual_versioning_test.dir/manual_versioning_test.cc.o"
  "CMakeFiles/manual_versioning_test.dir/manual_versioning_test.cc.o.d"
  "manual_versioning_test"
  "manual_versioning_test.pdb"
  "manual_versioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manual_versioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
