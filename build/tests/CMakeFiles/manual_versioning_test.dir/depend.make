# Empty dependencies file for manual_versioning_test.
# This may be replaced when dependencies are built.
