file(REMOVE_RECURSE
  "CMakeFiles/nc3v_test.dir/nc3v_test.cc.o"
  "CMakeFiles/nc3v_test.dir/nc3v_test.cc.o.d"
  "nc3v_test"
  "nc3v_test.pdb"
  "nc3v_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nc3v_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
