# Empty compiler generated dependencies file for nc3v_test.
# This may be replaced when dependencies are built.
