# Empty dependencies file for tcp_net_test.
# This may be replaced when dependencies are built.
