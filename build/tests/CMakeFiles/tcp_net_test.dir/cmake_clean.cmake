file(REMOVE_RECURSE
  "CMakeFiles/tcp_net_test.dir/tcp_net_test.cc.o"
  "CMakeFiles/tcp_net_test.dir/tcp_net_test.cc.o.d"
  "tcp_net_test"
  "tcp_net_test.pdb"
  "tcp_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
