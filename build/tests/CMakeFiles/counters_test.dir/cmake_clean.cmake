file(REMOVE_RECURSE
  "CMakeFiles/counters_test.dir/counters_test.cc.o"
  "CMakeFiles/counters_test.dir/counters_test.cc.o.d"
  "counters_test"
  "counters_test.pdb"
  "counters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
