# Empty dependencies file for counters_test.
# This may be replaced when dependencies are built.
