# Empty dependencies file for store_property_test.
# This may be replaced when dependencies are built.
