file(REMOVE_RECURSE
  "CMakeFiles/store_property_test.dir/store_property_test.cc.o"
  "CMakeFiles/store_property_test.dir/store_property_test.cc.o.d"
  "store_property_test"
  "store_property_test.pdb"
  "store_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
