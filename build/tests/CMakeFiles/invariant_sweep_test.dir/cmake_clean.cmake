file(REMOVE_RECURSE
  "CMakeFiles/invariant_sweep_test.dir/invariant_sweep_test.cc.o"
  "CMakeFiles/invariant_sweep_test.dir/invariant_sweep_test.cc.o.d"
  "invariant_sweep_test"
  "invariant_sweep_test.pdb"
  "invariant_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
