# Empty dependencies file for invariant_sweep_test.
# This may be replaced when dependencies are built.
