file(REMOVE_RECURSE
  "CMakeFiles/sim_net_test.dir/sim_net_test.cc.o"
  "CMakeFiles/sim_net_test.dir/sim_net_test.cc.o.d"
  "sim_net_test"
  "sim_net_test.pdb"
  "sim_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
