file(REMOVE_RECURSE
  "CMakeFiles/node_edge_test.dir/node_edge_test.cc.o"
  "CMakeFiles/node_edge_test.dir/node_edge_test.cc.o.d"
  "node_edge_test"
  "node_edge_test.pdb"
  "node_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
