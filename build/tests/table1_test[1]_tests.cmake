add_test([=[Table1Test.ReplaysPaperExecution]=]  /root/repo/build/tests/table1_test [==[--gtest_filter=Table1Test.ReplaysPaperExecution]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Table1Test.ReplaysPaperExecution]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 120)
set(  table1_test_TESTS Table1Test.ReplaysPaperExecution)
