# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/table1_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/coordinator_test[1]_include.cmake")
include("/root/repo/build/tests/nc3v_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/thread_net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_net_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/sim_net_test[1]_include.cmake")
include("/root/repo/build/tests/counters_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/store_property_test[1]_include.cmake")
include("/root/repo/build/tests/manual_versioning_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/node_edge_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
