
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threev/baseline/manual_versioning.cc" "src/CMakeFiles/threev.dir/threev/baseline/manual_versioning.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/baseline/manual_versioning.cc.o.d"
  "/root/repo/src/threev/baseline/systems.cc" "src/CMakeFiles/threev.dir/threev/baseline/systems.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/baseline/systems.cc.o.d"
  "/root/repo/src/threev/common/clock.cc" "src/CMakeFiles/threev.dir/threev/common/clock.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/common/clock.cc.o.d"
  "/root/repo/src/threev/common/logging.cc" "src/CMakeFiles/threev.dir/threev/common/logging.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/common/logging.cc.o.d"
  "/root/repo/src/threev/common/random.cc" "src/CMakeFiles/threev.dir/threev/common/random.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/common/random.cc.o.d"
  "/root/repo/src/threev/common/status.cc" "src/CMakeFiles/threev.dir/threev/common/status.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/common/status.cc.o.d"
  "/root/repo/src/threev/core/cluster.cc" "src/CMakeFiles/threev.dir/threev/core/cluster.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/core/cluster.cc.o.d"
  "/root/repo/src/threev/core/coordinator.cc" "src/CMakeFiles/threev.dir/threev/core/coordinator.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/core/coordinator.cc.o.d"
  "/root/repo/src/threev/core/counters.cc" "src/CMakeFiles/threev.dir/threev/core/counters.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/core/counters.cc.o.d"
  "/root/repo/src/threev/core/node.cc" "src/CMakeFiles/threev.dir/threev/core/node.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/core/node.cc.o.d"
  "/root/repo/src/threev/core/policy.cc" "src/CMakeFiles/threev.dir/threev/core/policy.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/core/policy.cc.o.d"
  "/root/repo/src/threev/lock/lock_manager.cc" "src/CMakeFiles/threev.dir/threev/lock/lock_manager.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/lock/lock_manager.cc.o.d"
  "/root/repo/src/threev/metrics/histogram.cc" "src/CMakeFiles/threev.dir/threev/metrics/histogram.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/metrics/histogram.cc.o.d"
  "/root/repo/src/threev/metrics/metrics.cc" "src/CMakeFiles/threev.dir/threev/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/metrics/metrics.cc.o.d"
  "/root/repo/src/threev/net/message.cc" "src/CMakeFiles/threev.dir/threev/net/message.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/net/message.cc.o.d"
  "/root/repo/src/threev/net/sim_net.cc" "src/CMakeFiles/threev.dir/threev/net/sim_net.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/net/sim_net.cc.o.d"
  "/root/repo/src/threev/net/tcp_net.cc" "src/CMakeFiles/threev.dir/threev/net/tcp_net.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/net/tcp_net.cc.o.d"
  "/root/repo/src/threev/net/thread_net.cc" "src/CMakeFiles/threev.dir/threev/net/thread_net.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/net/thread_net.cc.o.d"
  "/root/repo/src/threev/net/wire.cc" "src/CMakeFiles/threev.dir/threev/net/wire.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/net/wire.cc.o.d"
  "/root/repo/src/threev/sim/event_loop.cc" "src/CMakeFiles/threev.dir/threev/sim/event_loop.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/sim/event_loop.cc.o.d"
  "/root/repo/src/threev/storage/versioned_store.cc" "src/CMakeFiles/threev.dir/threev/storage/versioned_store.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/storage/versioned_store.cc.o.d"
  "/root/repo/src/threev/txn/operation.cc" "src/CMakeFiles/threev.dir/threev/txn/operation.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/txn/operation.cc.o.d"
  "/root/repo/src/threev/txn/plan.cc" "src/CMakeFiles/threev.dir/threev/txn/plan.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/txn/plan.cc.o.d"
  "/root/repo/src/threev/verify/checker.cc" "src/CMakeFiles/threev.dir/threev/verify/checker.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/verify/checker.cc.o.d"
  "/root/repo/src/threev/verify/history.cc" "src/CMakeFiles/threev.dir/threev/verify/history.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/verify/history.cc.o.d"
  "/root/repo/src/threev/workload/scenarios.cc" "src/CMakeFiles/threev.dir/threev/workload/scenarios.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/workload/scenarios.cc.o.d"
  "/root/repo/src/threev/workload/workload.cc" "src/CMakeFiles/threev.dir/threev/workload/workload.cc.o" "gcc" "src/CMakeFiles/threev.dir/threev/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
