file(REMOVE_RECURSE
  "libthreev.a"
)
