# Empty dependencies file for threev.
# This may be replaced when dependencies are built.
