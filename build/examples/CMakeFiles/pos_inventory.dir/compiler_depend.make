# Empty compiler generated dependencies file for pos_inventory.
# This may be replaced when dependencies are built.
