file(REMOVE_RECURSE
  "CMakeFiles/pos_inventory.dir/pos_inventory.cpp.o"
  "CMakeFiles/pos_inventory.dir/pos_inventory.cpp.o.d"
  "pos_inventory"
  "pos_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pos_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
