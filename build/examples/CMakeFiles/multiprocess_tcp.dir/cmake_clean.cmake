file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_tcp.dir/multiprocess_tcp.cpp.o"
  "CMakeFiles/multiprocess_tcp.dir/multiprocess_tcp.cpp.o.d"
  "multiprocess_tcp"
  "multiprocess_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
