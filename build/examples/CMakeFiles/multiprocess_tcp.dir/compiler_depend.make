# Empty compiler generated dependencies file for multiprocess_tcp.
# This may be replaced when dependencies are built.
