# Empty dependencies file for hospital_billing.
# This may be replaced when dependencies are built.
