file(REMOVE_RECURSE
  "CMakeFiles/hospital_billing.dir/hospital_billing.cpp.o"
  "CMakeFiles/hospital_billing.dir/hospital_billing.cpp.o.d"
  "hospital_billing"
  "hospital_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
