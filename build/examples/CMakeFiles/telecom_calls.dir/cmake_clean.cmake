file(REMOVE_RECURSE
  "CMakeFiles/telecom_calls.dir/telecom_calls.cpp.o"
  "CMakeFiles/telecom_calls.dir/telecom_calls.cpp.o.d"
  "telecom_calls"
  "telecom_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
