# Empty compiler generated dependencies file for telecom_calls.
# This may be replaced when dependencies are built.
