# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hospital_billing "/root/repo/build/examples/hospital_billing")
set_tests_properties(example_hospital_billing PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pos_inventory "/root/repo/build/examples/pos_inventory")
set_tests_properties(example_pos_inventory PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprocess_tcp "/root/repo/build/examples/multiprocess_tcp")
set_tests_properties(example_multiprocess_tcp PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simulate_cli "/root/repo/build/examples/simulate_cli" "--txns=500" "--nodes=4")
set_tests_properties(example_simulate_cli PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
