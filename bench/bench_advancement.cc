// Experiment B-ADV (Sections 1, 2, 4.3; Theorem 4.2): version advancement
// is completely asynchronous with user transactions, so it can run
// frequently without touching user latency. We sweep the advancement
// period from "never" down to 2ms under a fixed open-loop load.
//
// Expected shape: update and read latency are FLAT across the entire
// sweep (the paper's headline property); staleness falls as advancement
// gets more frequent; the only extra work is straggler dual-writes and
// counter-read rounds, both modest.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader(
      "B-ADV: user latency vs advancement period (3V, 8 nodes, open loop)");
  std::printf("%-12s %10s %10s %10s %10s %12s %8s %10s %8s\n", "period",
              "upd-p50", "upd-p99", "read-p50", "read-p99", "stale-p50",
              "#adv", "dualwr", "rounds");

  for (Micros period : {Micros{0}, Micros{200'000}, Micros{50'000},
                        Micros{20'000}, Micros{10'000}, Micros{5'000},
                        Micros{2'000}}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.num_nodes = 8;
    config.total_txns = 4000;
    config.mean_interarrival = 120;
    config.advance_period = period;
    config.seed = 42;
    RunOutcome out = RunExperiment(config);
    char label[32];
    if (period == 0) {
      std::snprintf(label, sizeof(label), "never");
    } else {
      std::snprintf(label, sizeof(label), "%lldms",
                    static_cast<long long>(period / 1000));
    }
    std::printf("%-12s %8lldus %8lldus %8lldus %8lldus %10lldus %8lld %10lld %8lld\n",
                label, static_cast<long long>(out.upd_p50),
                static_cast<long long>(out.upd_p99),
                static_cast<long long>(out.read_p50),
                static_cast<long long>(out.read_p99),
                static_cast<long long>(out.stale_p50),
                static_cast<long long>(out.advancements),
                static_cast<long long>(out.dual_writes),
                static_cast<long long>(out.quiescence_rounds));
  }
  std::printf(
      "shape: latency columns flat from 'never' to 2ms (Theorem 4.2);\n"
      "staleness tracks the period; dual-writes stay a tiny fraction of\n"
      "updates even at the fastest cadence.\n");
  return 0;
}
