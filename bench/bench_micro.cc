// Microbenchmarks for the substrate components: versioned store, wire
// codec, lock manager, counters, histogram, Zipf sampling and the
// discrete-event loop. These back the per-operation cost figures quoted
// in EXPERIMENTS.md and act as performance regression tripwires.
#include <benchmark/benchmark.h>

#include "threev/common/random.h"
#include "threev/core/counters.h"
#include "threev/lock/lock_manager.h"
#include "threev/metrics/histogram.h"
#include "threev/net/wire.h"
#include "threev/sim/event_loop.h"
#include "threev/storage/versioned_store.h"

namespace threev {
namespace {

void BM_StoreRead(benchmark::State& state) {
  VersionedStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Seed("key" + std::to_string(i), Value{}, 0);
  }
  Rng rng(1);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(1000));
    benchmark::DoNotOptimize(store.Read(key, 1));
  }
}
BENCHMARK(BM_StoreRead);

void BM_StoreUpdateInPlace(benchmark::State& state) {
  VersionedStore store;
  store.Seed("key", Value{}, 0);
  Operation op = OpAdd("key", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Update("key", 1, op));
  }
}
BENCHMARK(BM_StoreUpdateInPlace);

void BM_StoreDualVersionUpdate(benchmark::State& state) {
  VersionedStore store;
  store.Seed("key", Value{}, 0);
  (void)store.Update("key", 1, OpAdd("key", 1));
  (void)store.Update("key", 2, OpAdd("key", 1));
  Operation op = OpAdd("key", 1);
  for (auto _ : state) {
    // Straggler write: lands in versions 1 and 2.
    benchmark::DoNotOptimize(store.Update("key", 1, op));
  }
}
BENCHMARK(BM_StoreDualVersionUpdate);

void BM_WireEncodeDecode(benchmark::State& state) {
  Message m;
  m.type = MsgType::kSubtxnRequest;
  m.txn = 123456;
  m.plan.node = 1;
  for (int i = 0; i < 4; ++i) {
    m.plan.ops.push_back(OpAdd("bal/entity" + std::to_string(i) + "@1", i));
  }
  for (auto _ : state) {
    std::vector<uint8_t> buf = EncodeMessage(m);
    auto decoded = DecodeMessage(buf.data(), buf.size());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireEncodeDecode);

void BM_LockAcquireReleaseUncontended(benchmark::State& state) {
  LockManager lm;
  uint64_t owner = 1;
  for (auto _ : state) {
    lm.Acquire("key", LockMode::kCommuteUpdate, owner, [](bool) {});
    lm.ReleaseAll(owner);
    ++owner;
  }
}
BENCHMARK(BM_LockAcquireReleaseUncontended);

void BM_LockCompatibleSharing(benchmark::State& state) {
  LockManager lm;
  // 16 standing commute holders; each iteration adds + removes one more.
  for (uint64_t o = 100; o < 116; ++o) {
    lm.Acquire("key", LockMode::kCommuteUpdate, o, [](bool) {});
  }
  uint64_t owner = 1;
  for (auto _ : state) {
    lm.Acquire("key", LockMode::kCommuteUpdate, owner, [](bool) {});
    lm.ReleaseAll(owner);
    ++owner;
  }
}
BENCHMARK(BM_LockCompatibleSharing);

void BM_CounterIncrement(benchmark::State& state) {
  CounterTable counters(16);
  for (auto _ : state) {
    counters.IncR(1, 3);
    counters.IncC(1, 3);
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_CounterSnapshot(benchmark::State& state) {
  CounterTable counters(static_cast<size_t>(state.range(0)));
  counters.IncR(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counters.SnapshotR(1));
  }
}
BENCHMARK(BM_CounterSnapshot)->Arg(4)->Arg(32);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 7) % 1'000'000 + 1;
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(static_cast<uint64_t>(state.range(0)), 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_EventLoopChurn(benchmark::State& state) {
  EventLoop loop;
  for (auto _ : state) {
    loop.ScheduleAfter(1, [] {});
    loop.Step();
  }
}
BENCHMARK(BM_EventLoopChurn);

}  // namespace
}  // namespace threev

BENCHMARK_MAIN();
