// Experiment B-SCALE (claim, Sections 1/8): the 3V algorithm "allows the
// system to scale to very high transaction rates" because no user
// transaction ever waits for another node. We sweep the cluster size under
// a saturating closed-loop telecom workload and compare the four
// strategies of the paper's introduction.
//
// Expected shape: 3V tracks NoCoordination (the no-safety upper bound)
// within a few percent and scales with nodes; GlobalSync pays two-phase
// commit round trips and lock queueing on every transaction and falls far
// behind, with a heavy p99; ManualVersioning is fast but incorrect.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader(
      "B-SCALE: saturation throughput vs cluster size (closed loop, "
      "concurrency = 16 x nodes)");
  std::printf("%-6s %-18s %10s %10s %10s %10s %10s %10s\n", "nodes",
              "strategy", "txn/s", "upd-p50", "upd-p99", "read-p99",
              "msgs/txn", "anomalies");

  for (size_t nodes : {2, 4, 8, 16, 32}) {
    for (SystemKind kind :
         {SystemKind::kThreeV, SystemKind::kGlobalSync, SystemKind::kNoCoord,
          SystemKind::kManual}) {
      RunConfig config;
      config.kind = kind;
      config.num_nodes = nodes;
      config.num_entities = 100 * nodes;  // data grows with the cluster
      config.total_txns = 250 * nodes;
      config.closed_loop = true;
      config.concurrency = 16 * nodes;
      config.advance_period = 25'000;
      config.seed = 7 + nodes;
      RunOutcome out = RunExperiment(config);
      std::printf("%-6zu %-18s %10.0f %8lldus %8lldus %8lldus %10.1f %10zu\n",
                  nodes, out.name.c_str(), out.throughput,
                  static_cast<long long>(out.upd_p50),
                  static_cast<long long>(out.upd_p99),
                  static_cast<long long>(out.read_p99),
                  out.messages_per_txn(), out.anomalies);
    }
    std::printf("\n");
  }
  std::printf(
      "shape: 3V ~= NoCoord throughput at every size (and 0 anomalies);\n"
      "GlobalSync trails by the 2PC round trips and lock queueing;\n"
      "anomalies appear only in the unsafe baselines.\n");
  return 0;
}
