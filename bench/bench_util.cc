#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "threev/net/sim_net.h"
#include "threev/verify/checker.h"
#include "threev/workload/workload.h"

namespace threev {
namespace bench {

RunOutcome RunExperiment(const RunConfig& config) {
  auto wall_start = std::chrono::steady_clock::now();
  Metrics metrics;
  HistoryRecorder history;
  SimNet net(SimNetOptions{.seed = config.seed,
                           .min_delay = config.net_min_delay,
                           .mean_extra_delay = config.net_mean_extra_delay},
             &metrics);

  SystemConfig sys_config;
  sys_config.kind = config.kind;
  sys_config.num_nodes = config.num_nodes;
  sys_config.seed = config.seed;
  sys_config.mixed_workload = config.nc_fraction > 0;
  sys_config.nc_lock_timeout = config.nc_lock_timeout;
  sys_config.coordinator_poll_interval = config.coordinator_poll;
  sys_config.manual_safety_delay = config.manual_safety_delay;
  sys_config.inject_abort_probability = config.inject_abort_probability;
  auto system = MakeSystem(sys_config, &net, &metrics,
                           config.run_checker ? &history : nullptr);
  if (config.advance_period > 0) {
    system->EnableAutoAdvance(config.advance_period);
  }

  WorkloadOptions wopts;
  wopts.num_nodes = config.num_nodes;
  wopts.num_entities = config.num_entities;
  wopts.zipf_theta = config.zipf_theta;
  wopts.read_fraction = config.read_fraction;
  wopts.noncommuting_fraction = config.nc_fraction;
  wopts.fanout = config.fanout;
  wopts.seed = config.seed * 1000 + 17;
  WorkloadGenerator gen(wopts);

  if (config.value_padding > 0) {
    // Seed padded records at their home node (key suffix "@<node>").
    Value padded;
    padded.str.assign(config.value_padding, 'x');
    for (const std::string& key : gen.AllSummaryKeys()) {
      auto at = key.rfind('@');
      size_t node = std::stoul(key.substr(at + 1));
      system->node(node).store().Seed(key, padded, 0);
    }
  }

  SimRunStats stats =
      config.closed_loop
          ? RunClosedLoopSim(*system, net, gen, config.total_txns,
                             config.concurrency)
          : RunOpenLoopSim(*system, net, gen, config.total_txns,
                           config.mean_interarrival);
  system->DisableAutoAdvance();
  net.loop().Run();  // drain cleanups, decisions, a final advancement

  RunOutcome out;
  out.name = system->name();
  out.committed = stats.committed;
  out.aborted = stats.aborted;
  out.virtual_elapsed = stats.virtual_elapsed;
  out.throughput = stats.throughput_per_sec();
  out.upd_p50 = metrics.update_latency.Percentile(50);
  out.upd_p99 = metrics.update_latency.Percentile(99);
  out.read_p50 = metrics.read_latency.Percentile(50);
  out.read_p99 = metrics.read_latency.Percentile(99);
  out.stale_p50 = metrics.staleness.Percentile(50);
  out.stale_p99 = metrics.staleness.Percentile(99);
  out.adv_p50 = metrics.advancement_latency.Percentile(50);
  out.messages = metrics.messages_sent.load();
  out.bytes = metrics.bytes_sent.load();
  out.dual_writes = metrics.dual_version_writes.load();
  out.copies = metrics.version_copies.load();
  out.bytes_copied = metrics.bytes_copied.load();
  out.advancements = metrics.advancements_completed.load();
  out.quiescence_rounds = metrics.quiescence_rounds.load();
  out.lock_waits = metrics.lock_waits.load();
  out.gate_waits = metrics.version_gate_waits.load();
  out.compensations = metrics.compensations_sent.load();
  for (size_t n = 0; n < system->num_nodes(); ++n) {
    out.max_versions = std::max(
        out.max_versions, system->node(n).store().MaxVersionsObserved());
  }
  if (config.run_checker) {
    CheckResult check = CheckHistory(history.Transactions());
    out.anomalies = check.total_anomalies();
  }
  out.wall_elapsed_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();
  return out;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteHotpathJson(const std::string& path, bool quick,
                      const std::vector<HotpathResult>& results) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"hotpath\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
     << ", \"compiler\": \"" << JsonEscape(__VERSION__) << "\"},\n";
  os << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const HotpathResult& r = results[i];
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"name\": \"%s\", \"threads\": %zu, \"ops\": %lld, "
                  "\"elapsed_ns\": %lld, \"throughput_ops\": %.1f, "
                  "\"p50_ns\": %lld, \"p99_ns\": %lld, "
                  "\"messages\": %lld, \"bytes\": %lld}%s\n",
                  JsonEscape(r.name).c_str(), r.threads,
                  static_cast<long long>(r.ops),
                  static_cast<long long>(r.elapsed_ns), r.throughput_ops(),
                  static_cast<long long>(r.p50_ns),
                  static_cast<long long>(r.p99_ns),
                  static_cast<long long>(r.messages),
                  static_cast<long long>(r.bytes),
                  i + 1 < results.size() ? "," : "");
    os << row;
  }
  os << "  ]\n}\n";

  if (path == "-") {
    std::fputs(os.str().c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs(os.str().c_str(), f) >= 0;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::string RunOutcomeJson(const RunConfig& config, const RunOutcome& out) {
  std::ostringstream os;
  os << "{\"name\": \"" << JsonEscape(out.name) << "\""
     << ", \"nodes\": " << config.num_nodes
     << ", \"seed\": " << config.seed
     << ", \"closed_loop\": " << (config.closed_loop ? "true" : "false")
     << ", \"total_txns\": " << config.total_txns
     << ", \"committed\": " << out.committed
     << ", \"aborted\": " << out.aborted
     << ", \"throughput_txn_s\": " << out.throughput
     << ", \"virtual_elapsed_us\": " << out.virtual_elapsed
     << ", \"wall_elapsed_us\": " << out.wall_elapsed_micros
     << ", \"upd_p50_us\": " << out.upd_p50
     << ", \"upd_p99_us\": " << out.upd_p99
     << ", \"read_p50_us\": " << out.read_p50
     << ", \"read_p99_us\": " << out.read_p99
     << ", \"messages\": " << out.messages
     << ", \"bytes\": " << out.bytes
     << ", \"anomalies\": " << out.anomalies << "}";
  return os.str();
}

}  // namespace bench
}  // namespace threev
