#ifndef THREEV_BENCH_BENCH_UTIL_H_
#define THREEV_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/baseline/systems.h"

namespace threev {
namespace bench {

// One experiment run: a workload against one coordination strategy on a
// simulated network, with everything the experiment tables need extracted
// into plain numbers.
struct RunConfig {
  SystemKind kind = SystemKind::kThreeV;
  size_t num_nodes = 8;
  uint64_t seed = 1;
  uint64_t num_entities = 500;
  double zipf_theta = 0.9;
  double read_fraction = 0.2;
  double nc_fraction = 0.0;
  size_t fanout = 2;
  size_t total_txns = 3000;
  Micros mean_interarrival = 150;
  // Closed loop: keep `concurrency` transactions in flight instead of
  // Poisson arrivals (used for saturation-throughput studies).
  bool closed_loop = false;
  size_t concurrency = 64;
  // 0 = no advancement. For kManual this is the period-switch cadence.
  Micros advance_period = 25'000;
  Micros manual_safety_delay = 5'000;
  Micros nc_lock_timeout = 50'000;
  Micros coordinator_poll = 2'000;
  double inject_abort_probability = 0.0;
  // Pre-seed every summary key with this much payload (copy-cost studies).
  size_t value_padding = 0;
  // Network model.
  Micros net_min_delay = 300;
  Micros net_mean_extra_delay = 200;
  bool run_checker = true;
};

struct RunOutcome {
  std::string name;
  size_t committed = 0;
  size_t aborted = 0;
  Micros virtual_elapsed = 0;
  // Wall-clock cost of driving the run (host microseconds, not virtual
  // time): the hot-path engineering trajectory shows up here, while
  // `virtual_elapsed`/`throughput` stay fixed by the simulated network.
  int64_t wall_elapsed_micros = 0;
  double throughput = 0;  // committed / virtual second
  int64_t upd_p50 = 0, upd_p99 = 0;
  int64_t read_p50 = 0, read_p99 = 0;
  int64_t stale_p50 = 0, stale_p99 = 0;
  int64_t adv_p50 = 0;  // advancement completion latency
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t dual_writes = 0;
  int64_t copies = 0;
  int64_t bytes_copied = 0;
  int64_t advancements = 0;
  int64_t quiescence_rounds = 0;
  int64_t lock_waits = 0;
  int64_t gate_waits = 0;
  int64_t compensations = 0;
  size_t max_versions = 0;
  size_t anomalies = 0;

  double messages_per_txn() const {
    size_t n = committed + aborted;
    return n ? static_cast<double>(messages) / static_cast<double>(n) : 0;
  }
};

// Runs the configured workload to completion on a fresh SimNet and
// returns the digested outcome. Deterministic from the seeds.
RunOutcome RunExperiment(const RunConfig& config);

// Prints "name: value" rows under a header; helpers for aligned tables.
void PrintHeader(const std::string& title);

// --- Machine-readable output (bench_hotpath, CI bench-smoke) --------------
//
// Tiny JSON emission helpers so bench mains can export per-run results
// without a JSON library. The hotpath schema is validated by
// tools/check_bench_json.py and documented in bench/README.md.

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

// One microbenchmark row of the BENCH_hotpath.json report.
struct HotpathResult {
  std::string name;
  size_t threads = 1;
  int64_t ops = 0;          // total operations across all threads
  int64_t elapsed_ns = 0;   // wall time for the whole run
  int64_t p50_ns = 0;       // per-op latency percentiles (batch-sampled)
  int64_t p99_ns = 0;
  int64_t messages = 0;     // wire benches: messages encoded/decoded
  int64_t bytes = 0;        // wire benches: bytes produced/consumed

  double throughput_ops() const {
    return elapsed_ns > 0 ? ops * 1e9 / static_cast<double>(elapsed_ns) : 0;
  }
};

// Serializes the full hotpath report (config + results) and writes it to
// `path` ("-" = stdout). Returns false on I/O failure.
bool WriteHotpathJson(const std::string& path, bool quick,
                      const std::vector<HotpathResult>& results);

// Serializes one protocol-level experiment run (config + outcome) as a
// single-line JSON object, for appending to per-run logs.
std::string RunOutcomeJson(const RunConfig& config, const RunOutcome& out);

}  // namespace bench
}  // namespace threev

#endif  // THREEV_BENCH_BENCH_UTIL_H_
