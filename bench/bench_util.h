#ifndef THREEV_BENCH_BENCH_UTIL_H_
#define THREEV_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>

#include "threev/baseline/systems.h"

namespace threev {
namespace bench {

// One experiment run: a workload against one coordination strategy on a
// simulated network, with everything the experiment tables need extracted
// into plain numbers.
struct RunConfig {
  SystemKind kind = SystemKind::kThreeV;
  size_t num_nodes = 8;
  uint64_t seed = 1;
  uint64_t num_entities = 500;
  double zipf_theta = 0.9;
  double read_fraction = 0.2;
  double nc_fraction = 0.0;
  size_t fanout = 2;
  size_t total_txns = 3000;
  Micros mean_interarrival = 150;
  // Closed loop: keep `concurrency` transactions in flight instead of
  // Poisson arrivals (used for saturation-throughput studies).
  bool closed_loop = false;
  size_t concurrency = 64;
  // 0 = no advancement. For kManual this is the period-switch cadence.
  Micros advance_period = 25'000;
  Micros manual_safety_delay = 5'000;
  Micros nc_lock_timeout = 50'000;
  Micros coordinator_poll = 2'000;
  double inject_abort_probability = 0.0;
  // Pre-seed every summary key with this much payload (copy-cost studies).
  size_t value_padding = 0;
  // Network model.
  Micros net_min_delay = 300;
  Micros net_mean_extra_delay = 200;
  bool run_checker = true;
};

struct RunOutcome {
  std::string name;
  size_t committed = 0;
  size_t aborted = 0;
  Micros virtual_elapsed = 0;
  double throughput = 0;  // committed / virtual second
  int64_t upd_p50 = 0, upd_p99 = 0;
  int64_t read_p50 = 0, read_p99 = 0;
  int64_t stale_p50 = 0, stale_p99 = 0;
  int64_t adv_p50 = 0;  // advancement completion latency
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t dual_writes = 0;
  int64_t copies = 0;
  int64_t bytes_copied = 0;
  int64_t advancements = 0;
  int64_t quiescence_rounds = 0;
  int64_t lock_waits = 0;
  int64_t gate_waits = 0;
  int64_t compensations = 0;
  size_t max_versions = 0;
  size_t anomalies = 0;

  double messages_per_txn() const {
    size_t n = committed + aborted;
    return n ? static_cast<double>(messages) / static_cast<double>(n) : 0;
  }
};

// Runs the configured workload to completion on a fresh SimNet and
// returns the digested outcome. Deterministic from the seeds.
RunOutcome RunExperiment(const RunConfig& config);

// Prints "name: value" rows under a header; helpers for aligned tables.
void PrintHeader(const std::string& title);

}  // namespace bench
}  // namespace threev

#endif  // THREEV_BENCH_BENCH_UTIL_H_
