// Experiment B-COMP (Section 3.2): aborts are handled by compensating
// subtransactions that are ordinary members of the transaction tree, so
// the SAME request/completion counters account for them and version
// advancement never declares quiescence while compensation traffic is in
// flight. We sweep the injected abort rate.
//
// Expected shape: compensation traffic grows linearly with the abort
// rate; reads stay perfectly clean at every rate (aborted transactions
// are invisible by the time a version becomes readable); advancement
// keeps completing.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader(
      "B-COMP: compensation under injected aborts (3V, 6 nodes, "
      "advancing every 15ms)");
  std::printf("%-12s %10s %10s %14s %8s %10s %10s\n", "abort-rate",
              "committed", "aborted", "compensations", "#adv", "upd-p99",
              "anomalies");

  for (double rate : {0.0, 0.01, 0.05, 0.2, 0.5}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.num_nodes = 6;
    config.total_txns = 3000;
    config.mean_interarrival = 150;
    config.advance_period = 15'000;
    config.inject_abort_probability = rate;
    config.read_fraction = 0.3;
    config.seed = 77;
    RunOutcome out = RunExperiment(config);
    std::printf("%11.0f%% %10zu %10zu %14lld %8lld %8lldus %10zu\n",
                rate * 100, out.committed, out.aborted,
                static_cast<long long>(out.compensations),
                static_cast<long long>(out.advancements),
                static_cast<long long>(out.upd_p99), out.anomalies);
  }
  std::printf(
      "shape: anomalies stay 0 at every abort rate - compensators commute\n"
      "and are counted by the same counters, so no read version is exposed\n"
      "until compensation has fully drained.\n");
  return 0;
}
