// Experiment B-ABLATE-COW (Section 7, comparison with [1,5,6,7]): prior
// multiversion schemes create a new copy of the object on EVERY update; 3V
// copies once per version advancement and updates in place afterwards.
//
// Part 1 (microbenchmark): per-update cost of the two policies across
// record sizes.
// Part 2 (protocol level): bytes copied per committed transaction under a
// real 3V run, versus the modeled copy-per-update cost for the same run.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "threev/storage/versioned_store.h"

namespace threev {
namespace {

Value PaddedValue(size_t bytes) {
  Value v;
  v.str.assign(bytes, 'x');
  return v;
}

// 3V policy: one copy at the first update of the epoch, in-place after.
void BM_CopyOncePerEpoch(benchmark::State& state) {
  size_t record_bytes = static_cast<size_t>(state.range(0));
  VersionedStore store;
  store.Seed("k", PaddedValue(record_bytes), 0);
  Operation op = OpAdd("k", 1);
  Version version = 1;
  int64_t in_epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Update("k", version, op));
    // A new epoch every 10k updates: forces the occasional copy + GC,
    // matching an aggressive advancement cadence.
    if (++in_epoch == 10'000) {
      in_epoch = 0;
      store.GarbageCollect(version);
      ++version;
    }
  }
  state.SetBytesProcessed(state.iterations() * 8);  // payload written
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
}
BENCHMARK(BM_CopyOncePerEpoch)->Arg(64)->Arg(1024)->Arg(16384);

// Prior-work policy: every update clones the record before writing.
void BM_CopyEveryUpdate(benchmark::State& state) {
  size_t record_bytes = static_cast<size_t>(state.range(0));
  Value current = PaddedValue(record_bytes);
  Operation op = OpAdd("k", 1);
  for (auto _ : state) {
    Value copy = current;  // the mandatory per-update clone
    op.ApplyTo(copy);
    current = std::move(copy);
    benchmark::DoNotOptimize(current.num);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record_bytes));
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
}
BENCHMARK(BM_CopyEveryUpdate)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace threev

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Part 2: protocol-level copy accounting.
  using namespace threev::bench;
  PrintHeader(
      "B-ABLATE-COW part 2: bytes copied per committed txn (3V, 8 nodes, "
      "1 KiB records)");
  std::printf("%-12s %14s %16s %18s\n", "adv-period", "copies/txn",
              "copied-B/txn", "copy-every-upd-B/txn");
  for (threev::Micros period : {threev::Micros{100'000},
                                threev::Micros{20'000},
                                threev::Micros{5'000}}) {
    RunConfig config;
    config.kind = threev::SystemKind::kThreeV;
    config.num_nodes = 8;
    config.total_txns = 3000;
    config.mean_interarrival = 150;
    config.advance_period = period;
    config.value_padding = 1024;
    // Hot keys: many updates hit the same record within one epoch, which
    // is exactly where copy-once-per-epoch wins.
    config.num_entities = 50;
    config.zipf_theta = 1.0;
    config.run_checker = false;
    config.seed = 3;
    RunOutcome out = RunExperiment(config);
    double n = static_cast<double>(out.committed);
    // Modeled prior-work cost: every update op on a padded summary key
    // would clone the ~1 KiB record; each update txn touches `fanout`
    // summary keys.
    double copy_every = 1024.0 * 2.0 * (1.0 - 0.2);
    std::printf("%10lldms %14.2f %16.0f %18.0f\n",
                static_cast<long long>(period / 1000),
                static_cast<double>(out.copies) / n,
                static_cast<double>(out.bytes_copied) / n, copy_every);
  }
  std::printf(
      "shape: 3V's copy traffic scales with advancement cadence, not with\n"
      "update rate - an order of magnitude below copy-per-update schemes\n"
      "at realistic cadences.\n");
  return 0;
}
