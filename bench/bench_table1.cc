// Experiments E-T1 and E-F2: replays the paper's Table 1 execution
// sequence event by event (via the manually-stepped simulated network) and
// prints both the event narrative with live counter values and the
// Figure 2 per-site version snapshots at the same four points in time.
//
// Deltas used: i adds A+=10, D+=20, E+=30, B+=40, F+=50; j adds D+=200,
// A+=100 - so every version copy in Figure 2 is identifiable by value.
#include <cstdio>

#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

using namespace threev;

namespace {

constexpr int kSubmit = static_cast<int>(MsgType::kClientSubmit);
constexpr int kSubtxn = static_cast<int>(MsgType::kSubtxnRequest);
constexpr int kNotice = static_cast<int>(MsgType::kCompletionNotice);
constexpr int kStartAdv = static_cast<int>(MsgType::kStartAdvancement);
constexpr int kResult = static_cast<int>(MsgType::kClientResult);

struct Replay {
  Metrics metrics;
  SimNet net{SimNetOptions{.manual = true}, &metrics};
  Cluster cluster;

  Replay() : cluster(Options(), &net, &metrics) {
    cluster.node(0).store().Seed("A", Value{});
    cluster.node(0).store().Seed("B", Value{});
    cluster.node(1).store().Seed("D", Value{});
    cluster.node(1).store().Seed("E", Value{});
    cluster.node(2).store().Seed("F", Value{});
  }

  static ClusterOptions Options() {
    ClusterOptions options;
    options.num_nodes = 3;
    return options;
  }

  void Deliver(int from, int to, int type) {
    if (net.DeliverMatching(from, to, type) == 0) {
      std::printf("  !! expected message %d->%d type %d missing\n", from, to,
                  type);
    }
  }

  void Snapshot(const char* when) {
    std::printf("\n  Figure 2 - %s\n", when);
    std::printf("  %-8s", "");
    const char* items[] = {"A", "B", "D", "E", "F"};
    int sites[] = {0, 0, 1, 1, 2};
    std::printf("%8s %8s %8s %8s %8s\n", "A@p", "B@p", "D@q", "E@q", "F@s");
    for (Version v = 3; v-- > 0;) {
      std::printf("  v%-7u", v);
      for (int i = 0; i < 5; ++i) {
        auto dump = cluster.node(sites[i]).store().DumpItem(items[i]);
        auto it = dump.find(v);
        if (it == dump.end()) {
          std::printf("%8s", "-");
        } else {
          std::printf("%8lld", static_cast<long long>(it->second.num));
        }
      }
      std::printf("\n");
    }
  }

  int64_t R(int node, Version v, NodeId to) {
    return cluster.node(node).counters().R(v, to);
  }
  int64_t C(int node, Version v, NodeId from) {
    return cluster.node(node).counters().C(v, from);
  }
};

}  // namespace

int main() {
  std::printf("=== E-T1: Table 1 example execution sequence ===\n");
  Replay r;
  const NodeId p = 0, q = 1, s = 2;
  NodeId client = r.cluster.client_id();
  NodeId coord = r.cluster.coordinator_id();

  SubtxnPlan iqp;
  iqp.node = p;
  iqp.ops = {OpAdd("B", 40)};
  SubtxnPlan iq;
  iq.node = q;
  iq.ops = {OpAdd("D", 20), OpAdd("E", 30)};
  iq.children = {iqp};
  TxnSpec txn_i =
      TxnBuilder(p).Add("A", 10).ChildPlan(iq).Child(s, {OpAdd("F", 50)})
          .Build();
  TxnSpec txn_j =
      TxnBuilder(q).Add("D", 200).Child(p, {OpAdd("A", 100)}).Build();

  TxnResult rx, ry;
  r.cluster.Submit(p, txn_i, [](const TxnResult&) {});
  r.cluster.Submit(p, TxnBuilder(p).Get("A").Build(),
                   [&](const TxnResult& res) { rx = res; });

  r.Snapshot("start state (all data in version 0)");

  std::printf("\nt01-04 [p] update tx i arrives; updates A version 1;"
              " issues iq -> q, is -> s\n");
  r.Deliver(client, p, kSubmit);
  std::printf("        R1pp=%lld R1pq=%lld R1ps=%lld, A(1)=%lld\n",
              (long long)r.R(p, 1, p), (long long)r.R(p, 1, q),
              (long long)r.R(p, 1, s),
              (long long)r.cluster.node(p).store().Read("A", 1)->num);

  std::printf("t05-06 [p] read tx x arrives; reads A version 0\n");
  r.Deliver(client, p, kSubmit);
  r.Deliver(p, client, kResult);
  std::printf("        x saw A=%lld at version %u\n",
              (long long)rx.reads.at("A").num, rx.version);

  std::printf("t07    [s] is arrives; updates F version 1; C1ps=%lld->",
              (long long)r.C(s, 1, p));
  r.Deliver(p, s, kSubtxn);
  std::printf("%lld\n", (long long)r.C(s, 1, p));

  std::printf("t08    [coord] version advancement begins (notices sent)\n");
  bool advanced = false;
  r.cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });

  std::printf("t09-10 [q] advancement notice arrives; q: vu 1 -> 2\n");
  r.Deliver(coord, q, kStartAdv);

  std::printf("t10-12 [q] update tx j arrives; gets version 2; updates D"
              " version 2; issues jp -> p\n");
  r.cluster.Submit(q, txn_j, [](const TxnResult&) {});
  r.Deliver(client, q, kSubmit);
  std::printf("        R2qq=%lld R2qp=%lld, D(2)=%lld\n",
              (long long)r.R(q, 2, q), (long long)r.R(q, 2, p),
              (long long)r.cluster.node(q).store().Read("D", 2)->num);

  std::printf("t13-16 [q] iq (version 1) arrives after the switch:"
              " D updated in versions 1 AND 2; E only in version 1\n");
  r.Deliver(p, q, kSubtxn);
  std::printf("        D(1)=%lld D(2)=%lld E(1)=%lld R1qp=%lld"
              " dual_writes=%lld\n",
              (long long)r.cluster.node(q).store().Read("D", 1)->num,
              (long long)r.cluster.node(q).store().Read("D", 2)->num,
              (long long)r.cluster.node(q).store().Read("E", 1)->num,
              (long long)r.R(q, 1, p),
              (long long)r.metrics.dual_version_writes.load());

  std::printf("t17-18 [q] read tx y arrives; still reads D version 0\n");
  r.cluster.Submit(q, TxnBuilder(q).Get("D").Build(),
                   [&](const TxnResult& res) { ry = res; });
  r.Deliver(client, q, kSubmit);
  r.Deliver(q, client, kResult);
  std::printf("        y saw D=%lld at version %u\n",
              (long long)ry.reads.at("D").num, ry.version);
  r.Snapshot("after time 12/18 (j and iq executed)");

  std::printf("\nt19-20 [p] jp (version 2) arrives BEFORE p was notified:"
              " p infers the advancement (vu 1 -> 2); jp updates A v2\n");
  r.Deliver(q, p, kSubtxn);
  std::printf("        p.vu=%u A(2)=%lld C2qp=%lld\n", r.cluster.node(p).vu(),
              (long long)r.cluster.node(p).store().Read("A", 2)->num,
              (long long)r.C(p, 2, q));
  std::printf("t..    [p,s] explicit advancement notices arrive"
              " (p already advanced)\n");
  r.Deliver(coord, p, kStartAdv);
  r.Deliver(coord, s, kStartAdv);

  std::printf("t19-20 [p] straggler iqp (version 1) arrives; B has no v2"
              " copy: updates version 1 only; C1qp=%lld->",
              (long long)r.C(p, 1, q));
  r.Deliver(q, p, kSubtxn);
  std::printf("%lld, B(1)=%lld\n", (long long)r.C(p, 1, q),
              (long long)r.cluster.node(p).store().Read("B", 1)->num);

  std::printf("t21-22 [q] jp completion notice arrives; j complete;"
              " C2qq=%lld->", (long long)r.C(q, 2, q));
  r.Deliver(p, q, kNotice);
  std::printf("%lld\n", (long long)r.C(q, 2, q));
  r.Deliver(q, client, kResult);

  std::printf("t25-26 [q] iqp completion notice arrives; iq complete;"
              " C1pq=%lld->", (long long)r.C(q, 1, p));
  r.Deliver(p, q, kNotice);
  std::printf("%lld\n", (long long)r.C(q, 1, p));

  std::printf("t23-27 [p] notices from s and q arrive; i complete;"
              " C1pp=%lld->", (long long)r.C(p, 1, p));
  r.Deliver(s, p, kNotice);
  r.Deliver(q, p, kNotice);
  std::printf("%lld\n", (long long)r.C(p, 1, p));
  r.Deliver(p, client, kResult);

  r.Snapshot("after time 28 (all counters match; up to 3 versions of A, D)");

  std::printf("\n\"Beyond this point all version data values are stable, all"
              " version counters match up\":\n");
  std::printf("  R1pp=%lld=C1pp=%lld  R1pq=%lld=C1pq=%lld  R1ps=%lld=C1ps=%lld"
              "  R1qp=%lld=C1qp=%lld\n",
              (long long)r.R(p, 1, p), (long long)r.C(p, 1, p),
              (long long)r.R(p, 1, q), (long long)r.C(q, 1, p),
              (long long)r.R(p, 1, s), (long long)r.C(s, 1, p),
              (long long)r.R(q, 1, p), (long long)r.C(p, 1, q));
  std::printf("  R2qq=%lld=C2qq=%lld  R2qp=%lld=C2qp=%lld\n",
              (long long)r.R(q, 2, q), (long long)r.C(q, 2, q),
              (long long)r.R(q, 2, p), (long long)r.C(p, 2, q));

  std::printf("\ncoordinator detects stability by the asynchronous two-wave"
              " counter read, switches the read version, garbage-collects:\n");
  while (!advanced) {
    r.net.DeliverAll();
    r.net.loop().Run();
  }
  std::printf("  advancement complete: vr=%u vu=%u on all sites\n",
              r.cluster.node(0).vr(), r.cluster.node(0).vu());
  r.Snapshot("after phase 4 garbage collection (version 0 gone)");

  Status invariants = r.cluster.CheckInvariants();
  std::printf("\ninvariants (<=3 copies, vr<vu<=vr+2, property 2b): %s\n",
              invariants.ToString().c_str());
  return invariants.ok() ? 0 : 1;
}
