// Experiment B-NC (Section 5): non-commuting transactions are "gracefully
// handled" - they serialize via NC locks and two-phase commit while the
// commuting traffic keeps its no-wait fast path. We sweep the fraction of
// non-commuting transactions from 0% to 100% and compare against
// GlobalSync (which treats EVERYTHING as non-commuting).
//
// Expected shape: at 0% NC3V matches pure 3V (no lock waits at all); cost
// grows with the NC fraction; at 100% it approaches the GlobalSync
// reference row - the paper's claim that you pay only for what does not
// commute.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader(
      "B-NC: cost of non-commuting fraction (NC3V, 8 nodes, open loop)");
  std::printf("%-14s %10s %10s %10s %12s %10s %10s\n", "nc-fraction",
              "txn/s", "upd-p50", "upd-p99", "lock-waits", "aborted",
              "anomalies");

  for (double fraction : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.nc_fraction = fraction;
    config.num_nodes = 8;
    config.total_txns = 3000;
    config.mean_interarrival = 150;
    config.advance_period = 25'000;
    config.num_entities = 400;
    config.seed = 31;
    RunOutcome out = RunExperiment(config);
    std::printf("%13.0f%% %10.0f %8lldus %8lldus %12lld %10zu %10zu\n",
                fraction * 100, out.throughput,
                static_cast<long long>(out.upd_p50),
                static_cast<long long>(out.upd_p99),
                static_cast<long long>(out.lock_waits), out.aborted,
                out.anomalies);
  }

  {
    RunConfig config;
    config.kind = SystemKind::kGlobalSync;
    config.num_nodes = 8;
    config.total_txns = 3000;
    config.mean_interarrival = 150;
    config.num_entities = 400;
    config.seed = 31;
    RunOutcome out = RunExperiment(config);
    std::printf("%-14s %10.0f %8lldus %8lldus %12lld %10zu %10zu\n",
                "GlobalSync", out.throughput,
                static_cast<long long>(out.upd_p50),
                static_cast<long long>(out.upd_p99),
                static_cast<long long>(out.lock_waits), out.aborted,
                out.anomalies);
  }
  std::printf(
      "shape: the 0%% row pays nothing (zero lock waits); cost rises with\n"
      "the NC share and the 100%% row lands near the GlobalSync reference.\n");
  return 0;
}
