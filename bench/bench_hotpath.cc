// Hot-path microbenchmarks with machine-readable output: the per-PR perf
// trajectory for the versioned-store read path, the wire codec, and the
// mailbox drain. Unlike the google-benchmark targets (bench_micro), this
// harness emits BENCH_hotpath.json (schema checked by
// tools/check_bench_json.py) so CI can archive per-run numbers and future
// PRs can diff against the committed baseline
// (bench/BENCH_hotpath.baseline.json = pre-optimization seed code,
// bench/BENCH_hotpath.json = current tree).
//
// Usage: bench_hotpath [--quick] [--out FILE]
//   --quick   CI smoke mode: ~20x fewer iterations, same schema.
//   --out     output path (default BENCH_hotpath.json; "-" = stdout).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "threev/common/queue.h"
#include "threev/common/random.h"
#include "threev/metrics/histogram.h"
#include "threev/net/wire.h"
#include "threev/storage/versioned_store.h"
#include "threev/trace/trace.h"

namespace threev {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

// Latency is sampled per batch of kBatch operations (cheap enough to not
// perturb the loop) and recorded as ns/op into a shared Histogram.
constexpr int kBatch = 64;

// Runs `body(thread_id)` on `threads` threads, where each body performs
// `batches` batches of kBatch operations and records per-op latency into
// `lat`. Returns the filled result row.
HotpathResult RunThreads(const std::string& name, size_t threads,
                         int64_t batches, Histogram& lat,
                         const std::function<void(size_t)>& body) {
  HotpathResult r;
  r.name = name;
  r.threads = threads;
  r.ops = static_cast<int64_t>(threads) * batches * kBatch;
  Clock::time_point start = Clock::now();
  if (threads == 1) {
    body(0);
  } else {
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) workers.emplace_back(body, t);
    for (auto& w : workers) w.join();
  }
  r.elapsed_ns = ElapsedNs(start);
  r.p50_ns = lat.Percentile(50);
  r.p99_ns = lat.Percentile(99);
  return r;
}

// --- store-read ------------------------------------------------------------

// Pre-seeds `nkeys` single-version keys with small commuting-summary values
// (the paper's steady state between advancements: exactly one version).
void SeedStore(VersionedStore& store, size_t nkeys,
               std::vector<std::string>& keys) {
  for (size_t i = 0; i < nkeys; ++i) {
    keys.push_back("acct/" + std::to_string(i) + "@0");
    Value v;
    v.num = static_cast<int64_t>(i);
    store.Seed(keys.back(), std::move(v), /*version=*/1);
  }
}

// `threads` readers hammering a small hot key set: the frozen-vr read path
// under contention. Before this PR every read serialized on its shard
// mutex; the optimized path must take no exclusive lock.
HotpathResult BenchStoreReadHot(size_t threads, int64_t batches) {
  VersionedStore store;
  std::vector<std::string> keys;
  SeedStore(store, 64, keys);
  Histogram lat;
  auto body = [&](size_t tid) {
    Rng rng(1000 + tid);
    std::vector<size_t> order(1024);
    for (auto& i : order) i = rng.Uniform(keys.size());
    size_t pos = 0;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      int64_t sink = 0;
      for (int i = 0; i < kBatch; ++i) {
        Result<Value> v = store.Read(keys[order[pos]], 1);
        if (v.ok()) sink += v->num;
        pos = (pos + 1) & 1023;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
      if (sink == -1) std::abort();  // keep the reads observable
    }
  };
  return RunThreads("store_read_hot", threads, batches, lat, body);
}

// Same hot key set through ReadInto: the allocation-free entry point the
// protocol layer (node.cc kGet) actually uses. Reuses one Value across
// calls, so a fast-slot hit does no heap work at all - this row is the
// honest end-to-end hot-path number; store_read_hot keeps the Read API
// comparable with the committed pre-optimization baseline.
HotpathResult BenchStoreReadIntoHot(size_t threads, int64_t batches) {
  VersionedStore store;
  std::vector<std::string> keys;
  SeedStore(store, 64, keys);
  Histogram lat;
  auto body = [&](size_t tid) {
    Rng rng(3000 + tid);
    std::vector<size_t> order(1024);
    for (auto& i : order) i = rng.Uniform(keys.size());
    size_t pos = 0;
    Value v;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      int64_t sink = 0;
      for (int i = 0; i < kBatch; ++i) {
        if (store.ReadInto(keys[order[pos]], 1, &v).ok()) sink += v.num;
        pos = (pos + 1) & 1023;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
      if (sink == -1) std::abort();
    }
  };
  return RunThreads("store_read_into_hot", threads, batches, lat, body);
}

// store_read_into_hot with a disabled Tracer consulted per op - the exact
// `tracer != nullptr && tracer->enabled()` idiom every instrumentation site
// in node.cc compiles to. The delta against store_read_into_hot is the
// whole cost of shipping tracing support (one relaxed load + branch);
// Main() asserts in-process that it stays within noise, so a regression
// here (e.g. an accidentally unconditional Record()) fails the run rather
// than silently taxing the hot path.
HotpathResult BenchStoreReadIntoTracedOff(size_t threads, int64_t batches) {
  VersionedStore store;
  std::vector<std::string> keys;
  SeedStore(store, 64, keys);
  Histogram lat;
  Tracer gate;  // never enabled: the disabled branch is the measurement
  Tracer* tracer = &gate;
  auto body = [&](size_t tid) {
    // Same seeds as store_read_into_hot: identical access pattern, so the
    // two rows differ only by the gate check.
    Rng rng(3000 + tid);
    std::vector<size_t> order(1024);
    for (auto& i : order) i = rng.Uniform(keys.size());
    size_t pos = 0;
    Value v;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      int64_t sink = 0;
      for (int i = 0; i < kBatch; ++i) {
        if (store.ReadInto(keys[order[pos]], 1, &v).ok()) sink += v.num;
        if (tracer != nullptr && tracer->enabled()) {
          tracer->Instant(sink, 0, TraceOp::kTask, TraceContext{}, 0);
        }
        pos = (pos + 1) & 1023;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
      if (sink == -1) std::abort();
    }
  };
  return RunThreads("store_read_into_traced_off", threads, batches, lat,
                    body);
}

// Single-threaded uniform reads over a larger key set: the per-read cost
// floor (hashing, lookup, value copy-out) without contention.
HotpathResult BenchStoreReadSpread(int64_t batches) {
  VersionedStore store;
  std::vector<std::string> keys;
  SeedStore(store, 512, keys);
  Histogram lat;
  auto body = [&](size_t) {
    Rng rng(7);
    std::vector<size_t> order(4096);
    for (auto& i : order) i = rng.Uniform(keys.size());
    size_t pos = 0;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      int64_t sink = 0;
      for (int i = 0; i < kBatch; ++i) {
        Result<Value> v = store.Read(keys[order[pos]], 1);
        if (v.ok()) sink += v->num;
        pos = (pos + 1) & 4095;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
      if (sink == -1) std::abort();
    }
  };
  return RunThreads("store_read_spread", 1, batches, lat, body);
}

// Readers scanning while one writer applies commuting updates: mixed
// traffic across the reader/writer split.
HotpathResult BenchStoreReadWhileWrite(size_t threads, int64_t batches) {
  VersionedStore store;
  std::vector<std::string> keys;
  SeedStore(store, 64, keys);
  Histogram lat;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string& key = keys[rng.Uniform(keys.size())];
      Operation op = OpAdd(key, 1);
      (void)store.Update(key, 1, op);
    }
  });
  auto body = [&](size_t tid) {
    Rng rng(2000 + tid);
    std::vector<size_t> order(1024);
    for (auto& i : order) i = rng.Uniform(keys.size());
    size_t pos = 0;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      int64_t sink = 0;
      for (int i = 0; i < kBatch; ++i) {
        Result<Value> v = store.Read(keys[order[pos]], 1);
        if (v.ok()) sink += v->num;
        pos = (pos + 1) & 1023;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
      if (sink == -1) std::abort();
    }
  };
  HotpathResult r =
      RunThreads("store_read_while_write", threads, batches, lat, body);
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  return r;
}

// --- wire codec ------------------------------------------------------------

// A representative protocol message: a completion notice carrying a plan
// and read results, roughly the median frame of a telecom workload run.
Message MakeWireMessage() {
  Message m;
  m.type = MsgType::kCompletionNotice;
  m.from = 3;
  m.txn = 123456789;
  m.subtxn = 42;
  m.parent_subtxn = 41;
  m.version = 7;
  m.seq = 99;
  m.flag = true;
  m.origin = 1;
  m.plan.node = 3;
  for (int i = 0; i < 4; ++i) {
    m.plan.ops.push_back(OpAdd("bal/entity" + std::to_string(i) + "@3", i));
  }
  m.spawned = {43, 44};
  for (int i = 0; i < 4; ++i) {
    Value v;
    v.num = 1000 + i;
    v.ids = {1, 2, 3};
    m.reads.emplace_back("bal/entity" + std::to_string(i) + "@3",
                         std::move(v));
  }
  m.counters_r = {{0, 5}, {1, 7}};
  m.counters_c = {{0, 2}};
  m.status_msg = "ok";
  return m;
}

HotpathResult BenchWireEncode(int64_t batches) {
  Message m = MakeWireMessage();
  size_t frame = EncodeMessage(m).size();
  Histogram lat;
  auto body = [&](size_t) {
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      for (int i = 0; i < kBatch; ++i) {
        std::vector<uint8_t> buf = EncodeMessage(m);
        if (buf.size() != frame) std::abort();
      }
      lat.Record(ElapsedNs(t0) / kBatch);
    }
  };
  HotpathResult r = RunThreads("wire_encode", 1, batches, lat, body);
  r.messages = r.ops;
  r.bytes = r.ops * static_cast<int64_t>(frame);
  return r;
}

// Buffer-reusing encode, as TcpNet's frame path does it: after the first
// iteration the vector has grown to the frame size and encoding is pure
// stores - the steady-state send path allocates nothing.
HotpathResult BenchWireEncodePooled(int64_t batches) {
  Message m = MakeWireMessage();
  size_t frame = EncodeMessage(m).size();
  Histogram lat;
  auto body = [&](size_t) {
    std::vector<uint8_t> buf;
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      for (int i = 0; i < kBatch; ++i) {
        EncodeMessageInto(m, &buf);
        if (buf.size() != frame) std::abort();
      }
      lat.Record(ElapsedNs(t0) / kBatch);
    }
  };
  HotpathResult r = RunThreads("wire_encode_pooled", 1, batches, lat, body);
  r.messages = r.ops;
  r.bytes = r.ops * static_cast<int64_t>(frame);
  return r;
}

HotpathResult BenchWireDecode(int64_t batches) {
  Message m = MakeWireMessage();
  std::vector<uint8_t> buf = EncodeMessage(m);
  Histogram lat;
  auto body = [&](size_t) {
    for (int64_t b = 0; b < batches; ++b) {
      Clock::time_point t0 = Clock::now();
      for (int i = 0; i < kBatch; ++i) {
        Result<Message> decoded = DecodeMessage(buf.data(), buf.size());
        if (!decoded.ok()) std::abort();
      }
      lat.Record(ElapsedNs(t0) / kBatch);
    }
  };
  HotpathResult r = RunThreads("wire_decode", 1, batches, lat, body);
  r.messages = r.ops;
  r.bytes = r.ops * static_cast<int64_t>(buf.size());
  return r;
}

// --- mailbox drain ----------------------------------------------------------

// `producers` threads pushing, one consumer draining: the ThreadNet mailbox
// / TcpNet inbound-queue shape. Latency is sampled on the consumer.
HotpathResult BenchQueueDrain(size_t producers, int64_t batches) {
  BlockingQueue<int64_t> queue;
  const int64_t total = batches * kBatch;
  Histogram lat;
  std::vector<std::thread> prod;
  for (size_t p = 0; p < producers; ++p) {
    prod.emplace_back([&, p] {
      int64_t n = total / static_cast<int64_t>(producers) +
                  (p == 0 ? total % static_cast<int64_t>(producers) : 0);
      for (int64_t i = 0; i < n; ++i) queue.Push(i);
    });
  }
  auto body = [&](size_t) {
    int64_t got = 0;
    while (got < total) {
      Clock::time_point t0 = Clock::now();
      for (int i = 0; i < kBatch && got < total; ++i) {
        if (!queue.Pop()) return;
        ++got;
      }
      lat.Record(ElapsedNs(t0) / kBatch);
    }
  };
  HotpathResult r = RunThreads("queue_drain_pop", 1, batches, lat, body);
  r.threads = producers + 1;
  for (auto& t : prod) t.join();
  queue.Close();
  return r;
}

// Same shape, consumer draining via PopAll: what the ThreadNet worker and
// TcpNet dispatcher now do. One wakeup amortizes over the queued burst.
HotpathResult BenchQueueDrainPopAll(size_t producers, int64_t batches) {
  BlockingQueue<int64_t> queue;
  const int64_t total = batches * kBatch;
  Histogram lat;
  std::vector<std::thread> prod;
  for (size_t p = 0; p < producers; ++p) {
    prod.emplace_back([&, p] {
      int64_t n = total / static_cast<int64_t>(producers) +
                  (p == 0 ? total % static_cast<int64_t>(producers) : 0);
      for (int64_t i = 0; i < n; ++i) queue.Push(i);
    });
  }
  auto body = [&](size_t) {
    int64_t got = 0;
    while (got < total) {
      Clock::time_point t0 = Clock::now();
      int64_t drained = 0;
      while (drained < kBatch && got < total) {
        std::deque<int64_t> batch = queue.PopAll();
        if (batch.empty()) return;
        drained += static_cast<int64_t>(batch.size());
        got += static_cast<int64_t>(batch.size());
      }
      lat.Record(ElapsedNs(t0) / (drained > 0 ? drained : 1));
    }
  };
  HotpathResult r = RunThreads("queue_drain_popall", 1, batches, lat, body);
  r.threads = producers + 1;
  for (auto& t : prod) t.join();
  queue.Close();
  return r;
}

void PrintRow(const HotpathResult& r) {
  std::printf("%-24s %2zu thr %12.0f ops/s   p50 %6lldns  p99 %6lldns\n",
              r.name.c_str(), r.threads, r.throughput_ops(),
              static_cast<long long>(r.p50_ns),
              static_cast<long long>(r.p99_ns));
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_hotpath.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE] "
                   "[--trace-out FILE]\n", argv[0]);
      return 2;
    }
  }

  const int64_t scale = quick ? 2'000 : 40'000;
  const size_t hw = std::thread::hardware_concurrency();
  const size_t read_threads = hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);

  // With --trace-out each row runs inside a kTask span (args.arg = row
  // index), so the harness itself demos the flight recorder end-to-end and
  // CI archives a schema-checked trace alongside the bench JSON.
  Tracer tracer;
  tracer.set_enabled(!trace_out.empty());
  if (tracer.enabled()) tracer.SetTrackName(0, "bench_hotpath");

  PrintHeader("hot-path microbenchmarks (store read / wire codec / queue)");
  std::vector<HotpathResult> results;
  auto run = [&](const std::function<HotpathResult()>& fn) {
    TraceContext span;
    if (tracer.enabled()) {
      span = tracer.BeginSpan(NowMicros(), 0, TraceOp::kTask, TraceContext{},
                              static_cast<int64_t>(results.size()));
    }
    results.push_back(fn());
    if (tracer.enabled()) {
      tracer.EndSpan(NowMicros(), 0, TraceOp::kTask, span);
    }
    PrintRow(results.back());
  };
  run([&] { return BenchStoreReadHot(read_threads, scale); });
  run([&] { return BenchStoreReadIntoHot(read_threads, scale); });
  run([&] { return BenchStoreReadIntoTracedOff(read_threads, scale); });
  run([&] { return BenchStoreReadSpread(scale); });
  run([&] { return BenchStoreReadWhileWrite(read_threads, scale / 2); });
  run([&] { return BenchWireEncode(scale / 4); });
  run([&] { return BenchWireEncodePooled(scale / 4); });
  run([&] { return BenchWireDecode(scale / 4); });
  run([&] { return BenchQueueDrain(3, scale); });
  run([&] { return BenchQueueDrainPopAll(3, scale); });

  if (!WriteHotpathJson(out_path, quick, results)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  if (out_path != "-") std::printf("wrote %s\n", out_path.c_str());
  if (!trace_out.empty()) {
    if (!tracer.WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }

  // Disabled-tracing gate: the instrumented row may not fall outside noise
  // of the plain one. The enabled() check is one relaxed load + branch
  // (~1ns against a ~15ns read), so 2x throughput headroom is far beyond
  // shared-runner noise yet still catches an accidentally unconditional
  // Record() (ticket fetch_add + 8 atomic stores per op).
  const HotpathResult* plain = nullptr;
  const HotpathResult* gated = nullptr;
  for (const auto& r : results) {
    if (r.name == "store_read_into_hot") plain = &r;
    if (r.name == "store_read_into_traced_off") gated = &r;
  }
  if (plain != nullptr && gated != nullptr &&
      gated->throughput_ops() * 2.0 < plain->throughput_ops()) {
    std::fprintf(stderr,
                 "tracing overhead out of noise: store_read_into_traced_off "
                 "%.0f ops/s vs store_read_into_hot %.0f ops/s\n",
                 gated->throughput_ops(), plain->throughput_ops());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace threev

int main(int argc, char** argv) { return threev::bench::Main(argc, argv); }
