// Experiment B-3COPIES (Section 4.4, properties 1a/2a): at most two
// versions of any item exist while no advancement runs and at most three
// while one does - verified empirically under the most hostile cadence we
// can drive, together with the cost of the stragglers that make the third
// copy necessary.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader(
      "B-3COPIES: max simultaneous versions & dual-writes vs advancement "
      "cadence (3V, 8 nodes)");
  std::printf("%-10s %12s %12s %14s %12s %10s\n", "period", "max-copies",
              "dual-writes", "dual/update", "#advance", "anomalies");

  for (Micros period : {Micros{50'000}, Micros{10'000}, Micros{5'000},
                        Micros{2'000}, Micros{1'000}}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.num_nodes = 8;
    config.total_txns = 5000;
    config.mean_interarrival = 100;
    config.read_fraction = 0.2;
    config.advance_period = period;
    config.zipf_theta = 1.2;  // hot keys maximize cross-version contention
    config.num_entities = 30;
    config.fanout = 3;
    // Slow, highly variable links: transaction trees live for several
    // milliseconds and regularly straddle a version switch.
    config.net_min_delay = 500;
    config.net_mean_extra_delay = 3'000;
    config.seed = 5;
    RunOutcome out = RunExperiment(config);
    double updates =
        static_cast<double>(out.committed) * (1.0 - 0.2) * 2.0;  // ops approx
    std::printf("%6lldms %12zu %12lld %13.4f%% %12lld %10zu\n",
                static_cast<long long>(period / 1000), out.max_versions,
                static_cast<long long>(out.dual_writes),
                updates > 0 ? 100.0 * static_cast<double>(out.dual_writes) /
                                  updates
                            : 0.0,
                static_cast<long long>(out.advancements), out.anomalies);
  }
  std::printf(
      "shape: max-copies never exceeds 3 (the paper's bound) even at 1ms\n"
      "cadence; dual-writes - the only overhead of the third copy - stay a\n"
      "small percentage and only occur while a switch is in flight.\n");
  return 0;
}
