// Experiment B-QUIESCE (Sections 2.2 / 4.3): the asynchronous two-wave
// counter read detects termination of the old version without ever
// touching user transactions. We measure how long a full advancement
// (phases 1-4) takes - and how many read rounds it needs - as load and
// the coordinator's polling interval vary.
//
// Expected shape: advancement completion time ~= in-flight transaction
// drain time + a couple of poll intervals; it grows mildly with load
// (more stragglers to drain) and never blocks user traffic (latency
// columns stay flat; cross-checked by B-ADV).
#include <cstdio>

#include "bench_util.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader("B-QUIESCE: advancement latency vs load (3V, 8 nodes)");
  std::printf("%-14s %12s %12s %10s %10s %10s\n", "interarrival",
              "adv-p50", "rounds/adv", "#adv", "upd-p50", "upd-p99");
  for (Micros interarrival : {Micros{1000}, Micros{500}, Micros{200},
                              Micros{100}, Micros{50}}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.num_nodes = 8;
    config.total_txns = 3000;
    config.mean_interarrival = interarrival;
    config.advance_period = 20'000;
    config.seed = 11;
    RunOutcome out = RunExperiment(config);
    double rounds = out.advancements > 0
                        ? static_cast<double>(out.quiescence_rounds) /
                              static_cast<double>(out.advancements)
                        : 0;
    std::printf("%12lldus %10lldus %12.1f %10lld %8lldus %8lldus\n",
                static_cast<long long>(interarrival),
                static_cast<long long>(out.adv_p50), rounds,
                static_cast<long long>(out.advancements),
                static_cast<long long>(out.upd_p50),
                static_cast<long long>(out.upd_p99));
  }

  PrintHeader("B-QUIESCE: advancement latency vs poll interval");
  std::printf("%-14s %12s %12s %10s\n", "poll", "adv-p50", "rounds/adv",
              "#adv");
  for (Micros poll : {Micros{500}, Micros{2'000}, Micros{10'000}}) {
    RunConfig config;
    config.kind = SystemKind::kThreeV;
    config.num_nodes = 8;
    config.total_txns = 2000;
    config.mean_interarrival = 150;
    config.advance_period = 20'000;
    config.seed = 12;
    config.coordinator_poll = poll;
    RunOutcome out = RunExperiment(config);
    double rounds = out.advancements > 0
                        ? static_cast<double>(out.quiescence_rounds) /
                              static_cast<double>(out.advancements)
                        : 0;
    std::printf("%12lldus %10lldus %12.1f %10lld\n",
                static_cast<long long>(poll),
                static_cast<long long>(out.adv_p50), rounds,
                static_cast<long long>(out.advancements));
  }
  std::printf(
      "shape: detection cost is a handful of two-wave rounds; a finer poll\n"
      "interval shaves advancement latency at the price of more counter\n"
      "reads - user latency is untouched either way.\n");

  PrintHeader(
      "B-QUIESCE: advancement message cost vs cluster size (idle cluster, "
      "one advancement)");
  std::printf("%-8s %12s %12s %16s\n", "nodes", "messages", "bytes",
              "bytes/node");
  for (size_t nodes : {2, 4, 8, 16, 32, 64}) {
    Metrics metrics;
    SimNet net(SimNetOptions{.seed = 2}, &metrics);
    ClusterOptions options;
    options.num_nodes = nodes;
    Cluster cluster(options, &net, &metrics);
    // One write so version 1 is non-trivially populated, then isolate a
    // single explicit advancement's traffic.
    cluster.Submit(0, TxnBuilder(0).Add("x", 1).Build(),
                   [](const TxnResult&) {});
    net.loop().Run();
    int64_t msg0 = metrics.messages_sent.load();
    int64_t bytes0 = metrics.bytes_sent.load();
    bool advanced = false;
    cluster.coordinator().StartAdvancement([&](Status) { advanced = true; });
    net.loop().RunUntil([&] { return advanced; });
    int64_t messages = metrics.messages_sent.load() - msg0;
    int64_t bytes = metrics.bytes_sent.load() - bytes0;
    std::printf("%-8zu %12lld %12lld %16.0f\n", nodes,
                static_cast<long long>(messages),
                static_cast<long long>(bytes),
                static_cast<double>(bytes) / static_cast<double>(nodes));
  }
  std::printf(
      "shape: per-advancement traffic is O(nodes) messages per phase with\n"
      "O(nodes)-sized counter replies (O(nodes^2) bytes total) - all of it\n"
      "off the user transaction path.\n");
  return 0;
}
