// Experiment B-DUR: cost of durability. (a) WAL append throughput under
// each fsync policy - the per-update logging tax a node pays on the fast
// path; (b) recovery time as a function of log size - what a restart costs
// before the node can rejoin the protocol.
//
// Expected shape: kNone appends are memcpy+fflush cheap (micros/record),
// kEveryRecord is dominated by fsync latency (orders of magnitude slower),
// kBatch sits at kNone for unforced records. Recovery replays at
// sequential-read speed, so time grows linearly with log bytes; a
// checkpoint cuts it to the post-checkpoint tail.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "threev/core/counters.h"
#include "threev/durability/recovery.h"
#include "threev/durability/wal.h"
#include "threev/storage/versioned_store.h"

using namespace threev;
using namespace threev::bench;

namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("threev_bench_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

WalRecord SampleRecord(int i) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.version = 1;
  rec.txn = static_cast<TxnId>(i);
  WalImage img;
  img.key = "acct" + std::to_string(i % 512) + "@3";
  img.version = 1;
  img.value.num = i;
  rec.images.push_back(std::move(img));
  return rec;
}

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  PrintHeader("B-DUR: WAL append throughput per fsync policy");
  std::printf("%-14s %10s %12s %12s %10s\n", "policy", "records",
              "us/record", "MB/s", "fsyncs");
  const struct {
    FsyncPolicy policy;
    const char* name;
    int records;
  } kPolicies[] = {
      {FsyncPolicy::kNone, "none", 20000},
      {FsyncPolicy::kBatch, "batch", 20000},
      {FsyncPolicy::kEveryRecord, "every-record", 500},
  };
  for (const auto& p : kPolicies) {
    Metrics metrics;
    WalOptions opts;
    opts.dir = ScratchDir(std::string("wal_") + p.name);
    opts.fsync = p.policy;
    auto wal = WriteAheadLog::Open(opts, &metrics);
    if (!wal.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   wal.status().ToString().c_str());
      return 1;
    }
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < p.records; ++i) {
      (void)(*wal)->Append(SampleRecord(i));
    }
    double us = MicrosSince(t0);
    double mbps = static_cast<double>((*wal)->bytes_appended()) / us;
    std::printf("%-14s %10d %12.2f %12.1f %10lld\n", p.name, p.records,
                us / p.records, mbps,
                static_cast<long long>(metrics.wal_fsyncs.load()));
    fs::remove_all(opts.dir);
  }

  PrintHeader("B-DUR: recovery time vs log size");
  std::printf("%10s %12s %12s %12s\n", "records", "log-KiB", "recover-ms",
              "MB/s");
  for (int records : {1000, 10000, 50000}) {
    const std::string dir = ScratchDir("recovery");
    {
      WalOptions opts;
      opts.dir = dir;
      auto wal = WriteAheadLog::Open(opts);
      for (int i = 0; i < records; ++i) (void)(*wal)->Append(SampleRecord(i));
    }
    VersionedStore store;
    CounterTable counters(8);
    auto t0 = std::chrono::steady_clock::now();
    auto state = RecoverNodeState(dir, &store, &counters);
    double us = MicrosSince(t0);
    if (!state.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   state.status().ToString().c_str());
      return 1;
    }
    std::printf("%10d %12.1f %12.2f %12.1f\n", records,
                static_cast<double>(state->wal_bytes) / 1024.0, us / 1000.0,
                static_cast<double>(state->wal_bytes) / us);
    fs::remove_all(dir);
  }
  return 0;
}
