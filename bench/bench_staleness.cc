// Experiment B-STALE (Section 1 "Desired Solution"): the user trades read
// currency for update performance by choosing when to advance versions.
// Compare how stale reads get - and whether they stay CORRECT - under 3V
// and under the Manual Versioning strawman at several cadences and safety
// delays.
//
// Expected shape: 3V staleness ~= period/2 + phase-out, with zero
// anomalies at every cadence. Manual versioning needs its safety delay
// added on top AND still corrupts reads when the delay is not generous
// enough for in-flight transactions.
#include <cstdio>

#include "bench_util.h"

using namespace threev;
using namespace threev::bench;

int main() {
  PrintHeader("B-STALE: read staleness & correctness vs cadence (8 nodes)");
  std::printf("%-18s %-10s %-10s %12s %12s %10s\n", "strategy", "period",
              "delay", "stale-p50", "stale-p99", "anomalies");

  for (Micros period : {Micros{100'000}, Micros{50'000}, Micros{20'000},
                        Micros{10'000}}) {
    {
      RunConfig config;
      config.kind = SystemKind::kThreeV;
      config.num_nodes = 8;
      config.total_txns = 4000;
      config.mean_interarrival = 120;
      config.read_fraction = 0.3;
      config.advance_period = period;
      config.seed = 9;
      RunOutcome out = RunExperiment(config);
      std::printf("%-18s %6lldms %10s %10lldus %10lldus %10zu\n",
                  out.name.c_str(), static_cast<long long>(period / 1000),
                  "-", static_cast<long long>(out.stale_p50),
                  static_cast<long long>(out.stale_p99), out.anomalies);
    }
    for (Micros delay : {Micros{2'000}, Micros{20'000}}) {
      RunConfig config;
      config.kind = SystemKind::kManual;
      config.num_nodes = 8;
      config.total_txns = 4000;
      config.mean_interarrival = 120;
      config.read_fraction = 0.3;
      config.advance_period = period;
      config.manual_safety_delay = delay;
      config.seed = 9;
      RunOutcome out = RunExperiment(config);
      std::printf("%-18s %6lldms %8lldms %10lldus %10lldus %10zu\n",
                  out.name.c_str(), static_cast<long long>(period / 1000),
                  static_cast<long long>(delay / 1000),
                  static_cast<long long>(out.stale_p50),
                  static_cast<long long>(out.stale_p99), out.anomalies);
    }
    std::printf("\n");
  }
  std::printf(
      "shape: at equal cadence 3V is fresher (no safety delay) and always\n"
      "clean; manual versioning pays delay in staleness and still leaks\n"
      "anomalies when the delay is small relative to txn latency.\n");
  return 0;
}
