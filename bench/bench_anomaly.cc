// Experiment E-F1 (Figure 1 / Section 1): the hospital scenario. A visit
// transaction T1 = {w11(x1), w12(x2)} charges radiology (node 0) and
// pediatrics (node 1); a concurrent inquiry T2 = {r21(x1), r22(x2)} asks
// for the balance. We force the exact interleaving the paper worries
// about - the inquiry lands between the two writes - under each strategy,
// then measure anomaly rates under sustained load.
#include <cstdio>

#include "bench_util.h"
#include "threev/net/sim_net.h"
#include "threev/workload/scenarios.h"

using namespace threev;
using namespace threev::bench;

namespace {

constexpr int kSubmit = static_cast<int>(MsgType::kClientSubmit);

// Returns what the interleaved inquiry observed: (radiology, pediatrics).
std::pair<int64_t, int64_t> ForcedInterleaving(SystemKind kind) {
  Metrics metrics;
  SimNet net(SimNetOptions{.seed = 3, .manual = true}, &metrics);
  SystemConfig config;
  config.kind = kind;
  config.num_nodes = 2;
  auto system = MakeSystem(config, &net, &metrics);

  TxnSpec visit = MakeHospitalVisit(
      7, 100,
      {{.department = 0, .amount = 120, .procedure = "xray"},
       {.department = 1, .amount = 80, .procedure = "checkup"}});
  bool visit_done = false;
  system->Submit(0, visit, [&](const TxnResult&) { visit_done = true; });
  while (net.DeliverMatching(-1, 0, kSubmit) == 0) {
  }

  TxnResult inquiry_result;
  bool inquiry_done = false;
  system->Submit(0, MakeHospitalInquiry(7, {0, 1}),
                 [&](const TxnResult& r) {
                   inquiry_result = r;
                   inquiry_done = true;
                 });
  while (net.DeliverMatching(-1, 0, kSubmit) == 0) {
  }
  // Deliver everything except the visit's pending update subtransaction,
  // so the inquiry resolves first.
  for (int guard = 0; guard < 200 && !inquiry_done; ++guard) {
    uint64_t id = 0;
    for (const auto& pm : net.Pending()) {
      if (!(pm.msg.type == MsgType::kSubtxnRequest && !pm.msg.flag)) {
        id = pm.id;
        break;
      }
    }
    if (id == 0) break;
    net.Deliver(id);
  }
  while (!visit_done || !inquiry_done) {
    net.DeliverAll();
    net.loop().Run();
  }
  return {inquiry_result.reads.count(HospitalBalanceKey(7, 0))
              ? inquiry_result.reads.at(HospitalBalanceKey(7, 0)).num
              : -1,
          inquiry_result.reads.count(HospitalBalanceKey(7, 1))
              ? inquiry_result.reads.at(HospitalBalanceKey(7, 1)).num
              : -1};
}

}  // namespace

int main() {
  PrintHeader(
      "E-F1 part 1: the forced interleaving of Figure 1 "
      "(visit = +120 radiology, +80 pediatrics)");
  std::printf("%-18s %12s %12s %s\n", "strategy", "radiology", "pediatrics",
              "verdict");
  for (SystemKind kind :
       {SystemKind::kThreeV, SystemKind::kGlobalSync, SystemKind::kNoCoord,
        SystemKind::kManual}) {
    auto [radiology, pediatrics] = ForcedInterleaving(kind);
    const char* verdict;
    if ((radiology == 0 && pediatrics == 0) ||
        (radiology == 120 && pediatrics == 80)) {
      verdict = "consistent (all or nothing)";
    } else {
      verdict = "ANOMALY: partial bill";
    }
    std::printf("%-18s %12lld %12lld %s\n", SystemKindName(kind),
                static_cast<long long>(radiology),
                static_cast<long long>(pediatrics), verdict);
  }

  PrintHeader("E-F1 part 2: anomaly rate under sustained hospital load");
  std::printf("%-18s %10s %12s %10s\n", "strategy", "reads", "anomalies",
              "txn/s");
  for (SystemKind kind :
       {SystemKind::kThreeV, SystemKind::kGlobalSync, SystemKind::kNoCoord,
        SystemKind::kManual}) {
    RunConfig config;
    config.kind = kind;
    config.num_nodes = 4;
    config.num_entities = 50;
    config.zipf_theta = 1.1;
    config.read_fraction = 0.4;
    config.total_txns = 3000;
    config.mean_interarrival = 150;
    config.advance_period = 15'000;
    config.manual_safety_delay = 2'000;
    config.seed = 23;
    RunOutcome out = RunExperiment(config);
    std::printf("%-18s %10zu %12zu %10.0f\n", out.name.c_str(),
                static_cast<size_t>(out.committed * 0.4), out.anomalies,
                out.throughput);
  }
  std::printf(
      "shape: only 3V and GlobalSync are anomaly-free; 3V gets there\n"
      "without a single lock or global commit.\n");
  return 0;
}
