#!/usr/bin/env python3
"""Schema checker for Chrome trace_event dumps (Tracer::ChromeJson output).

CI runs one traced bench/simulation pass and archives the JSON; this gate
catches the dump layer drifting (unbalanced async spans, non-monotone
timestamps, malformed metadata) before a trace that chrome://tracing or
Perfetto silently mis-renders lands as an artifact. It validates shape, not
content: which spans a run produces is the acceptance test's business
(tests/trace_test.cc), how they are framed is this tool's.

Checked invariants:
  * top level: object with a `traceEvents` array and an
    `otherData.dropped` >= 0 ring-overwrite count
  * every event has ph in {M, b, e, i}; only those four are emitted
  * non-metadata events carry cat="threev", a non-empty name, integer
    pid/tid/ts and an args object
  * async span events (b/e) carry a string id; instants carry s="t"
  * per (pid, tid) track, timestamps are monotone non-decreasing in file
    order (metadata events are timeless and exempt)
  * per (cat, id), b/e events balance: never an e before its b, never a
    dangling b - the emitter closes ring-truncated spans synthetically,
    so an unbalanced file is always a dump-layer bug

Usage:
  tools/check_trace_json.py FILE [FILE...]   validate files (exit 1 on findings)
  tools/check_trace_json.py --self-test      run the seeded-violation tests
"""

import argparse
import json
import sys

ALLOWED_PH = {"M", "b", "e", "i"}


def check_doc(doc, path, errors):
    def err(msg):
        errors.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        err("top level is not an object")
        return
    other = doc.get("otherData")
    if not isinstance(other, dict) or \
            isinstance(other.get("dropped"), bool) or \
            not isinstance(other.get("dropped"), int) or \
            other["dropped"] < 0:
        err("`otherData.dropped` must be a non-negative integer")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err("`traceEvents` must be an array")
        return

    last_ts = {}     # (pid, tid) -> last timestamp seen on that track
    span_depth = {}  # (cat, id) -> open-span depth
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            err(f"{where} is not an object")
            continue
        ph = e.get("ph")
        if ph not in ALLOWED_PH:
            err(f"{where}.ph = {ph!r} is not one of {sorted(ALLOWED_PH)}")
            continue
        if isinstance(e.get("pid"), bool) or not isinstance(e.get("pid"), int) \
                or isinstance(e.get("tid"), bool) \
                or not isinstance(e.get("tid"), int):
            err(f"{where} pid/tid must be integers")
            continue
        if ph == "M":
            # Metadata: names a track, carries no timestamp.
            if e.get("name") != "thread_name" or \
                    not isinstance(e.get("args"), dict) or \
                    not e["args"].get("name"):
                err(f"{where} metadata must be thread_name with a "
                    "non-empty args.name")
            continue
        if not isinstance(e.get("cat"), str) or not e["cat"]:
            err(f"{where} missing `cat`")
        if not isinstance(e.get("name"), str) or not e["name"]:
            err(f"{where} missing `name`")
        ts = e.get("ts")
        if isinstance(ts, bool) or not isinstance(ts, int) or ts < 0:
            err(f"{where}.ts = {ts!r} must be a non-negative integer")
            continue
        if not isinstance(e.get("args"), dict):
            err(f"{where} missing `args` object")
        track = (e["pid"], e["tid"])
        if ts < last_ts.get(track, ts):
            err(f"{where}.ts = {ts} goes backwards on track "
                f"pid={track[0]} tid={track[1]} "
                f"(previous {last_ts[track]})")
        last_ts[track] = ts
        if ph == "i":
            if e.get("s") != "t":
                err(f"{where} instant must carry s=\"t\" (thread scope)")
            continue
        # Async span edge.
        span_id = e.get("id")
        if not isinstance(span_id, str) or not span_id:
            err(f"{where} span event must carry a string `id`")
            continue
        key = (e.get("cat"), span_id)
        if ph == "b":
            span_depth[key] = span_depth.get(key, 0) + 1
        else:
            depth = span_depth.get(key, 0)
            if depth <= 0:
                err(f"{where} closes span id={span_id} that was never opened")
            else:
                span_depth[key] = depth - 1
    for (cat, span_id), depth in sorted(span_depth.items()):
        if depth != 0:
            errors.append(
                f"{path}: span id={span_id} (cat={cat}) has {depth} "
                "unclosed begin(s); the dumper must close truncated spans "
                "synthetically")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    check_doc(doc, path, errors)
    return errors


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------


def _valid_doc():
    return {
        "traceEvents": [
            {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
             "args": {"name": "node-0"}},
            {"ph": "b", "cat": "threev", "name": "txn", "pid": 0, "tid": 0,
             "ts": 100, "id": "0x1", "args": {"trace": "0x1"}},
            {"ph": "i", "cat": "threev", "name": "msg_send", "pid": 0,
             "tid": 0, "ts": 150, "s": "t", "args": {"msg": "SubtxnRequest"}},
            {"ph": "b", "cat": "threev", "name": "subtxn", "pid": 0, "tid": 1,
             "ts": 160, "id": "0x2", "args": {"parent": "0x1"}},
            {"ph": "e", "cat": "threev", "name": "subtxn", "pid": 0, "tid": 1,
             "ts": 190, "id": "0x2", "args": {}},
            {"ph": "e", "cat": "threev", "name": "txn", "pid": 0, "tid": 0,
             "ts": 200, "id": "0x1", "args": {"arg": 1}},
        ],
        "displayTimeUnit": "ms",
        "otherData": {"dropped": 0},
    }


def self_test():
    failures = []

    def expect(name, doc, want_errors):
        errors = []
        check_doc(doc, "t", errors)
        if bool(errors) != want_errors:
            failures.append(f"{name}: expected errors={want_errors}, "
                            f"got {errors or '(none)'}")

    expect("valid doc", _valid_doc(), False)

    doc = _valid_doc()
    doc["traceEvents"][1]["ph"] = "B"  # sync-begin is not emitted here
    expect("unknown ph", doc, True)

    doc = _valid_doc()
    doc["traceEvents"][2]["ts"] = 50  # behind the b at ts=100, same track
    expect("non-monotone track", doc, True)

    doc = _valid_doc()
    del doc["traceEvents"][5]  # txn span left open
    expect("dangling begin", doc, True)

    doc = _valid_doc()
    doc["traceEvents"][4]["id"] = "0x7"  # closes a span never opened
    expect("end before begin", doc, True)

    doc = _valid_doc()
    del doc["traceEvents"][1]["id"]
    expect("span edge without id", doc, True)

    doc = _valid_doc()
    del doc["traceEvents"][2]["s"]
    expect("instant without scope", doc, True)

    doc = _valid_doc()
    doc["traceEvents"][0]["args"] = {}
    expect("anonymous metadata", doc, True)

    doc = _valid_doc()
    doc["otherData"]["dropped"] = -1
    expect("negative dropped", doc, True)

    doc = _valid_doc()
    doc["traceEvents"][3]["ts"] = True  # bool is not an int here
    expect("bool masquerading as ts", doc, True)

    # Timestamps may tie (same-instant events are ordered by the dumper) and
    # tracks are independent: tid=1 restarting below tid=0's clock is fine.
    doc = _valid_doc()
    doc["traceEvents"][3]["ts"] = 10
    doc["traceEvents"][4]["ts"] = 10
    expect("independent track clocks", doc, False)

    if failures:
        print("check_trace_json self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("check_trace_json self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="JSON files to validate")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no files given")
    all_errors = []
    for path in args.files:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"check_trace_json: {len(all_errors)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"check_trace_json: OK ({len(args.files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
