#!/usr/bin/env python3
"""Schema checker for the machine-readable bench output (BENCH_*.json).

CI runs bench_hotpath --quick and archives the JSON; this gate catches the
emitter drifting (renamed fields, wrong types, impossible numbers) before a
malformed artifact silently breaks the per-PR perf trajectory. It validates
shape and sanity, NOT performance: thresholds would flake on shared runners.

Usage:
  tools/check_bench_json.py FILE [FILE...]          validate files (exit 1 on findings)
  tools/check_bench_json.py --self-test             run the seeded-violation tests
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1

# name -> (type, validator). Validators get the value and the full row.
RESULT_FIELDS = {
    "name": (str, lambda v, row: len(v) > 0),
    "threads": (int, lambda v, row: v >= 1),
    "ops": (int, lambda v, row: v >= 1),
    "elapsed_ns": (int, lambda v, row: v >= 1),
    "throughput_ops": ((int, float), lambda v, row: v > 0),
    "p50_ns": (int, lambda v, row: v >= 0),
    "p99_ns": (int, lambda v, row: v >= row.get("p50_ns", 0)),
    "messages": (int, lambda v, row: v >= 0),
    "bytes": (int, lambda v, row: v >= 0),
}


def check_doc(doc, path, errors):
    def err(msg):
        errors.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        err("top level is not an object")
        return
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        err("missing/empty `bench` name")
    if doc.get("schema_version") != SCHEMA_VERSION:
        err(f"`schema_version` must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    config = doc.get("config")
    if not isinstance(config, dict):
        err("`config` must be an object")
    elif not isinstance(config.get("quick"), bool):
        err("`config.quick` must be a bool")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        err("`results` must be a non-empty array")
        return
    seen = set()
    for i, row in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            err(f"{where} is not an object")
            continue
        for field, (types, valid) in RESULT_FIELDS.items():
            if field not in row:
                err(f"{where} missing field `{field}`")
                continue
            v = row[field]
            # bool is an int subclass in Python; exclude it explicitly.
            if isinstance(v, bool) or not isinstance(v, types):
                err(f"{where}.{field} has type {type(v).__name__}")
                continue
            if not valid(v, row):
                err(f"{where}.{field} = {v!r} fails its sanity check")
        for field in row:
            if field not in RESULT_FIELDS:
                err(f"{where} has unknown field `{field}` "
                    "(schema drift - bump schema_version if intended)")
        name = row.get("name")
        if name in seen:
            err(f"{where} duplicates result name {name!r}")
        seen.add(name)
        # Cross-field: throughput must be consistent with ops/elapsed
        # (within 1% - the emitter rounds).
        if all(isinstance(row.get(k), (int, float)) and
               not isinstance(row.get(k), bool)
               for k in ("ops", "elapsed_ns", "throughput_ops")) and \
                row["elapsed_ns"] > 0:
            derived = row["ops"] * 1e9 / row["elapsed_ns"]
            if row["throughput_ops"] > 0 and \
                    abs(derived - row["throughput_ops"]) > 0.01 * derived:
                err(f"{where}.throughput_ops {row['throughput_ops']} "
                    f"inconsistent with ops/elapsed_ns ({derived:.1f})")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    check_doc(doc, path, errors)
    return errors


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------


def _valid_doc():
    return {
        "bench": "hotpath",
        "schema_version": 1,
        "config": {"quick": True, "compiler": "12.2.0"},
        "results": [{
            "name": "store_read_hot", "threads": 4, "ops": 1000,
            "elapsed_ns": 50000, "throughput_ops": 2e7,
            "p50_ns": 40, "p99_ns": 120, "messages": 0, "bytes": 0,
        }],
    }


def self_test():
    failures = []

    def expect(name, doc, want_errors):
        errors = []
        check_doc(doc, "t", errors)
        if bool(errors) != want_errors:
            failures.append(f"{name}: expected errors={want_errors}, "
                            f"got {errors or '(none)'}")

    expect("valid doc", _valid_doc(), False)

    doc = _valid_doc()
    doc["schema_version"] = 2
    expect("wrong schema version", doc, True)

    doc = _valid_doc()
    del doc["results"][0]["p99_ns"]
    expect("missing field", doc, True)

    doc = _valid_doc()
    doc["results"][0]["p99_ns"] = 10  # below p50
    expect("p99 below p50", doc, True)

    doc = _valid_doc()
    doc["results"][0]["extra"] = 1
    expect("unknown field", doc, True)

    doc = _valid_doc()
    doc["results"][0]["throughput_ops"] = 1.0  # wildly off ops/elapsed
    expect("inconsistent throughput", doc, True)

    doc = _valid_doc()
    doc["results"].append(dict(doc["results"][0]))
    expect("duplicate row name", doc, True)

    doc = _valid_doc()
    doc["results"][0]["threads"] = True  # bool is not an int here
    expect("bool masquerading as int", doc, True)

    doc = _valid_doc()
    doc["results"] = []
    expect("empty results", doc, True)

    if failures:
        print("check_bench_json self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("check_bench_json self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="JSON files to validate")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no files given")
    all_errors = []
    for path in args.files:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(e)
    if all_errors:
        print(f"check_bench_json: {len(all_errors)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"check_bench_json: OK ({len(args.files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
