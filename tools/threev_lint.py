#!/usr/bin/env python3
"""Protocol-invariant linter for the threev tree.

Checks invariants that neither the compiler nor the clang thread-safety
analysis can express, because they live above the type system:

  wire-symmetry      Every MsgType enumerator has a name-table arm in
                     message.cc, is constructed somewhere, and is handled
                     somewhere. Every WalRecordType enumerator has a
                     name-table arm in wal.cc, a replay arm in recovery.cc,
                     and a producer. An enumerator failing this is a message
                     or log record that silently vanishes on one side of the
                     wire - historically the worst class of protocol bug.

  lock-blocking      No direct blocking call (Send, fsync/fdatasync, sleeps,
                     condition waits) while a MutexLock on a protocol-layer
                     mutex is lexically in scope, in core/ storage/ lock/
                     verify/ baseline/. This is DESIGN.md's "the node mutex
                     is never held across a Send" rule, machine-checked.
                     Lexical only: calls via helpers (e.g. LogRecord, whose
                     wal_mu_-ordered fsync is load-bearing for quiescence
                     soundness - see DESIGN.md section 5) are deliberately
                     out of scope.

  version-arith      Version variables never take raw +1/+2/-1/-2 literals;
                     protocol code must use the ids.h helpers (NextVersion,
                     PrevVersion, MaxUpdateVersionFor, VersionGateOpen) so
                     each offset names the protocol fact it encodes.

  determinism        Simulation-driven code (core/ sim/ storage/ txn/ lock/
                     verify/ workload/ baseline/ fuzz/) takes time only from
                     Network::Now() and randomness only from seeded Rng:
                     ambient clocks and entropy there break SimNet replay
                     (and, for fuzz/, bit-reproducible seed schedules).

  capability         threev::Mutex (common/mutex.h) is the only lock type
                     in src/threev: raw std::mutex cannot carry a clang
                     capability, so using it anywhere else punches a hole in
                     the -Wthread-safety tier.

  analysis-optout    Every NO_THREAD_SAFETY_ANALYSIS carries an adjacent
                     `// SAFETY:` comment stating why the unsynchronized
                     access is sound. The seqlock read path in
                     VersionedStore is the documented, load-bearing opt-out
                     this rule exists to keep honest.

  metrics-observability
                     Every field of Metrics (atomic counter or Histogram)
                     is surfaced by BOTH Metrics::Report() (metrics.cc) and
                     the Prometheus exporter (trace/prometheus.cc). A
                     counter that is bumped but never exported is invisible
                     exactly when someone needs it; checking the function
                     bodies (not the whole files - Reset() and MergeFrom()
                     also name every field) keeps the two surfaces from
                     silently drifting as fields are added.

Usage:
  tools/threev_lint.py [--root REPO_ROOT]   lint the tree (exit 1 on findings)
  tools/threev_lint.py --self-test          run the seeded-violation tests
"""

import argparse
import os
import re
import sys

SRC_SUBDIR = os.path.join("src", "threev")

# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, preserving
    offsets and newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append(re.sub(r"[^\n]", " ", seg))
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            seg = text[i : j + 1]
            out.append(quote + " " * max(0, len(seg) - 2) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.code = strip_comments_and_strings(text)

    def line_of(self, offset):
        return self.text.count("\n", 0, offset) + 1


def load_tree(root):
    files = []
    src_root = os.path.join(root, SRC_SUBDIR)
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                files.append(SourceFile(os.path.relpath(path, root), f.read()))
    return files


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def by_path(files):
    return {f.path.replace(os.sep, "/"): f for f in files}


# ---------------------------------------------------------------------------
# Rule: wire symmetry
# ---------------------------------------------------------------------------


def parse_enum(code, enum_name):
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\};", code,
                  re.S)
    if m is None:
        return []
    names = re.findall(r"\b(k[A-Za-z0-9]+)\s*(?:=\s*\d+)?\s*,?", m.group(1))
    return names


def check_wire_symmetry(files):
    findings = []
    paths = by_path(files)

    def tree_code(exclude):
        return [
            f for f in files
            if f.path.replace(os.sep, "/") not in exclude and f.path.endswith(".cc")
        ]

    specs = [
        {
            "enum": "MsgType",
            "decl": "src/threev/net/message.h",
            "name_table": "src/threev/net/message.cc",
            "replay": None,
            # wire.cc is the generic field codec; message.cc the name table.
            "dispatch_exclude": {"src/threev/net/message.cc",
                                 "src/threev/net/wire.cc"},
        },
        {
            "enum": "WalRecordType",
            "decl": "src/threev/durability/wal.h",
            "name_table": "src/threev/durability/wal.cc",
            "replay": "src/threev/durability/recovery.cc",
            "dispatch_exclude": {"src/threev/durability/wal.cc",
                                 "src/threev/durability/recovery.cc"},
        },
    ]

    for spec in specs:
        decl = paths.get(spec["decl"])
        if decl is None:
            findings.append(Finding("wire-symmetry", spec["decl"], 1,
                                    "enum declaration file missing"))
            continue
        enumerators = parse_enum(decl.code, spec["enum"])
        if not enumerators:
            findings.append(Finding("wire-symmetry", spec["decl"], 1,
                                    f"could not parse enum {spec['enum']}"))
            continue
        name_table = paths.get(spec["name_table"])
        replay = paths.get(spec["replay"]) if spec["replay"] else None
        producers = tree_code(spec["dispatch_exclude"])
        for e in enumerators:
            qualified = f"{spec['enum']}::{e}"
            if name_table is None or \
                    f"case {qualified}" not in name_table.code:
                findings.append(Finding(
                    "wire-symmetry", spec["name_table"], 1,
                    f"{qualified} has no name-table arm (add a case to "
                    f"{spec['enum']}Name)"))
            if replay is not None and f"case {qualified}" not in replay.code:
                findings.append(Finding(
                    "wire-symmetry", spec["replay"], 1,
                    f"{qualified} has no replay arm: a logged record of this "
                    "type would be skipped during recovery"))
            # Producer: an assignment whose right-hand side mentions the
            # enumerator (covers `m.type = prepare ? kPrepare : kDecision`).
            produced = any(
                re.search(r"\.\s*type\s*=(?!=)[^;]*" + re.escape(qualified),
                          f.code)
                for f in producers)
            if not produced:
                findings.append(Finding(
                    "wire-symmetry", spec["decl"], 1,
                    f"{qualified} is never produced (no `.type = {qualified}` "
                    "outside its codec): dead enumerator or missing sender"))
            # Consumer: for WAL records the replay switch checked above IS
            # the consumer; for messages, require a dispatch arm or
            # comparison outside the codec.
            handled = any(
                re.search(r"(case\s+|[=!]=\s*)" + re.escape(qualified),
                          f.code)
                for f in producers)
            if spec["replay"] is None and not handled:
                findings.append(Finding(
                    "wire-symmetry", spec["decl"], 1,
                    f"{qualified} is never dispatched (no case/comparison "
                    "outside its codec): receivers would drop it"))
    return findings


# ---------------------------------------------------------------------------
# Rule: no blocking call under a protocol-layer lock
# ---------------------------------------------------------------------------

PROTOCOL_DIRS = ("core/", "storage/", "lock/", "verify/", "baseline/")

BLOCKING_PATTERNS = [
    (re.compile(r"[.>]\s*Send\s*\("), "network Send"),
    (re.compile(r"\bf(?:data)?sync\s*\("), "fsync"),
    (re.compile(r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\("),
     "sleep"),
    (re.compile(r"\bcv_?\w*\s*\.\s*wait(?:_for|_until)?\s*\("),
     "condition wait"),
]

GUARD_RE = re.compile(
    r"\b(?:MutexLock|ReaderMutexLock|SharedMutexLock|"
    r"std::lock_guard\s*<[^>]*>|std::unique_lock\s*<[^>]*>|"
    r"std::scoped_lock(?:\s*<[^>]*>)?)\s+\w+\s*[({]")


def in_protocol_dir(path):
    rel = path.replace(os.sep, "/")
    return any(("/" + d) in ("/" + rel) for d in
               (f"threev/{d}" for d in PROTOCOL_DIRS))


def check_lock_blocking(files):
    findings = []
    for f in files:
        if not in_protocol_dir(f.path):
            continue
        code = f.code
        guard_starts = [m.start() for m in GUARD_RE.finditer(code)]
        # For each guard, its scope is the enclosing brace block: scan
        # forward until depth drops below the depth at declaration.
        guard_spans = []
        for start in guard_starts:
            depth = 0
            end = len(code)
            i = start
            while i < len(code):
                c = code[i]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth < 0:
                        end = i
                        break
                i += 1
            guard_spans.append((start, end))
        for pattern, label in BLOCKING_PATTERNS:
            for m in pattern.finditer(code):
                for start, end in guard_spans:
                    if start < m.start() < end:
                        findings.append(Finding(
                            "lock-blocking", f.path, f.line_of(m.start()),
                            f"{label} while a lock guard is in scope; "
                            "release the lock (scope block) before blocking"))
                        break
    return findings


# ---------------------------------------------------------------------------
# Rule: version arithmetic hygiene
# ---------------------------------------------------------------------------

VERSION_ARITH_RE = re.compile(
    r"\b(?:\w+(?:\.|->))*"
    r"((?:new_|old_|check_)?(?:vu|vr|version|period|readable)\w*)"
    r"\s*(\+|-|\+=|-=)\s*([12])\b")

VERSION_ARITH_EXCLUDE = {"src/threev/common/ids.h"}


def check_version_arith(files):
    findings = []
    for f in files:
        rel = f.path.replace(os.sep, "/")
        if rel in VERSION_ARITH_EXCLUDE:
            continue
        for m in VERSION_ARITH_RE.finditer(f.code):
            var, op, lit = m.groups()
            helper = {
                ("+", "1"): "NextVersion",
                ("+=", "1"): "NextVersion",
                ("-", "1"): "PrevVersion",
                ("-=", "1"): "PrevVersion",
                ("+", "2"): "MaxUpdateVersionFor",
            }.get((op, lit), "the ids.h version helpers")
            findings.append(Finding(
                "version-arith", f.path, f.line_of(m.start()),
                f"raw `{var} {op} {lit}` on a version variable; use "
                f"{helper} (ids.h) so the offset names its protocol fact"))
    return findings


# ---------------------------------------------------------------------------
# Rule: determinism in sim-driven code
# ---------------------------------------------------------------------------

DETERMINISTIC_DIRS = ("core/", "sim/", "storage/", "txn/", "lock/",
                      "verify/", "workload/", "baseline/", "fuzz/")

NONDET_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"),
     "ambient chrono clock"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock syscall"),
    (re.compile(r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\("),
     "real sleep"),
]


def in_deterministic_dir(path):
    rel = path.replace(os.sep, "/")
    return any(("/" + d) in ("/" + rel) for d in
               (f"threev/{d}" for d in DETERMINISTIC_DIRS))


def check_determinism(files):
    findings = []
    for f in files:
        if not in_deterministic_dir(f.path):
            continue
        for pattern, label in NONDET_PATTERNS:
            for m in pattern.finditer(f.code):
                findings.append(Finding(
                    "determinism", f.path, f.line_of(m.start()),
                    f"{label} in simulation-driven code; take time from "
                    "Network::Now() and randomness from a seeded Rng"))
    return findings


# ---------------------------------------------------------------------------
# Rule: capability discipline (threev::Mutex only)
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable)\b(?!_any)")

CAPABILITY_EXCLUDE = {"src/threev/common/mutex.h"}


def check_capability(files):
    findings = []
    for f in files:
        rel = f.path.replace(os.sep, "/")
        if rel in CAPABILITY_EXCLUDE:
            continue
        for m in RAW_MUTEX_RE.finditer(f.code):
            findings.append(Finding(
                "capability", f.path, f.line_of(m.start()),
                f"raw std::{m.group(1)}; use threev::Mutex / MutexLock / "
                "CondVar (common/mutex.h) so the clang thread-safety tier "
                "can see the lock"))
    return findings


# ---------------------------------------------------------------------------
# Rule: documented analysis opt-outs
# ---------------------------------------------------------------------------
#
# NO_THREAD_SAFETY_ANALYSIS is a hole in the -Wthread-safety tier, but some
# holes are load-bearing: the VersionedStore seqlock read path reads
# GUARDED_BY cells without the lock *by design*, with its own validation
# protocol (every cell atomic, seq re-check, locked fallback). The rule is
# not "never opt out" - it is "every opt-out carries its safety argument":
# the macro must have a `SAFETY:` comment within the preceding few lines
# explaining why the unsynchronized access is sound.

OPTOUT_MACRO = "NO_THREAD_SAFETY_ANALYSIS"
OPTOUT_EXCLUDE = {"src/threev/common/thread_annotations.h"}
OPTOUT_LOOKBACK_LINES = 12


def check_analysis_optout(files):
    findings = []
    for f in files:
        rel = f.path.replace(os.sep, "/")
        if rel in OPTOUT_EXCLUDE:
            continue
        # Search the raw text: the justification lives in comments, which the
        # stripped view deliberately blanks out.
        for m in re.finditer(r"\b" + OPTOUT_MACRO + r"\b", f.text):
            line = f.line_of(m.start())
            lines = f.text.split("\n")
            lookback = "\n".join(
                lines[max(0, line - 1 - OPTOUT_LOOKBACK_LINES):line])
            if "SAFETY:" not in lookback:
                findings.append(Finding(
                    "analysis-optout", f.path, line,
                    f"{OPTOUT_MACRO} without an adjacent `// SAFETY:` comment;"
                    " every opt-out must state why the unsynchronized access"
                    " is sound (see the seqlock read path for the pattern)"))
    return findings


# ---------------------------------------------------------------------------
# Rule: metrics observability
# ---------------------------------------------------------------------------

METRICS_DECL = "src/threev/metrics/metrics.h"
METRICS_SURFACES = [
    # (display label, file, function whose body must mention every field)
    ("Report()", "src/threev/metrics/metrics.cc", "Metrics::Report"),
    ("the Prometheus exporter", "src/threev/trace/prometheus.cc",
     "PrometheusText"),
]


def parse_metrics_fields(code):
    m = re.search(r"struct\s+Metrics\s*\{(.*?)\n\};", code, re.S)
    if m is None:
        return []
    body = m.group(1)
    fields = re.findall(r"std::atomic<[^>]+>\s+(\w+)\s*\{", body)
    fields += re.findall(r"\bHistogram\s+(\w+)\s*;", body)
    return fields


def extract_function_body(code, name):
    """Returns the brace-enclosed body of the first definition of `name`,
    or None. Body extraction matters: Reset()/MergeFrom() in the same file
    also name every field, so whole-file search would never fire."""
    m = re.search(re.escape(name) + r"\s*\(", code)
    if m is None:
        return None
    open_brace = code.find("{", m.end())
    if open_brace == -1:
        return None
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[open_brace + 1:i]
    return None


def check_metrics_observability(files):
    findings = []
    paths = by_path(files)
    decl = paths.get(METRICS_DECL)
    if decl is None:
        return findings
    fields = parse_metrics_fields(decl.code)
    if not fields:
        findings.append(Finding(
            "metrics-observability", METRICS_DECL, 1,
            "could not parse the Metrics struct's fields"))
        return findings
    for label, path, fn in METRICS_SURFACES:
        impl = paths.get(path)
        body = extract_function_body(impl.code, fn) if impl else None
        if body is None:
            findings.append(Finding(
                "metrics-observability", path, 1,
                f"could not locate the body of {fn}"))
            continue
        for field in fields:
            if re.search(r"\b" + field + r"\b", body) is None:
                findings.append(Finding(
                    "metrics-observability", path, 1,
                    f"Metrics::{field} is not surfaced by {label}; a counter "
                    "that is recorded but never exported is invisible "
                    "exactly when someone needs it"))
    return findings


RULES = [
    check_wire_symmetry,
    check_lock_blocking,
    check_version_arith,
    check_determinism,
    check_capability,
    check_analysis_optout,
    check_metrics_observability,
]


def lint(root):
    files = load_tree(root)
    if not files:
        print(f"threev_lint: no sources under {os.path.join(root, SRC_SUBDIR)}",
              file=sys.stderr)
        return 2
    findings = []
    for rule in RULES:
        findings.extend(rule(files))
    for finding in sorted(findings, key=lambda x: (x.path, x.line)):
        print(finding)
    if findings:
        print(f"threev_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"threev_lint: OK ({len(files)} files)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: each rule must fire on a seeded violation and stay quiet on the
# equivalent clean snippet.
# ---------------------------------------------------------------------------


def _mkfile(path, text):
    return SourceFile(path, text)


def self_test():
    failures = []

    def expect(name, findings, rule, want):
        fired = any(f.rule == rule for f in findings)
        if fired != want:
            failures.append(
                f"{name}: expected rule '{rule}' fired={want}, got {fired}"
                + ("".join("\n    " + str(f) for f in findings) or " (none)"))

    # --- wire symmetry ----------------------------------------------------
    decl = _mkfile("src/threev/net/message.h",
                   "enum class MsgType : uint8_t {\n  kPing = 0,\n  kPong,\n};\n")
    name_table = _mkfile(
        "src/threev/net/message.cc",
        "case MsgType::kPing: return \"Ping\";\n"
        "case MsgType::kPong: return \"Pong\";\n")
    user = _mkfile(
        "src/threev/core/node.cc",
        "m.type = MsgType::kPing;\n"
        "case MsgType::kPing: break;\n"
        "m.type = MsgType::kPong;\n"
        "if (msg.type == MsgType::kPong) {}\n")
    wal_decl = _mkfile("src/threev/durability/wal.h",
                       "enum class WalRecordType : uint8_t { kUpdate = 1, };\n")
    wal_cc = _mkfile("src/threev/durability/wal.cc",
                     "case WalRecordType::kUpdate: return \"Update\";\n")
    recovery = _mkfile("src/threev/durability/recovery.cc",
                       "case WalRecordType::kUpdate: break;\n")
    wal_user = _mkfile("src/threev/core/node2.cc",
                       "rec.type = WalRecordType::kUpdate;\n"
                       "if (r.type == WalRecordType::kUpdate) {}\n")
    clean = [decl, name_table, user, wal_decl, wal_cc, recovery, wal_user]
    expect("wire clean", check_wire_symmetry(clean), "wire-symmetry", False)

    # Seed: kPong loses its name-table arm and its dispatch arm.
    broken_table = _mkfile("src/threev/net/message.cc",
                           "case MsgType::kPing: return \"Ping\";\n")
    expect("wire missing name arm",
           check_wire_symmetry([decl, broken_table, user, wal_decl, wal_cc,
                                recovery, wal_user]),
           "wire-symmetry", True)
    silent_user = _mkfile("src/threev/core/node.cc",
                          "m.type = MsgType::kPing;\n"
                          "case MsgType::kPing: break;\n"
                          "m.type = MsgType::kPong;\n")
    expect("wire undispatched enumerator",
           check_wire_symmetry([decl, name_table, silent_user, wal_decl,
                                wal_cc, recovery, wal_user]),
           "wire-symmetry", True)
    # Seed: a WAL record type with no replay arm.
    wal_decl2 = _mkfile(
        "src/threev/durability/wal.h",
        "enum class WalRecordType : uint8_t { kUpdate = 1, kCounter = 3, };\n")
    wal_cc2 = _mkfile("src/threev/durability/wal.cc",
                      "case WalRecordType::kUpdate: return \"Update\";\n"
                      "case WalRecordType::kCounter: return \"Counter\";\n")
    wal_user2 = _mkfile("src/threev/core/node2.cc",
                        "rec.type = WalRecordType::kUpdate;\n"
                        "if (r.type == WalRecordType::kUpdate) {}\n"
                        "rec.type = WalRecordType::kCounter;\n"
                        "if (r.type == WalRecordType::kCounter) {}\n")
    expect("wal missing replay arm",
           check_wire_symmetry([decl, name_table, user, wal_decl2, wal_cc2,
                                recovery, wal_user2]),
           "wire-symmetry", True)

    # --- lock blocking ----------------------------------------------------
    bad_lock = _mkfile("src/threev/core/node.cc", """
void Node::Bad() {
  MutexLock lock(mu_);
  network_->Send(0, std::move(m));
}
""")
    expect("send under lock", check_lock_blocking([bad_lock]),
           "lock-blocking", True)
    good_lock = _mkfile("src/threev/core/node.cc", """
void Node::Good() {
  {
    MutexLock lock(mu_);
    staged = true;
  }
  network_->Send(0, std::move(m));
}
""")
    expect("send after lock scope", check_lock_blocking([good_lock]),
           "lock-blocking", False)
    bad_wait = _mkfile("src/threev/lock/lock_manager.cc", """
void LockManager::Bad() {
  MutexLock lock(mu_);
  cv_.wait(lock);
}
""")
    expect("cv wait under protocol lock", check_lock_blocking([bad_wait]),
           "lock-blocking", True)
    net_wait = _mkfile("src/threev/net/thread_net.cc", """
void ThreadNet::TimerLoop() {
  MutexLock lock(timer_mu_);
  timer_cv_.wait(lock);
}
""")
    expect("net-layer cv wait exempt", check_lock_blocking([net_wait]),
           "lock-blocking", False)

    # --- version arithmetic ----------------------------------------------
    bad_arith = _mkfile("src/threev/core/node.cc",
                        "pass = ctx->version == vr_ + 1;\n")
    expect("raw version +1", check_version_arith([bad_arith]),
           "version-arith", True)
    bad_arith2 = _mkfile("src/threev/core/cluster.cc",
                         "ok = vu <= vr + 2;\n")
    expect("raw version +2", check_version_arith([bad_arith2]),
           "version-arith", True)
    good_arith = _mkfile(
        "src/threev/core/node.cc",
        "pass = VersionGateOpen(ctx->version, vr_);\n"
        "ok = vu <= MaxUpdateVersionFor(vr);\n"
        "count = count + 1;\n"          # non-version identifier: fine
        "// vr + 1 in a comment is fine\n")
    expect("helper-based arithmetic", check_version_arith([good_arith]),
           "version-arith", False)

    # --- determinism ------------------------------------------------------
    bad_rng = _mkfile("src/threev/workload/gen.cc",
                      "std::random_device rd;\n")
    expect("random_device in workload", check_determinism([bad_rng]),
           "determinism", True)
    bad_clock = _mkfile("src/threev/core/node.cc",
                        "auto t = std::chrono::steady_clock::now();\n")
    expect("ambient clock in core", check_determinism([bad_clock]),
           "determinism", True)
    good_net = _mkfile("src/threev/net/thread_net.cc",
                       "auto t = std::chrono::steady_clock::now();\n")
    expect("net layer may use real clocks", check_determinism([good_net]),
           "determinism", False)
    good_now = _mkfile("src/threev/core/node.cc",
                       "Micros now = network_->Now();\n")
    expect("Network::Now in core", check_determinism([good_now]),
           "determinism", False)
    bad_fuzz = _mkfile("src/threev/fuzz/fuzz.cc",
                       "auto t = std::chrono::steady_clock::now();\n")
    expect("ambient clock in fuzz subsystem", check_determinism([bad_fuzz]),
           "determinism", True)
    bad_fuzz_rng = _mkfile("src/threev/fuzz/plan.cc",
                           "std::srand(42);\n")
    expect("ambient randomness in fuzz subsystem",
           check_determinism([bad_fuzz_rng]), "determinism", True)

    # --- capability discipline -------------------------------------------
    bad_mutex = _mkfile("src/threev/core/node.h", "std::mutex mu_;\n")
    expect("raw std::mutex", check_capability([bad_mutex]),
           "capability", True)
    ok_any = _mkfile("src/threev/common/other.h",
                     "std::condition_variable_any cv_;\nMutex mu_;\n")
    expect("condition_variable_any allowed", check_capability([ok_any]),
           "capability", False)
    wrapper = _mkfile("src/threev/common/mutex.h", "std::mutex mu_;\n")
    expect("wrapper file exempt", check_capability([wrapper]),
           "capability", False)

    # --- lock blocking: shared/reader guards count as guards --------------
    bad_reader = _mkfile("src/threev/storage/versioned_store.cc", """
void VersionedStore::Bad() {
  ReaderMutexLock lock(shard.mu);
  network_->Send(0, std::move(m));
}
""")
    expect("send under reader lock", check_lock_blocking([bad_reader]),
           "lock-blocking", True)
    bad_shared = _mkfile("src/threev/storage/versioned_store.cc", """
void VersionedStore::Bad2() {
  SharedMutexLock lock(shard.mu);
  fsync(fd);
}
""")
    expect("fsync under shared lock", check_lock_blocking([bad_shared]),
           "lock-blocking", True)

    # --- analysis opt-out documentation -----------------------------------
    bad_optout = _mkfile("src/threev/storage/store.h",
                         "bool TryReadFast() NO_THREAD_SAFETY_ANALYSIS;\n")
    expect("undocumented opt-out", check_analysis_optout([bad_optout]),
           "analysis-optout", True)
    good_optout = _mkfile(
        "src/threev/storage/store.h",
        "// SAFETY: seqlock-validated snapshot; all cells are atomics and a\n"
        "// torn read is retried or handed to the locked fallback.\n"
        "bool TryReadFast() NO_THREAD_SAFETY_ANALYSIS;\n")
    expect("documented opt-out", check_analysis_optout([good_optout]),
           "analysis-optout", False)
    macro_def = _mkfile("src/threev/common/thread_annotations.h",
                        "#define NO_THREAD_SAFETY_ANALYSIS \\\n"
                        "  THREEV_THREAD_ANNOTATION(no_thread_safety_analysis)\n")
    expect("macro definition site exempt", check_analysis_optout([macro_def]),
           "analysis-optout", False)

    # --- metrics observability -------------------------------------------
    metrics_h = _mkfile(
        "src/threev/metrics/metrics.h",
        "struct Metrics {\n"
        "  std::atomic<int64_t> txns_committed{0};\n"
        "  std::atomic<int64_t> lock_waits{0};\n"
        "  Histogram update_latency;\n"
        "};\n")
    # Reset() names every field too - only Report()'s own body may satisfy
    # the rule, proving the brace extraction works.
    metrics_cc_ok = _mkfile(
        "src/threev/metrics/metrics.cc",
        "void Metrics::Reset() {\n"
        "  txns_committed = 0;\n  lock_waits = 0;\n  update_latency.Reset();\n"
        "}\n"
        "std::string Metrics::Report() const {\n"
        "  os << txns_committed.load() << lock_waits.load()\n"
        "     << update_latency.Summary();\n"
        "}\n")
    prom_cc_ok = _mkfile(
        "src/threev/trace/prometheus.cc",
        "std::string PrometheusText(const Metrics& m) {\n"
        "  AppendCounter(&out, \"txns_committed\", m.txns_committed.load());\n"
        "  AppendCounter(&out, \"lock_waits\", m.lock_waits.load());\n"
        "  AppendHistogramSummary(&out, \"update_latency\", m.update_latency);\n"
        "  return out;\n"
        "}\n")
    expect("metrics surfaced everywhere",
           check_metrics_observability([metrics_h, metrics_cc_ok, prom_cc_ok]),
           "metrics-observability", False)
    # Seed: lock_waits vanishes from Report() (but stays in Reset()).
    metrics_cc_bad = _mkfile(
        "src/threev/metrics/metrics.cc",
        "void Metrics::Reset() {\n"
        "  txns_committed = 0;\n  lock_waits = 0;\n  update_latency.Reset();\n"
        "}\n"
        "std::string Metrics::Report() const {\n"
        "  os << txns_committed.load() << update_latency.Summary();\n"
        "}\n")
    expect("metrics counter missing from Report",
           check_metrics_observability([metrics_h, metrics_cc_bad, prom_cc_ok]),
           "metrics-observability", True)
    # Seed: the histogram vanishes from the Prometheus exporter.
    prom_cc_bad = _mkfile(
        "src/threev/trace/prometheus.cc",
        "std::string PrometheusText(const Metrics& m) {\n"
        "  AppendCounter(&out, \"txns_committed\", m.txns_committed.load());\n"
        "  AppendCounter(&out, \"lock_waits\", m.lock_waits.load());\n"
        "  return out;\n"
        "}\n")
    expect("metrics histogram missing from exporter",
           check_metrics_observability([metrics_h, metrics_cc_ok, prom_cc_bad]),
           "metrics-observability", True)

    # --- stripping machinery ---------------------------------------------
    stripped = strip_comments_and_strings(
        'a = 1; // vr + 1\n/* std::mutex */ s = "vu + 2"; b = 2;\n')
    if "vr + 1" in stripped or "std::mutex" in stripped or "vu + 2" in stripped:
        failures.append("comment/string stripping leaked contents")
    if stripped.count("\n") != 2:
        failures.append("comment/string stripping changed line structure")

    if failures:
        print("threev_lint self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print("threev_lint self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation self-tests and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return lint(root)


if __name__ == "__main__":
    sys.exit(main())
