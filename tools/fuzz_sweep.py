#!/usr/bin/env python3
"""Shard a large threev_fuzz seed sweep across worker subprocesses.

The fuzzer itself is single-threaded by design (determinism), so big
sweeps parallelize across *processes*, one contiguous seed range per
worker, each with its own scratch and artifacts directory:

    tools/fuzz_sweep.py --binary build/examples/threev_fuzz \
        --seeds 2000 --jobs 4 --quick --artifacts-dir fuzz-artifacts

Exit status is 0 iff every shard passed. On failure the offending
shard's stdout/stderr tail is echoed and any repro artifacts the CLI
shrank are left under --artifacts-dir for upload. Shard boundaries do
not affect results: seed N behaves identically no matter which worker
runs it.
"""

import argparse
import pathlib
import shutil
import subprocess
import sys
import tempfile


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True,
                        help="path to the threev_fuzz executable")
    parser.add_argument("--seeds", type=int, default=2000,
                        help="sweep seeds 1..N (default 2000)")
    parser.add_argument("--start", type=int, default=1,
                        help="first seed (default 1)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker subprocesses (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help="use the quick (smoke) profile")
    parser.add_argument("--shrink", action="store_true",
                        help="shrink failing seeds and write repro artifacts")
    parser.add_argument("--artifacts-dir", default="fuzz-artifacts",
                        help="where repro artifacts land (default "
                             "fuzz-artifacts)")
    parser.add_argument("--timeout", type=int, default=3000,
                        help="per-shard timeout in seconds (default 3000)")
    return parser.parse_args(argv)


def shard_ranges(start, count, jobs):
    """Split [start, start+count) into up to `jobs` contiguous ranges."""
    jobs = max(1, min(jobs, count))
    base, extra = divmod(count, jobs)
    ranges = []
    at = start
    for i in range(jobs):
        size = base + (1 if i < extra else 0)
        ranges.append((at, size))
        at += size
    return ranges


def main(argv):
    args = parse_args(argv)
    binary = pathlib.Path(args.binary)
    if not binary.exists():
        print(f"fuzz_sweep: no such binary: {binary}", file=sys.stderr)
        return 2
    artifacts = pathlib.Path(args.artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    scratch_root = pathlib.Path(tempfile.mkdtemp(prefix="threev_sweep_"))

    procs = []
    for i, (first, size) in enumerate(
            shard_ranges(args.start, args.seeds, args.jobs)):
        if size == 0:
            continue
        cmd = [str(binary), f"--sweep={size}", f"--sweep-start={first}",
               f"--artifacts-dir={artifacts}",
               f"--scratch-dir={scratch_root / f'shard{i}'}"]
        if args.quick:
            cmd.append("--quick")
        if args.shrink:
            cmd.append("--shrink")
        log = open(scratch_root / f"shard{i}.log", "w+")
        procs.append((i, first, size, cmd,
                      subprocess.Popen(cmd, stdout=log, stderr=log), log))

    failed = 0
    for i, first, size, cmd, proc, log in procs:
        try:
            rc = proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            rc = -1
            print(f"shard {i} TIMED OUT after {args.timeout}s: "
                  f"{' '.join(cmd)}", file=sys.stderr)
        log.seek(0)
        tail = log.read().splitlines()[-20:]
        log.close()
        label = f"seeds {first}..{first + size - 1}"
        if rc == 0:
            print(f"shard {i} ({label}): OK")
        else:
            failed += 1
            print(f"shard {i} ({label}): FAILED (exit {rc})",
                  file=sys.stderr)
            for line in tail:
                print(f"  {line}", file=sys.stderr)

    if failed:
        print(f"fuzz_sweep: {failed} shard(s) failed; artifacts in "
              f"{artifacts}", file=sys.stderr)
        return 1
    shutil.rmtree(scratch_root, ignore_errors=True)
    total = args.seeds
    print(f"fuzz_sweep: all {total} seeds passed "
          f"({'quick' if args.quick else 'full'} profile)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
