#ifndef THREEV_STORAGE_VERSIONED_STORE_H_
#define THREEV_STORAGE_VERSIONED_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/common/status.h"
#include "threev/metrics/metrics.h"
#include "threev/txn/operation.h"

namespace threev {

// Undo information for one non-commuting update, replayed in reverse on
// abort (NC3V rollback; Section 3.2 treats well-behaved aborts via
// compensating subtransactions instead).
struct UndoEntry {
  std::string key;
  Version version = 0;
  bool created = false;  // the version copy was created by this update
  Value prior;           // value before the update (unused if created)
};

// In-memory multiversioned key-value store for one node.
//
// Implements exactly the data rules of Section 4 of the paper:
//  * Read(k, v): the maximum existing version of k that does not exceed v.
//  * Update(k, v, op): atomically check-and-create k(v) by copying the
//    maximum existing version <= v ("copy on update"), then apply op to
//    every version >= v (this is what keeps an old-version straggler's
//    effect visible in the newer version too - the "dual write").
//  * UpdateExact(k, v, op): the NC3V variant - fails if any version > v
//    exists, creates k(v) if needed, applies only to k(v).
//  * GarbageCollect(vr_new): for every item, if k(vr_new) exists drop all
//    earlier versions, else relabel the latest earlier version as vr_new.
//
// Thread-safe via sharded mutexes; an update (check-create + apply) is one
// atomic step per the paper's requirement. Tracks the maximum number of
// simultaneous versions ever observed (the paper proves <= 3).
class VersionedStore {
 public:
  // `metrics` (optional, unowned) receives copy-on-update accounting.
  explicit VersionedStore(Metrics* metrics = nullptr);

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  // Installs initial data at `version` (typically 0), replacing any
  // existing copy of that version.
  void Seed(const std::string& key, Value value, Version version = 0);

  // Reads the maximum existing version of `key` not exceeding `max_version`.
  // NotFound if the key does not exist or has only newer versions.
  Result<Value> Read(const std::string& key, Version max_version) const;

  // Reads every key starting with `prefix`, each at its maximum existing
  // version not exceeding `max_version`; keys with no such version are
  // skipped. Sorted by key. Serves audit/bill-generation scans of
  // read-only transactions (which run against a frozen version, so the
  // scan is stable without any locking).
  std::vector<std::pair<std::string, Value>> ScanPrefix(
      const std::string& prefix, Version max_version) const;

  // 3V update (Section 4.1, step 4). Returns the number of version copies
  // the operation was applied to (>= 1; > 1 is a straggler dual-write).
  // Creates the key (empty value) if it does not exist at all.
  // `after_images` (optional) receives one (version, value-after) pair per
  // touched copy, captured inside the atomic step - the WAL's redo images.
  Result<int> Update(const std::string& key, Version version,
                     const Operation& op,
                     std::vector<std::pair<Version, Value>>* after_images =
                         nullptr);

  // NC3V update (Section 5, step 4): aborts with kAborted if a version
  // greater than `version` exists; otherwise check-and-create k(version)
  // and apply `op` to that version only. Fills `undo` (required) and
  // `after_image` (optional: the value after the update, for redo logging).
  Status UpdateExact(const std::string& key, Version version,
                     const Operation& op, UndoEntry* undo,
                     Value* after_image = nullptr);

  // Reverts one UpdateExact.
  void Undo(const UndoEntry& undo);

  // Phase-4 garbage collection (Section 4.3).
  void GarbageCollect(Version vr_new);

  // --- Introspection (tests, invariant auditing, Figure 2 replay) --------

  // Existing version numbers of `key`, ascending. Empty if unknown key.
  std::vector<Version> VersionsOf(const std::string& key) const;

  // Version -> value snapshot for one key.
  std::map<Version, Value> DumpItem(const std::string& key) const;

  // Every (key, version, value) copy, sorted by key then version. Feeds
  // checkpoint snapshots; call only at a quiesced point (shard locks are
  // taken one at a time).
  std::vector<std::tuple<std::string, Version, Value>> DumpAll() const;

  std::vector<std::string> Keys() const;
  size_t KeyCount() const;

  // Maximum number of simultaneous versions of any single item ever
  // observed on this store (the paper's bound is 3).
  size_t MaxVersionsObserved() const EXCLUDES(stats_mu_);

 private:
  struct Record {
    // Sorted ascending by version; tiny (<= 3 entries), so a flat vector.
    std::vector<std::pair<Version, Value>> versions;

    // Index of max version <= v, or -1.
    int FindLE(Version v) const;
    int FindExact(Version v) const;
  };

  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Record> records GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  void NoteVersionCount(size_t n) EXCLUDES(stats_mu_);

  Metrics* metrics_;  // unowned, may be null
  Shard shards_[kNumShards];
  mutable Mutex stats_mu_;
  size_t max_versions_observed_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace threev

#endif  // THREEV_STORAGE_VERSIONED_STORE_H_
