#ifndef THREEV_STORAGE_VERSIONED_STORE_H_
#define THREEV_STORAGE_VERSIONED_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/common/status.h"
#include "threev/metrics/metrics.h"
#include "threev/txn/operation.h"

namespace threev {

// Undo information for one non-commuting update, replayed in reverse on
// abort (NC3V rollback; Section 3.2 treats well-behaved aborts via
// compensating subtransactions instead).
struct UndoEntry {
  std::string key;
  Version version = 0;
  bool created = false;  // the version copy was created by this update
  Value prior;           // value before the update (unused if created)
};

// In-memory multiversioned key-value store for one node.
//
// Implements exactly the data rules of Section 4 of the paper:
//  * Read(k, v): the maximum existing version of k that does not exceed v.
//  * Update(k, v, op): atomically check-and-create k(v) by copying the
//    maximum existing version <= v ("copy on update"), then apply op to
//    every version >= v (this is what keeps an old-version straggler's
//    effect visible in the newer version too - the "dual write").
//  * UpdateExact(k, v, op): the NC3V variant - fails if any version > v
//    exists, creates k(v) if needed, applies only to k(v).
//  * GarbageCollect(vr_new): for every item, if k(vr_new) exists drop all
//    earlier versions, else relabel the latest earlier version as vr_new.
//
// Concurrency model (DESIGN.md section 11): reads against the frozen `vr`
// never take an exclusive lock. Each shard carries a reader/writer lock
// (readers share, updates exclude), and on top of that a direct-mapped
// seqlock "fast slot" table serves the steady-state hit - a small,
// single-version value - entirely lock-free: writers publish a validated
// snapshot of the record under the shard lock, readers copy it out with a
// retry loop and fall back to the shared-lock path on any conflict. Keys
// are hashed exactly once per operation; the same hash picks the shard,
// the fast slot, and the bucket inside the shard map.
//
// An update (check-create + apply) remains one atomic step per the paper's
// requirement. Tracks the maximum number of simultaneous versions ever
// observed (the paper proves <= 3).
class VersionedStore {
 public:
  // `metrics` (optional, unowned) receives copy-on-update accounting.
  explicit VersionedStore(Metrics* metrics = nullptr);

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  // Installs initial data at `version` (typically 0), replacing any
  // existing copy of that version.
  void Seed(const std::string& key, Value value, Version version = 0);

  // Reads the maximum existing version of `key` not exceeding `max_version`.
  // NotFound if the key does not exist or has only newer versions.
  Result<Value> Read(const std::string& key, Version max_version) const;

  // Copy-elision variant of Read for hot loops: assigns the result into
  // `*out`, reusing its heap capacity across calls (no allocation when the
  // value shape is stable). Same contract as Read; on NotFound `*out` is
  // left unchanged (callers that pre-default it get read-as-empty-record
  // semantics for free).
  Status ReadInto(const std::string& key, Version max_version,
                  Value* out) const;

  // Reads every key starting with `prefix`, each at its maximum existing
  // version not exceeding `max_version`; keys with no such version are
  // skipped. Sorted by key. Serves audit/bill-generation scans of
  // read-only transactions (which run against a frozen version, so the
  // scan is stable without any locking).
  std::vector<std::pair<std::string, Value>> ScanPrefix(
      const std::string& prefix, Version max_version) const;

  // 3V update (Section 4.1, step 4). Returns the number of version copies
  // the operation was applied to (>= 1; > 1 is a straggler dual-write).
  // Creates the key (empty value) if it does not exist at all.
  // `after_images` (optional) receives one (version, value-after) pair per
  // touched copy, captured inside the atomic step - the WAL's redo images.
  Result<int> Update(const std::string& key, Version version,
                     const Operation& op,
                     std::vector<std::pair<Version, Value>>* after_images =
                         nullptr);

  // NC3V update (Section 5, step 4): aborts with kAborted if a version
  // greater than `version` exists; otherwise check-and-create k(version)
  // and apply `op` to that version only. Fills `undo` (required) and
  // `after_image` (optional: the value after the update, for redo logging).
  Status UpdateExact(const std::string& key, Version version,
                     const Operation& op, UndoEntry* undo,
                     Value* after_image = nullptr);

  // Reverts one UpdateExact.
  void Undo(const UndoEntry& undo);

  // Phase-4 garbage collection (Section 4.3).
  void GarbageCollect(Version vr_new);

  // --- Introspection (tests, invariant auditing, Figure 2 replay) --------

  // Existing version numbers of `key`, ascending. Empty if unknown key.
  std::vector<Version> VersionsOf(const std::string& key) const;

  // Version -> value snapshot for one key.
  std::map<Version, Value> DumpItem(const std::string& key) const;

  // Every (key, version, value) copy, sorted by key then version. Feeds
  // checkpoint snapshots; call only at a quiesced point (shard locks are
  // taken one at a time).
  std::vector<std::tuple<std::string, Version, Value>> DumpAll() const;

  std::vector<std::string> Keys() const;
  size_t KeyCount() const;

  // Maximum number of simultaneous versions of any single item ever
  // observed on this store (the paper's bound is 3).
  size_t MaxVersionsObserved() const {
    return max_versions_observed_.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    // Sorted ascending by version; tiny (<= 3 entries), so a flat vector.
    std::vector<std::pair<Version, Value>> versions;

    // Index of max version <= v, or -1.
    int FindLE(Version v) const;
    int FindExact(Version v) const;
  };

  // One-pass key hashing: FNV-1a computed once per public operation; the
  // result selects the shard, the fast slot, and - via the transparent
  // hasher below - the bucket inside the shard map, so the map never
  // re-hashes the key bytes.
  struct HashedKey {
    std::string_view key;
    size_t hash;
  };
  static size_t HashKey(std::string_view key) {
    // Keys up to 16 bytes (the common account-id shape) hash branch-light:
    // two possibly-overlapping 8-byte loads and two multiplies, no loop.
    // Longer keys fall back to a word-at-a-time FNV walk. Both paths fold
    // in the length (so prefix keys padded with NULs hash apart) and end
    // with an xor-shift so the low bits - which pick the shard - depend on
    // every input byte; bare FNV's low bits are degenerate under % 16.
    const char* p = key.data();
    size_t n = key.size();
    constexpr uint64_t kPrime = 1099511628211ull;  // FNV prime
    if (n <= 16) {
      uint64_t a = 0, b = 0;
      if (n >= 8) {
        std::memcpy(&a, p, 8);
        std::memcpy(&b, p + n - 8, 8);
      } else if (n > 0) {
        std::memcpy(&a, p, n);
      }
      uint64_t h = (a ^ 0x9e3779b97f4a7c15ull) * kPrime;
      h = (h ^ b ^ (static_cast<uint64_t>(n) << 56)) * kPrime;
      return static_cast<size_t>(h ^ (h >> 32));
    }
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      h = (h ^ w) * kPrime;
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t w = static_cast<uint64_t>(n) << 56;
      std::memcpy(&w, p, n);
      h = (h ^ w) * kPrime;
    }
    return static_cast<size_t>(h ^ (h >> 32));
  }
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const HashedKey& k) const { return k.hash; }
    size_t operator()(const std::string& k) const { return HashKey(k); }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const std::string& a, const std::string& b) const {
      return a == b;
    }
    bool operator()(const HashedKey& a, const std::string& b) const {
      return a.key == b;
    }
    bool operator()(const std::string& a, const HashedKey& b) const {
      return a == b.key;
    }
  };
  using RecordMap = std::unordered_map<std::string, Record, KeyHash, KeyEq>;

  // Lock-free read cache: one direct-mapped seqlock slot per hash bucket.
  // A slot holds a validated snapshot of a record in the steady state the
  // paper's Theorem 4.2 makes common - exactly one version, small
  // commuting-summary value - published by writers inside the shard's
  // exclusive section. Readers copy the payload with relaxed atomic loads
  // bracketed by the seqlock protocol (odd = write in progress; changed =
  // torn read, retry), so the fast path is UB-free and tsan-clean: every
  // cell is a std::atomic and the fences order payload against `seq`.
  struct FastSlot {
    static constexpr size_t kKeyWords = 6;  // inline key cap: 48 bytes
    static constexpr size_t kStrWords = 4;  // inline payload cap: 32 bytes
    static constexpr uint32_t kEmpty = 0;   // key_len 0 = unoccupied

    std::atomic<uint32_t> seq{0};
    // key_len | str_len << 8 (value `ids` must be empty to publish).
    std::atomic<uint32_t> lens{kEmpty};
    std::atomic<uint64_t> version{0};
    std::atomic<int64_t> num{0};
    std::atomic<uint64_t> key_words[kKeyWords] = {};
    std::atomic<uint64_t> str_words[kStrWords] = {};
  };

  static constexpr size_t kNumShards = 16;
  static constexpr size_t kSlotsPerShard = 64;
  struct Shard {
    mutable SharedMutex mu;
    RecordMap records GUARDED_BY(mu);
    // Written only by exclusive holders of `mu`; read lock-free by the
    // seqlock fast path (TryReadFast, the documented analysis opt-out).
    FastSlot slots[kSlotsPerShard] GUARDED_BY(mu);
  };

  Shard& ShardFor(size_t hash) { return shards_[hash % kNumShards]; }
  const Shard& ShardFor(size_t hash) const { return shards_[hash % kNumShards]; }
  static size_t SlotIndex(size_t hash) {
    // The low bits pick the shard; use an independent span for the slot.
    return (hash >> 7) % kSlotsPerShard;
  }

  // Republishes or invalidates the fast slot for `key` after a record
  // mutation. Must run inside the same exclusive section as the mutation
  // so slot state never lags a released write.
  void RefreshSlot(Shard& shard, size_t hash, std::string_view key,
                   const Record* rec) REQUIRES(shard.mu);

  // Seqlock fast path: returns true and fills `*out` iff the slot holds a
  // validated snapshot for `key` usable at `max_version`.
  bool TryReadFast(const Shard& shard, size_t hash, std::string_view key,
                   Version max_version, Value* out) const;

  void NoteVersionCount(size_t n) {
    size_t cur = max_versions_observed_.load(std::memory_order_relaxed);
    while (n > cur && !max_versions_observed_.compare_exchange_weak(
                          cur, n, std::memory_order_relaxed)) {
    }
  }

  Metrics* metrics_;  // unowned, may be null
  Shard shards_[kNumShards];
  std::atomic<size_t> max_versions_observed_{0};
};

}  // namespace threev

#endif  // THREEV_STORAGE_VERSIONED_STORE_H_
