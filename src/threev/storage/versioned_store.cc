#include "threev/storage/versioned_store.h"

#include <algorithm>
#include <functional>

namespace threev {

int VersionedStore::Record::FindLE(Version v) const {
  int best = -1;
  for (size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].first <= v) best = static_cast<int>(i);
  }
  return best;
}

int VersionedStore::Record::FindExact(Version v) const {
  for (size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].first == v) return static_cast<int>(i);
  }
  return -1;
}

VersionedStore::VersionedStore(Metrics* metrics) : metrics_(metrics) {}

VersionedStore::Shard& VersionedStore::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}
const VersionedStore::Shard& VersionedStore::ShardFor(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

void VersionedStore::NoteVersionCount(size_t n) {
  MutexLock lock(stats_mu_);
  if (n > max_versions_observed_) max_versions_observed_ = n;
}

void VersionedStore::Seed(const std::string& key, Value value,
                          Version version) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  Record& rec = shard.records[key];
  int idx = rec.FindExact(version);
  if (idx >= 0) {
    rec.versions[idx].second = std::move(value);
  } else {
    rec.versions.emplace_back(version, std::move(value));
    std::sort(rec.versions.begin(), rec.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
}

Result<Value> VersionedStore::Read(const std::string& key,
                                   Version max_version) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.records.find(key);
  if (it == shard.records.end()) return Status::NotFound(key);
  int idx = it->second.FindLE(max_version);
  if (idx < 0) return Status::NotFound(key + " has no version <= " +
                                       std::to_string(max_version));
  return it->second.versions[idx].second;
}

std::vector<std::pair<std::string, Value>> VersionedStore::ScanPrefix(
    const std::string& prefix, Version max_version) const {
  std::vector<std::pair<std::string, Value>> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) {
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
      int idx = rec.FindLE(max_version);
      if (idx >= 0) out.emplace_back(key, rec.versions[idx].second);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Result<int> VersionedStore::Update(
    const std::string& key, Version version, const Operation& op,
    std::vector<std::pair<Version, Value>>* after_images) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  Record& rec = shard.records[key];

  // Atomic check-and-create of key(version): copy the maximum existing
  // version <= `version`, or start from an empty value for a fresh key.
  if (rec.FindExact(version) < 0) {
    int src = rec.FindLE(version);
    Value copy = (src >= 0) ? rec.versions[src].second : Value{};
    if (src >= 0 && metrics_ != nullptr) {
      metrics_->version_copies.fetch_add(1, std::memory_order_relaxed);
      metrics_->bytes_copied.fetch_add(
          static_cast<int64_t>(copy.ByteSize()), std::memory_order_relaxed);
    }
    rec.versions.emplace_back(version, std::move(copy));
    std::sort(rec.versions.begin(), rec.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  // Apply to every version >= `version` (Section 4.1 step 4). When newer
  // versions exist this straggler write lands in both copies, keeping the
  // new version consistent with the old one.
  int applied = 0;
  for (auto& [v, value] : rec.versions) {
    if (v >= version) {
      op.ApplyTo(value);
      if (after_images != nullptr) after_images->emplace_back(v, value);
      ++applied;
    }
  }
  if (applied > 1 && metrics_ != nullptr) {
    metrics_->dual_version_writes.fetch_add(applied - 1,
                                            std::memory_order_relaxed);
  }
  NoteVersionCount(rec.versions.size());
  return applied;
}

Status VersionedStore::UpdateExact(const std::string& key, Version version,
                                   const Operation& op, UndoEntry* undo,
                                   Value* after_image) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  Record& rec = shard.records[key];

  // NC3V step 4: abort if the item already exists in a newer version (a
  // concurrent transaction of a later version has touched it; serializing
  // this transaction before it would be incorrect).
  if (!rec.versions.empty() && rec.versions.back().first > version) {
    return Status::Aborted(key + " exists in version " +
                           std::to_string(rec.versions.back().first) + " > " +
                           std::to_string(version));
  }

  undo->key = key;
  undo->version = version;
  int idx = rec.FindExact(version);
  if (idx < 0) {
    int src = rec.FindLE(version);
    Value copy = (src >= 0) ? rec.versions[src].second : Value{};
    if (src >= 0 && metrics_ != nullptr) {
      metrics_->version_copies.fetch_add(1, std::memory_order_relaxed);
      metrics_->bytes_copied.fetch_add(
          static_cast<int64_t>(copy.ByteSize()), std::memory_order_relaxed);
    }
    rec.versions.emplace_back(version, std::move(copy));
    idx = static_cast<int>(rec.versions.size()) - 1;
    undo->created = true;
  } else {
    undo->created = false;
    undo->prior = rec.versions[idx].second;
  }
  op.ApplyTo(rec.versions[idx].second);
  if (after_image != nullptr) *after_image = rec.versions[idx].second;
  NoteVersionCount(rec.versions.size());
  return Status::Ok();
}

void VersionedStore::Undo(const UndoEntry& undo) {
  Shard& shard = ShardFor(undo.key);
  MutexLock lock(shard.mu);
  auto it = shard.records.find(undo.key);
  if (it == shard.records.end()) return;
  Record& rec = it->second;
  int idx = rec.FindExact(undo.version);
  if (idx < 0) return;
  if (undo.created) {
    rec.versions.erase(rec.versions.begin() + idx);
    if (rec.versions.empty()) shard.records.erase(it);
  } else {
    rec.versions[idx].second = undo.prior;
  }
}

void VersionedStore::GarbageCollect(Version vr_new) {
  for (auto& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto& [key, rec] : shard.records) {
      if (rec.FindExact(vr_new) >= 0) {
        // Drop every version older than vr_new.
        rec.versions.erase(
            std::remove_if(rec.versions.begin(), rec.versions.end(),
                           [&](const auto& p) { return p.first < vr_new; }),
            rec.versions.end());
      } else {
        // Relabel the latest version older than vr_new as vr_new, dropping
        // anything before it.
        int idx = rec.FindLE(vr_new);
        if (idx >= 0) {
          rec.versions[idx].first = vr_new;
          rec.versions.erase(rec.versions.begin(),
                             rec.versions.begin() + idx);
        }
      }
    }
  }
}

std::vector<Version> VersionedStore::VersionsOf(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  std::vector<Version> out;
  auto it = shard.records.find(key);
  if (it != shard.records.end()) {
    for (const auto& [v, value] : it->second.versions) out.push_back(v);
  }
  return out;
}

std::map<Version, Value> VersionedStore::DumpItem(
    const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  std::map<Version, Value> out;
  auto it = shard.records.find(key);
  if (it != shard.records.end()) {
    for (const auto& [v, value] : it->second.versions) out[v] = value;
  }
  return out;
}

std::vector<std::tuple<std::string, Version, Value>> VersionedStore::DumpAll()
    const {
  std::vector<std::tuple<std::string, Version, Value>> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) {
      for (const auto& [v, value] : rec.versions) {
        out.emplace_back(key, v, value);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) < std::get<1>(b);
  });
  return out;
}

std::vector<std::string> VersionedStore::Keys() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t VersionedStore::KeyCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    n += shard.records.size();
  }
  return n;
}

size_t VersionedStore::MaxVersionsObserved() const {
  MutexLock lock(stats_mu_);
  return max_versions_observed_;
}

}  // namespace threev
