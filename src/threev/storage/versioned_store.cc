#include "threev/storage/versioned_store.h"

#include <algorithm>

#if defined(__GNUC__) || defined(__clang__)
#define THREEV_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define THREEV_ALWAYS_INLINE inline
#endif

namespace threev {

int VersionedStore::Record::FindLE(Version v) const {
  int best = -1;
  for (size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].first <= v) best = static_cast<int>(i);
  }
  return best;
}

int VersionedStore::Record::FindExact(Version v) const {
  for (size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].first == v) return static_cast<int>(i);
  }
  return -1;
}

VersionedStore::VersionedStore(Metrics* metrics) : metrics_(metrics) {}

// ---------------------------------------------------------------------------
// Fast-slot seqlock (DESIGN.md section 11)
// ---------------------------------------------------------------------------

void VersionedStore::RefreshSlot(Shard& shard, size_t hash,
                                 std::string_view key, const Record* rec) {
  FastSlot& slot = shard.slots[SlotIndex(hash)];
  const bool eligible =
      rec != nullptr && rec->versions.size() == 1 &&
      key.size() <= FastSlot::kKeyWords * 8 &&
      rec->versions[0].second.ids.empty() &&
      rec->versions[0].second.str.size() <= FastSlot::kStrWords * 8;

  // Occupancy check is race-free: slots are only written under the shard's
  // exclusive lock, which we hold.
  uint32_t cur_key_len = slot.lens.load(std::memory_order_relaxed) & 0xffu;
  bool occupied_by_key = false;
  if (cur_key_len != 0 && cur_key_len == key.size()) {
    uint64_t kw[FastSlot::kKeyWords];
    for (size_t i = 0; i < FastSlot::kKeyWords; ++i) {
      kw[i] = slot.key_words[i].load(std::memory_order_relaxed);
    }
    occupied_by_key = std::memcmp(kw, key.data(), cur_key_len) == 0;
  }
  // Ineligible records only need a write if they currently occupy the slot
  // (a stale entry for a different key stays valid for that key).
  if (!eligible && !occupied_by_key) return;

  // Seqlock publish: odd seq marks the write in progress; the release
  // fence orders the odd store before the payload, the final release store
  // orders the payload before the even seq readers validate against.
  uint32_t s = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (!eligible) {
    slot.lens.store(FastSlot::kEmpty, std::memory_order_relaxed);
  } else {
    const Value& v = rec->versions[0].second;
    slot.lens.store(static_cast<uint32_t>(key.size()) |
                        (static_cast<uint32_t>(v.str.size()) << 8),
                    std::memory_order_relaxed);
    slot.version.store(rec->versions[0].first, std::memory_order_relaxed);
    slot.num.store(v.num, std::memory_order_relaxed);
    uint64_t kw[FastSlot::kKeyWords] = {};
    std::memcpy(kw, key.data(), key.size());
    for (size_t i = 0; i < FastSlot::kKeyWords; ++i) {
      slot.key_words[i].store(kw[i], std::memory_order_relaxed);
    }
    uint64_t sw[FastSlot::kStrWords] = {};
    std::memcpy(sw, v.str.data(), v.str.size());
    for (size_t i = 0; i < FastSlot::kStrWords; ++i) {
      slot.str_words[i].store(sw[i], std::memory_order_relaxed);
    }
  }
  slot.seq.store(s + 2, std::memory_order_release);
}

// SAFETY: lock-free by design. `slots` is GUARDED_BY(mu) for writers; this
// reader validates its snapshot with the seqlock protocol instead of the
// lock (see the retry argument in DESIGN.md section 11). Every cell is a
// std::atomic, so the unsynchronized loads are UB-free; a torn or
// concurrent read is detected by the seq re-check and retried or handed to
// the shared-lock fallback.
//
// Forced inline: this is the per-read cost floor, and the ~10-cycle call
// frame would otherwise be the single largest line item on it.
THREEV_ALWAYS_INLINE
bool VersionedStore::TryReadFast(const Shard& shard, size_t hash,
                                 std::string_view key, Version max_version,
                                 Value* out) const NO_THREAD_SAFETY_ANALYSIS {
  const FastSlot& slot = shard.slots[SlotIndex(hash)];
  const size_t key_len = key.size();
  if (key_len == 0 || key_len > FastSlot::kKeyWords * 8) return false;
  // Zero-padded probe copy, hoisted out of the retry loop. Published slots
  // zero-pad the last key word, so word equality is exact key equality.
  const size_t key_words = (key_len + 7) / 8;
  uint64_t want[FastSlot::kKeyWords];
  want[key_words - 1] = 0;
  std::memcpy(want, key.data(), key_len);
  for (int attempt = 0; attempt < 3; ++attempt) {
    uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1u) return false;  // publish in progress; take the lock
    uint32_t lens = slot.lens.load(std::memory_order_relaxed);
    // Any early mismatch exit is safe without seq validation: `false` only
    // routes the read to the authoritative shared-lock path. Only a `true`
    // return needs the fence + seq re-check below.
    if ((lens & 0xffu) != key_len) return false;
    bool match = true;
    for (size_t i = 0; i < key_words; ++i) {
      if (slot.key_words[i].load(std::memory_order_relaxed) != want[i]) {
        match = false;
        break;
      }
    }
    if (!match) return false;
    uint64_t version = slot.version.load(std::memory_order_relaxed);
    int64_t num = slot.num.load(std::memory_order_relaxed);
    const uint32_t str_len = (lens >> 8) & 0xffu;
    uint64_t sw[FastSlot::kStrWords];
    for (size_t i = 0; i < (str_len + 7) / 8; ++i) {
      sw[i] = slot.str_words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn

    // Validated snapshot; decide entirely from the copied-out state.
    if (version > max_version) return false;  // locked path decides NotFound
    out->num = num;
    out->ids.clear();
    if (str_len == 0) {
      out->str.clear();
    } else {
      out->str.assign(reinterpret_cast<const char*>(sw), str_len);
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status VersionedStore::ReadInto(const std::string& key, Version max_version,
                                Value* out) const {
  const size_t hash = HashKey(key);
  const Shard& shard = ShardFor(hash);
  if (TryReadFast(shard, hash, key, max_version, out)) return Status::Ok();
  ReaderMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{key, hash});
  if (it == shard.records.end()) return Status::NotFound(key);
  int idx = it->second.FindLE(max_version);
  if (idx < 0) {
    return Status::NotFound(key + " has no version <= " +
                            std::to_string(max_version));
  }
  *out = it->second.versions[idx].second;
  return Status::Ok();
}

Result<Value> VersionedStore::Read(const std::string& key,
                                   Version max_version) const {
  const size_t hash = HashKey(key);
  const Shard& shard = ShardFor(hash);
  {
    // Fill through an in-place result: the fast path constructs exactly
    // one Value and never touches the shard lock.
    Result<Value> res{Value{}};
    if (TryReadFast(shard, hash, key, max_version, &*res)) return res;
  }
  ReaderMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{key, hash});
  if (it == shard.records.end()) return Status::NotFound(key);
  int idx = it->second.FindLE(max_version);
  if (idx < 0) {
    return Status::NotFound(key + " has no version <= " +
                            std::to_string(max_version));
  }
  return it->second.versions[idx].second;
}

std::vector<std::pair<std::string, Value>> VersionedStore::ScanPrefix(
    const std::string& prefix, Version max_version) const {
  std::vector<std::pair<std::string, Value>> out;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) {
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
      int idx = rec.FindLE(max_version);
      if (idx >= 0) out.emplace_back(key, rec.versions[idx].second);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void VersionedStore::Seed(const std::string& key, Value value,
                          Version version) {
  const size_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  SharedMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{key, hash});
  if (it == shard.records.end()) {
    it = shard.records.emplace(key, Record{}).first;
  }
  Record& rec = it->second;
  int idx = rec.FindExact(version);
  if (idx >= 0) {
    rec.versions[idx].second = std::move(value);
  } else {
    rec.versions.emplace_back(version, std::move(value));
    std::sort(rec.versions.begin(), rec.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  RefreshSlot(shard, hash, key, &rec);
}

Result<int> VersionedStore::Update(
    const std::string& key, Version version, const Operation& op,
    std::vector<std::pair<Version, Value>>* after_images) {
  const size_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  SharedMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{key, hash});
  if (it == shard.records.end()) {
    it = shard.records.emplace(key, Record{}).first;
  }
  Record& rec = it->second;

  // Atomic check-and-create of key(version): copy the maximum existing
  // version <= `version`, or start from an empty value for a fresh key.
  if (rec.FindExact(version) < 0) {
    int src = rec.FindLE(version);
    Value copy = (src >= 0) ? rec.versions[src].second : Value{};
    if (src >= 0 && metrics_ != nullptr) {
      metrics_->version_copies.fetch_add(1, std::memory_order_relaxed);
      metrics_->bytes_copied.fetch_add(
          static_cast<int64_t>(copy.ByteSize()), std::memory_order_relaxed);
    }
    rec.versions.emplace_back(version, std::move(copy));
    std::sort(rec.versions.begin(), rec.versions.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  // Apply to every version >= `version` (Section 4.1 step 4). When newer
  // versions exist this straggler write lands in both copies, keeping the
  // new version consistent with the old one.
  int applied = 0;
  for (auto& [v, value] : rec.versions) {
    if (v >= version) {
      op.ApplyTo(value);
      if (after_images != nullptr) after_images->emplace_back(v, value);
      ++applied;
    }
  }
  if (applied > 1 && metrics_ != nullptr) {
    metrics_->dual_version_writes.fetch_add(applied - 1,
                                            std::memory_order_relaxed);
  }
  NoteVersionCount(rec.versions.size());
  RefreshSlot(shard, hash, key, &rec);
  return applied;
}

Status VersionedStore::UpdateExact(const std::string& key, Version version,
                                   const Operation& op, UndoEntry* undo,
                                   Value* after_image) {
  const size_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  SharedMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{key, hash});
  if (it == shard.records.end()) {
    it = shard.records.emplace(key, Record{}).first;
  }
  Record& rec = it->second;

  // NC3V step 4: abort if the item already exists in a newer version (a
  // concurrent transaction of a later version has touched it; serializing
  // this transaction before it would be incorrect).
  if (!rec.versions.empty() && rec.versions.back().first > version) {
    return Status::Aborted(key + " exists in version " +
                           std::to_string(rec.versions.back().first) + " > " +
                           std::to_string(version));
  }

  undo->key = key;
  undo->version = version;
  int idx = rec.FindExact(version);
  if (idx < 0) {
    int src = rec.FindLE(version);
    Value copy = (src >= 0) ? rec.versions[src].second : Value{};
    if (src >= 0 && metrics_ != nullptr) {
      metrics_->version_copies.fetch_add(1, std::memory_order_relaxed);
      metrics_->bytes_copied.fetch_add(
          static_cast<int64_t>(copy.ByteSize()), std::memory_order_relaxed);
    }
    rec.versions.emplace_back(version, std::move(copy));
    idx = static_cast<int>(rec.versions.size()) - 1;
    undo->created = true;
  } else {
    undo->created = false;
    undo->prior = rec.versions[idx].second;
  }
  op.ApplyTo(rec.versions[idx].second);
  if (after_image != nullptr) *after_image = rec.versions[idx].second;
  NoteVersionCount(rec.versions.size());
  RefreshSlot(shard, hash, key, &rec);
  return Status::Ok();
}

void VersionedStore::Undo(const UndoEntry& undo) {
  const size_t hash = HashKey(undo.key);
  Shard& shard = ShardFor(hash);
  SharedMutexLock lock(shard.mu);
  auto it = shard.records.find(HashedKey{undo.key, hash});
  if (it == shard.records.end()) return;
  Record& rec = it->second;
  int idx = rec.FindExact(undo.version);
  if (idx < 0) return;
  if (undo.created) {
    rec.versions.erase(rec.versions.begin() + idx);
    if (rec.versions.empty()) {
      shard.records.erase(it);
      RefreshSlot(shard, hash, undo.key, nullptr);
      return;
    }
  } else {
    rec.versions[idx].second = undo.prior;
  }
  RefreshSlot(shard, hash, undo.key, &rec);
}

void VersionedStore::GarbageCollect(Version vr_new) {
  for (auto& shard : shards_) {
    SharedMutexLock lock(shard.mu);
    for (auto& [key, rec] : shard.records) {
      if (rec.FindExact(vr_new) >= 0) {
        // Drop every version older than vr_new.
        rec.versions.erase(
            std::remove_if(rec.versions.begin(), rec.versions.end(),
                           [&](const auto& p) { return p.first < vr_new; }),
            rec.versions.end());
      } else {
        // Relabel the latest version older than vr_new as vr_new, dropping
        // anything before it.
        int idx = rec.FindLE(vr_new);
        if (idx >= 0) {
          rec.versions[idx].first = vr_new;
          rec.versions.erase(rec.versions.begin(),
                             rec.versions.begin() + idx);
        }
      }
      // Records usually collapse back to a single version here; republish
      // so the advancement re-warms the lock-free read cache.
      RefreshSlot(shard, HashKey(key), key, &rec);
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<Version> VersionedStore::VersionsOf(const std::string& key) const {
  const size_t hash = HashKey(key);
  const Shard& shard = ShardFor(hash);
  ReaderMutexLock lock(shard.mu);
  std::vector<Version> out;
  auto it = shard.records.find(HashedKey{key, hash});
  if (it != shard.records.end()) {
    for (const auto& [v, value] : it->second.versions) out.push_back(v);
  }
  return out;
}

std::map<Version, Value> VersionedStore::DumpItem(
    const std::string& key) const {
  const size_t hash = HashKey(key);
  const Shard& shard = ShardFor(hash);
  ReaderMutexLock lock(shard.mu);
  std::map<Version, Value> out;
  auto it = shard.records.find(HashedKey{key, hash});
  if (it != shard.records.end()) {
    for (const auto& [v, value] : it->second.versions) out[v] = value;
  }
  return out;
}

std::vector<std::tuple<std::string, Version, Value>> VersionedStore::DumpAll()
    const {
  std::vector<std::tuple<std::string, Version, Value>> out;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) {
      for (const auto& [v, value] : rec.versions) {
        out.emplace_back(key, v, value);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) < std::get<1>(b);
  });
  return out;
}

std::vector<std::string> VersionedStore::Keys() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    for (const auto& [key, rec] : shard.records) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t VersionedStore::KeyCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    n += shard.records.size();
  }
  return n;
}

}  // namespace threev
