#ifndef THREEV_COMMON_MUTEX_H_
#define THREEV_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "threev/common/thread_annotations.h"

namespace threev {

// The one lock type of src/threev: a std::mutex that carries the clang
// thread-safety "mutex" capability, so members can be GUARDED_BY(mu_) and
// helpers can REQUIRES(mu_). libstdc++'s std::mutex has no capability
// attributes, which is why a wrapper is needed at all; the wrapper is
// layout- and cost-identical to the std::mutex it holds.
//
// tools/threev_lint.py rejects raw std::mutex / std::lock_guard /
// std::unique_lock anywhere else under src/threev.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII guard over threev::Mutex - the tree's replacement for both
// std::lock_guard and std::unique_lock. Satisfies BasicLockable (lock() /
// unlock()), so std::condition_variable_any waits on it directly:
//
//   MutexLock lock(mu_);
//   cv_.wait(lock, [&] { return ready_; });   // cv_ is condition_variable_any
//
// The manual lock()/unlock() members exist for the condition variable and
// for drop-the-lock-around-a-callback loops (see ThreadNet::TimerLoop); the
// object must be locked again when it goes out of scope (condition-variable
// waits re-acquire before returning, so the common pattern is safe by
// construction).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // For condition_variable_any and unlock-across-callback patterns.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

// Condition variable paired with threev::Mutex. std::condition_variable
// only accepts std::unique_lock<std::mutex>, so the annotated tree uses the
// _any variant, which waits on any BasicLockable - including MutexLock.
using CondVar = std::condition_variable_any;

// Reader/writer lock for read-mostly striped state (the versioned store's
// shards): many concurrent shared holders, one exclusive holder. Carries
// the same clang capability as Mutex, so GUARDED_BY members may be read
// under a shared hold and written only under an exclusive one - the
// analysis enforces the split. Like Mutex, this is the only place
// std::shared_mutex may appear (tools/threev_lint.py bans it elsewhere).
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive hold on a SharedMutex (the writer side).
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() RELEASE() { mu_.unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared hold on a SharedMutex (the reader side). Guarded data may be
// read but not written while one is in scope.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace threev

#endif  // THREEV_COMMON_MUTEX_H_
