#ifndef THREEV_COMMON_IDS_H_
#define THREEV_COMMON_IDS_H_

#include <cstdint>

namespace threev {

// Identifies a node (site) in the distributed system. Nodes are numbered
// densely from 0. The advancement coordinator and external clients also get
// endpoint ids above the node range; see Cluster for the assignment scheme.
using NodeId = uint32_t;

// A data version number, as in the paper: monotonically increasing, with the
// node-local invariant vr < vu <= vr + 2. Version 0 is the initial read
// version; version 1 the initial update version.
using Version = uint32_t;

// Globally unique transaction identifier (assigned by the submitting
// endpoint: high bits = endpoint id, low bits = local sequence number).
using TxnId = uint64_t;

// Globally unique subtransaction identifier within the system (assigned by
// the node that spawns the subtransaction, same encoding as TxnId).
using SubtxnId = uint64_t;

// Packs an endpoint-local sequence number into a globally unique id.
inline uint64_t MakeGlobalId(NodeId endpoint, uint64_t local_seq) {
  return (static_cast<uint64_t>(endpoint) << 40) | (local_seq & ((1ull << 40) - 1));
}

inline NodeId GlobalIdEndpoint(uint64_t id) {
  return static_cast<NodeId>(id >> 40);
}

}  // namespace threev

#endif  // THREEV_COMMON_IDS_H_
