#ifndef THREEV_COMMON_IDS_H_
#define THREEV_COMMON_IDS_H_

#include <cstddef>
#include <cstdint>

namespace threev {

// Identifies a node (site) in the distributed system. Nodes are numbered
// densely from 0. The advancement coordinator and external clients also get
// endpoint ids above the node range; see Cluster for the assignment scheme.
using NodeId = uint32_t;

// A data version number, as in the paper: monotonically increasing, with the
// node-local invariant vr < vu <= vr + 2. Version 0 is the initial read
// version; version 1 the initial update version.
using Version = uint32_t;

// Version-arithmetic helpers. Protocol code must use these instead of raw
// `+ 1` / `+ 2` literals on version variables (enforced by
// tools/threev_lint.py): the offsets encode protocol facts - the successor
// relation of advancement, the NC3V gate, the three-version bound - and a
// bare literal hides which fact a line depends on.

// The version that the next advancement produces from `v`.
constexpr Version NextVersion(Version v) { return v + 1; }

// The version the previous advancement produced `v` from.
constexpr Version PrevVersion(Version v) { return v - 1; }

// The largest update version compatible with read version `vr`
// (Section 4.4: vr < vu <= vr + 2, i.e. at most one advancement's phase 1
// may complete before the previous advancement's phase 3).
constexpr Version MaxUpdateVersionFor(Version vr) { return vr + 2; }

// The paper's Theorem 4.1 bound on simultaneous version copies of an item.
constexpr size_t kMaxSimultaneousVersions = 3;

// NC3V version gate (Section 5 step 2): a non-commuting transaction with
// version `v` may proceed only when no advancement is in flight for it,
// i.e. v is exactly the successor of the current read version.
constexpr bool VersionGateOpen(Version v, Version vr) {
  return v == NextVersion(vr);
}

// Globally unique transaction identifier (assigned by the submitting
// endpoint: high bits = endpoint id, low bits = local sequence number).
using TxnId = uint64_t;

// Globally unique subtransaction identifier within the system (assigned by
// the node that spawns the subtransaction, same encoding as TxnId).
using SubtxnId = uint64_t;

// Packs an endpoint-local sequence number into a globally unique id.
inline uint64_t MakeGlobalId(NodeId endpoint, uint64_t local_seq) {
  return (static_cast<uint64_t>(endpoint) << 40) | (local_seq & ((1ull << 40) - 1));
}

inline NodeId GlobalIdEndpoint(uint64_t id) {
  return static_cast<NodeId>(id >> 40);
}

}  // namespace threev

#endif  // THREEV_COMMON_IDS_H_
