#ifndef THREEV_COMMON_QUEUE_H_
#define THREEV_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace threev {

// Unbounded MPMC blocking queue used as a node mailbox in ThreadNet and as
// the inbound frame queue in TcpNet. Close() unblocks all waiters; after
// close, Pop drains remaining items and then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (item dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace threev

#endif  // THREEV_COMMON_QUEUE_H_
