#ifndef THREEV_COMMON_QUEUE_H_
#define THREEV_COMMON_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"

namespace threev {

// Unbounded MPMC blocking queue used as a node mailbox in ThreadNet and as
// the inbound frame queue in TcpNet. Close() unblocks all waiters; after
// close, Pop drains remaining items and then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is closed (item dropped).
  bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.wait(lock, [&]() REQUIRES(mu_) { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Batch drain: blocks until at least one item is available (or the queue
  // is closed and drained), then takes EVERYTHING queued in one swap. An
  // empty result means closed-and-drained. Delivery loops prefer this over
  // Pop(): one lock round trip and one wakeup amortize over the whole
  // burst, which is where mailbox throughput goes under load.
  std::deque<T> PopAll() EXCLUDES(mu_) {
    std::deque<T> batch;
    MutexLock lock(mu_);
    cv_.wait(lock, [&]() REQUIRES(mu_) { return !items_.empty() || closed_; });
    batch.swap(items_);
    return batch;
  }

  // Non-blocking variant of PopAll(); empty result means nothing queued.
  std::deque<T> TryPopAll() EXCLUDES(mu_) {
    std::deque<T> batch;
    MutexLock lock(mu_);
    batch.swap(items_);
    return batch;
  }

  // Non-blocking variant.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace threev

#endif  // THREEV_COMMON_QUEUE_H_
