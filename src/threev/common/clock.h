#ifndef THREEV_COMMON_CLOCK_H_
#define THREEV_COMMON_CLOCK_H_

#include <cstdint>

namespace threev {

// Time in microseconds. Under SimNet this is virtual (discrete-event) time;
// under ThreadNet/TcpNet it is steady-clock time since an arbitrary epoch.
using Micros = int64_t;

// Clock abstraction so protocol code and metrics work identically in
// simulated and real deployments. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() const = 0;
};

// Wall-clock-backed clock (std::chrono::steady_clock).
class RealClock : public Clock {
 public:
  Micros Now() const override;

  // Process-wide singleton (trivially destructible per style rules: returns
  // a reference to a never-deleted instance).
  static RealClock& Instance();
};

// Manually advanced clock for unit tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}
  Micros Now() const override { return now_; }
  void Advance(Micros delta) { now_ += delta; }
  void Set(Micros t) { now_ = t; }

 private:
  Micros now_;
};

}  // namespace threev

#endif  // THREEV_COMMON_CLOCK_H_
