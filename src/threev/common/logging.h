#ifndef THREEV_COMMON_LOGGING_H_
#define THREEV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace threev {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Sets the global log threshold; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Emits one formatted line to stderr ("[level file:line] message").
// Thread-safe (single write() per line).
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

// Stream collector used by the THREEV_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace threev

// Usage: THREEV_LOG(kInfo) << "advanced to version " << v;
#define THREEV_LOG(severity)                                            \
  if (::threev::LogLevel::severity >= ::threev::GetLogLevel())          \
  ::threev::internal_logging::LogLine(::threev::LogLevel::severity,     \
                                      __FILE__, __LINE__)

// Fatal invariant check: aborts the process with a message. Used for
// protocol invariants whose violation means the library is buggy, never for
// user input validation (which returns Status).
#define THREEV_CHECK(cond)                                                  \
  if (!(cond))                                                              \
  ::threev::internal_logging::FatalLine(__FILE__, __LINE__, #cond)

namespace threev {
namespace internal_logging {

class FatalLine {
 public:
  FatalLine(const char* file, int line, const char* cond);
  [[noreturn]] ~FatalLine();

  template <typename T>
  FatalLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace threev

#endif  // THREEV_COMMON_LOGGING_H_
