#include "threev/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace threev {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  char buf[1024];
  int n = std::snprintf(buf, sizeof(buf), "[%s %s:%d] %s\n", LevelName(level),
                        Basename(file), line, msg.c_str());
  if (n <= 0) return;
  size_t len = static_cast<size_t>(n);
  if (len >= sizeof(buf)) {
    // Truncated: keep the line terminator so the next line stays separate.
    len = sizeof(buf) - 1;
    buf[len - 1] = '\n';
  }
  std::fwrite(buf, 1, len, stderr);
}

FatalLine::FatalLine(const char* file, int line, const char* cond)
    : file_(file), line_(line) {
  stream_ << "CHECK failed: " << cond << " ";
}

FatalLine::~FatalLine() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace threev
