#ifndef THREEV_COMMON_THREAD_ANNOTATIONS_H_
#define THREEV_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute wrappers.
//
// The locking rules that DESIGN.md states in prose ("the node mutex is never
// held across a Send", "R/C counter increments are individually atomic") are
// machine-checked by compiling with clang and -Wthread-safety (the
// `thread-safety` CMake preset / THREEV_THREAD_SAFETY option). On GCC - and
// on clang without the flag - every macro expands to nothing, so the
// annotations cost nothing in the default build.
//
// Conventions used across the tree (see DESIGN.md section 10):
//   * Mutex-protected members are declared with GUARDED_BY(mu_).
//   * Private helpers named *Locked() carry REQUIRES(mu_) and must be called
//     with the mutex held.
//   * Public entry points that take the mutex themselves may carry
//     EXCLUDES(mu_) to document non-reentrancy.
//   * threev::Mutex (common/mutex.h) is the only lock type in src/threev;
//     raw std::mutex is rejected by tools/threev_lint.py because it cannot
//     carry a capability.

#if defined(__clang__) && (!defined(SWIG))
#define THREEV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define THREEV_THREAD_ANNOTATION(x)  // no-op
#endif

// Type attribute: the class is a lockable capability ("mutex").
#define CAPABILITY(x) THREEV_THREAD_ANNOTATION(capability(x))

// Type attribute: RAII object that acquires a capability in its constructor
// and releases it in its destructor.
#define SCOPED_CAPABILITY THREEV_THREAD_ANNOTATION(scoped_lockable)

// Data member is protected by the given capability.
#define GUARDED_BY(x) THREEV_THREAD_ANNOTATION(guarded_by(x))

// Pointed-to data is protected by the given capability.
#define PT_GUARDED_BY(x) THREEV_THREAD_ANNOTATION(pt_guarded_by(x))

// Caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  THREEV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  THREEV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (and does not release it).
#define ACQUIRE(...) THREEV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  THREEV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability.
#define RELEASE(...) THREEV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  THREEV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  THREEV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (documents non-reentrant entry points
// and catches recursive acquisition at compile time).
#define EXCLUDES(...) THREEV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts at runtime that the capability is held (trust-me escape hatch for
// code paths the analysis cannot follow).
#define ASSERT_CAPABILITY(x) THREEV_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) THREEV_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out of the analysis entirely. Use sparingly; every use is
// a hole in the machine-checked discipline.
#define NO_THREAD_SAFETY_ANALYSIS \
  THREEV_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // THREEV_COMMON_THREAD_ANNOTATIONS_H_
