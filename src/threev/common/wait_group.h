#ifndef THREEV_COMMON_WAIT_GROUP_H_
#define THREEV_COMMON_WAIT_GROUP_H_

#include <chrono>

#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"

namespace threev {

// Counts outstanding work items; Wait() blocks until the count returns to
// zero. Used by tests and real-threaded drivers to await asynchronous
// transaction completions.
class WaitGroup {
 public:
  void Add(int delta = 1) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    count_ += delta;
  }

  void Done() EXCLUDES(mu_) {
    bool notify = false;
    {
      MutexLock lock(mu_);
      if (--count_ <= 0) notify = true;
    }
    if (notify) cv_.notify_all();
  }

  void Wait() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.wait(lock, [&]() REQUIRES(mu_) { return count_ <= 0; });
  }

  // Returns false on timeout.
  bool WaitFor(std::chrono::milliseconds timeout) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&]() REQUIRES(mu_) { return count_ <= 0; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace threev

#endif  // THREEV_COMMON_WAIT_GROUP_H_
