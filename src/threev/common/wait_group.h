#ifndef THREEV_COMMON_WAIT_GROUP_H_
#define THREEV_COMMON_WAIT_GROUP_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace threev {

// Counts outstanding work items; Wait() blocks until the count returns to
// zero. Used by tests and real-threaded drivers to await asynchronous
// transaction completions.
class WaitGroup {
 public:
  void Add(int delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += delta;
  }

  void Done() {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--count_ <= 0) notify = true;
    }
    if (notify) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ <= 0; });
  }

  // Returns false on timeout.
  bool WaitFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace threev

#endif  // THREEV_COMMON_WAIT_GROUP_H_
