#ifndef THREEV_COMMON_RANDOM_H_
#define THREEV_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace threev {

// Deterministic, fast PRNG (xoshiro256**). Seeded explicitly everywhere so
// simulations and property tests replay bit-identically from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponentially distributed with the given mean (> 0). Used for
  // inter-arrival times and simulated network delays.
  double Exponential(double mean);

  // Forks an independent generator (for per-node streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed integers over [0, n). Precomputes the CDF once; sampling
// is O(log n). theta = 0 degenerates to uniform; typical skew is 0.8-1.2.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace threev

#endif  // THREEV_COMMON_RANDOM_H_
