#include "threev/common/status.h"

namespace threev {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace threev
