#ifndef THREEV_COMMON_STATUS_H_
#define THREEV_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace threev {

// Error taxonomy for the library. Mirrors the RocksDB/Arrow convention of
// returning rich status objects instead of throwing across API boundaries.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kAborted,        // Transaction aborted (deadlock timeout, version conflict).
  kUnavailable,    // Transient: peer not reachable / shutting down.
  kTimedOut,
  kInternal,
  kIoError,
};

// Returns a stable human-readable name ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

// Result of an operation: a code plus an optional context message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m = "") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m = "") {
    return Status(StatusCode::kIoError, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "NotFound: key missing".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-status holder, analogous to arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  // Implicit construction from values and statuses keeps call sites terse:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::NotFound(); }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for the OK case");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace threev

#endif  // THREEV_COMMON_STATUS_H_
