#include "threev/common/clock.h"

#include <chrono>

namespace threev {

Micros RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock& RealClock::Instance() {
  static RealClock& instance = *new RealClock();
  return instance;
}

}  // namespace threev
