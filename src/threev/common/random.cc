#include "threev/common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace threev {

namespace {
// SplitMix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias for large n.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace threev
