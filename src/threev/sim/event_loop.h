#ifndef THREEV_SIM_EVENT_LOOP_H_
#define THREEV_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "threev/common/clock.h"

namespace threev {

// Single-threaded discrete-event scheduler with a virtual microsecond clock.
// Events scheduled for the same instant run in scheduling order (stable tie
// break via a sequence number), which makes whole simulations deterministic
// from a seed.
//
// All protocol engines are passive state machines, so an entire multi-node
// "cluster" runs inside one event loop: perfect for benchmarking message
// complexity and blocking behaviour on a single-core host.
class EventLoop : public Clock {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Micros Now() const override { return now_; }

  // Schedules fn at absolute virtual time `when` (clamped to >= Now()).
  // Returns an id usable with Cancel().
  uint64_t ScheduleAt(Micros when, std::function<void()> fn);
  uint64_t ScheduleAfter(Micros delay, std::function<void()> fn);

  // Best-effort cancellation (the event is skipped when popped).
  void Cancel(uint64_t id);

  // Runs events until the queue is empty. Returns the number executed.
  size_t Run();

  // Runs events until `pred()` is true or the queue is empty. Returns true
  // if the predicate was satisfied.
  bool RunUntil(const std::function<bool()>& pred);

  // Runs events with time <= deadline.
  size_t RunFor(Micros duration);

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

  bool empty() const { return queue_.size() == cancelled_count_; }
  size_t pending() const { return queue_.size() - cancelled_count_; }

 private:
  struct Event {
    Micros when;
    uint64_t seq;
    uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopAndRun(Micros deadline, bool has_deadline);

  Micros now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t cancelled_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<uint64_t> cancelled_;  // sorted insertion not needed; small
};

}  // namespace threev

#endif  // THREEV_SIM_EVENT_LOOP_H_
