#include "threev/sim/event_loop.h"

#include <algorithm>

namespace threev {

uint64_t EventLoop::ScheduleAt(Micros when, std::function<void()> fn) {
  if (when < now_) when = now_;
  uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

uint64_t EventLoop::ScheduleAfter(Micros delay, std::function<void()> fn) {
  return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventLoop::Cancel(uint64_t id) {
  cancelled_.push_back(id);
  ++cancelled_count_;
}

bool EventLoop::PopAndRun(Micros deadline, bool has_deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (has_deadline && top.when > deadline) return false;
    Event ev{top.when, top.seq, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_count_;
      continue;  // skip cancelled event
    }
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

size_t EventLoop::Run() {
  size_t n = 0;
  while (PopAndRun(0, /*has_deadline=*/false)) ++n;
  return n;
}

bool EventLoop::RunUntil(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!PopAndRun(0, /*has_deadline=*/false)) return pred();
  }
  return true;
}

size_t EventLoop::RunFor(Micros duration) {
  Micros deadline = now_ + duration;
  size_t n = 0;
  while (PopAndRun(deadline, /*has_deadline=*/true)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool EventLoop::Step() { return PopAndRun(0, /*has_deadline=*/false); }

}  // namespace threev
