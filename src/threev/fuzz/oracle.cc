#include "threev/fuzz/oracle.h"

#include <map>
#include <set>
#include <sstream>

#include "threev/common/ids.h"
#include "threev/durability/recovery.h"
#include "threev/verify/checker.h"

namespace threev::fuzz {
namespace {

constexpr Micros kProbeDeadline = 2'000'000;

std::vector<Version> ParseActiveVersions(const std::string& csv) {
  std::vector<Version> out;
  uint64_t cur = 0;
  bool in_number = false;
  for (char c : csv) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      out.push_back(static_cast<Version>(cur));
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out.push_back(static_cast<Version>(cur));
  return out;
}

// One InspectAll round-trip, bounded by virtual time.
bool GatherInspections(Cluster& cluster, SimNet& net,
                       std::vector<NodeInspection>* out) {
  bool got = false;
  cluster.InspectAll([&](std::vector<NodeInspection> replies) {
    *out = std::move(replies);
    got = true;
  });
  return RunUntilDeadline(net.loop(), net.loop().Now() + kProbeDeadline,
                          [&] { return got; });
}

}  // namespace

std::vector<std::string> InspectionProbe(Cluster& cluster, SimNet& net) {
  std::vector<std::string> failures;
  std::vector<NodeInspection> replies;
  if (!GatherInspections(cluster, net, &replies)) {
    failures.push_back("inspection probe: InspectAll never completed");
    return failures;
  }
  size_t n = cluster.num_nodes();
  const NodeInspection* coord = nullptr;
  std::vector<const NodeInspection*> nodes;
  for (const NodeInspection& r : replies) {
    if (static_cast<size_t>(r.node) < n) {
      nodes.push_back(&r);
    } else {
      coord = &r;
    }
  }
  if (nodes.size() != n) {
    failures.push_back("inspection probe: expected " + std::to_string(n) +
                       " node replies, got " + std::to_string(nodes.size()));
    return failures;
  }
  for (const NodeInspection* insp : nodes) {
    std::string who = "node " + std::to_string(insp->node);
    Version vu = static_cast<Version>(insp->Stat("vu"));
    Version vr = static_cast<Version>(insp->Stat("vr"));
    if (!(vr < vu && vu <= MaxUpdateVersionFor(vr))) {
      failures.push_back(who + ": version window violated: vu=" +
                         std::to_string(vu) + " vr=" + std::to_string(vr));
    }
    int64_t max_versions = insp->Stat("max_versions_observed");
    if (max_versions > static_cast<int64_t>(kMaxSimultaneousVersions)) {
      failures.push_back(who + ": store observed " +
                         std::to_string(max_versions) +
                         " simultaneous versions (bound " +
                         std::to_string(kMaxSimultaneousVersions) + ")");
    }
    for (const char* key :
         {"pending_subtxns", "gate_waiters", "locks_held", "lock_waiters"}) {
      int64_t v = insp->Stat(key);
      if (v != 0) {
        failures.push_back(who + ": not quiescent: " + key + "=" +
                           std::to_string(v));
      }
    }
  }
  // Property 2(b): any two nodes differing in one version variable agree
  // on the other (Section 4.4) - and at a drained point after a completed
  // advancement everyone has acked every switch, so the idle coordinator's
  // view must match exactly.
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      Version vui = static_cast<Version>(nodes[i]->Stat("vu"));
      Version vuj = static_cast<Version>(nodes[j]->Stat("vu"));
      Version vri = static_cast<Version>(nodes[i]->Stat("vr"));
      Version vrj = static_cast<Version>(nodes[j]->Stat("vr"));
      if (vui != vuj && vri != vrj) {
        failures.push_back(
            "property 2(b) violated between node " +
            std::to_string(nodes[i]->node) + " (vu=" + std::to_string(vui) +
            ",vr=" + std::to_string(vri) + ") and node " +
            std::to_string(nodes[j]->node) + " (vu=" + std::to_string(vuj) +
            ",vr=" + std::to_string(vrj) + ")");
      }
    }
  }
  if (coord != nullptr && coord->Stat("phase") == 0) {
    Version cvu = static_cast<Version>(coord->Stat("vu_view"));
    Version cvr = static_cast<Version>(coord->Stat("vr_view"));
    for (const NodeInspection* insp : nodes) {
      if (static_cast<Version>(insp->Stat("vu")) != cvu ||
          static_cast<Version>(insp->Stat("vr")) != cvr) {
        failures.push_back(
            "node " + std::to_string(insp->node) +
            " disagrees with idle coordinator: node vu=" +
            std::to_string(insp->Stat("vu")) + " vr=" +
            std::to_string(insp->Stat("vr")) + ", coordinator vu=" +
            std::to_string(cvu) + " vr=" + std::to_string(cvr));
      }
    }
  }
  return failures;
}

std::vector<std::string> ConservationProbe(Cluster& cluster, SimNet& net,
                                           const ExpectedMatrix& expected) {
  std::vector<std::string> failures;
  size_t n = cluster.num_nodes();

  std::vector<NodeInspection> base;
  if (!GatherInspections(cluster, net, &base)) {
    failures.push_back("conservation probe: InspectAll never completed");
    return failures;
  }
  std::set<Version> live;
  for (const NodeInspection& r : base) {
    if (static_cast<size_t>(r.node) >= n) continue;
    for (Version v : ParseActiveVersions(r.StatStr("active_versions"))) {
      live.insert(v);
    }
  }

  // One versioned probe per (version, node): node p's reply carries its R
  // row (R(v)[p][q] for all q) and its C column (C(v)[o][p] for all o).
  std::map<Version, std::vector<NodeInspection>> rows;
  size_t outstanding = 0;
  for (Version v : live) {
    rows[v].resize(n);
    for (size_t p = 0; p < n; ++p) {
      ++outstanding;
      cluster.client().Inspect(
          static_cast<NodeId>(p), v,
          [&rows, &outstanding, v, p](const NodeInspection& insp) {
            rows[v][p] = insp;
            --outstanding;
          });
    }
  }
  if (!RunUntilDeadline(net.loop(), net.loop().Now() + kProbeDeadline,
                        [&] { return outstanding == 0; })) {
    failures.push_back("conservation probe: versioned probes never replied");
    return failures;
  }

  for (const auto& [v, replies] : rows) {
    std::vector<int64_t> r(n * n, 0);
    std::vector<int64_t> c(n * n, 0);
    for (size_t p = 0; p < n; ++p) {
      for (const auto& [q, count] : replies[p].counters_r) {
        if (static_cast<size_t>(q) < n) r[p * n + q] = count;
      }
      for (const auto& [o, count] : replies[p].counters_c) {
        if (static_cast<size_t>(o) < n) c[o * n + p] = count;
      }
    }
    auto expected_it = expected.find(v);
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = 0; q < n; ++q) {
        std::string cell = "version " + std::to_string(v) + " [" +
                           std::to_string(p) + "][" + std::to_string(q) + "]";
        if (r[p * n + q] != c[p * n + q]) {
          failures.push_back("conservation violated at " + cell + ": R=" +
                             std::to_string(r[p * n + q]) + " C=" +
                             std::to_string(c[p * n + q]));
        }
        if (p == q) continue;  // roots / local compensations: not tap-visible
        int64_t want = 0;
        if (expected_it != expected.end() &&
            expected_it->second.size() == n * n) {
          want = expected_it->second[p * n + q];
        }
        if (r[p * n + q] != want) {
          failures.push_back(
              "counter tally mismatch at " + cell + ": node reports R=" +
              std::to_string(r[p * n + q]) + ", delivery tap counted " +
              std::to_string(want));
        }
      }
    }
  }
  return failures;
}

std::vector<std::string> WalReplayProbe(Cluster& cluster,
                                        const std::string& wal_dir) {
  std::vector<std::string> failures;
  size_t n = cluster.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    std::string who = "node " + std::to_string(i);
    if (!cluster.node_alive(i)) {
      failures.push_back(who + ": dead at WAL-replay probe time");
      continue;
    }
    Node& live = cluster.node(i);
    VersionedStore store;
    CounterTable counters(n);
    Result<RecoveredState> recovered = RecoverNodeState(
        wal_dir + "/node-" + std::to_string(i), &store, &counters);
    if (!recovered.ok()) {
      failures.push_back(who + ": WAL replay failed: " +
                         recovered.status().ToString());
      continue;
    }
    if (recovered->vu != live.vu() || recovered->vr != live.vr()) {
      failures.push_back(
          who + ": replayed versions diverge: replay vu=" +
          std::to_string(recovered->vu) + " vr=" +
          std::to_string(recovered->vr) + ", live vu=" +
          std::to_string(live.vu()) + " vr=" + std::to_string(live.vr()));
    }
    if (store.DumpAll() != live.store().DumpAll()) {
      failures.push_back(who +
                         ": replayed store diverges from live store (an "
                         "acknowledged effect is not durable)");
    }
    std::vector<Version> live_versions = live.counters().ActiveVersions();
    std::vector<Version> replay_versions = counters.ActiveVersions();
    if (live_versions != replay_versions) {
      failures.push_back(who + ": replayed counter versions diverge");
      continue;
    }
    for (Version v : live_versions) {
      if (counters.SnapshotR(v) != live.counters().SnapshotR(v) ||
          counters.SnapshotC(v) != live.counters().SnapshotC(v)) {
        failures.push_back(who + ": replayed counters diverge at version " +
                           std::to_string(v));
      }
    }
  }
  return failures;
}

std::string OracleReport::Summary() const {
  if (failures.empty()) return "all oracles passed";
  std::ostringstream os;
  os << failures.size() << " oracle failure(s):";
  for (const std::string& f : failures) os << "\n  - " << f;
  return os.str();
}

OracleReport RunOracles(const OracleInput& input) {
  OracleReport report;
  auto take = [&report](std::vector<std::string> fails) {
    for (std::string& f : fails) report.failures.push_back(std::move(f));
  };
  take(InspectionProbe(*input.cluster, *input.net));
  take(ConservationProbe(*input.cluster, *input.net, input.expected));
  if (input.history != nullptr) {
    CheckerOptions copts;
    copts.check_version_cut = input.check_version_cut;
    CheckResult check =
        CheckHistory(input.history->Transactions(), copts);
    if (!check.ok()) {
      std::string text = "serializability: " + check.Summary();
      for (const std::string& sample : check.samples) {
        text += "\n      " + sample;
      }
      report.failures.push_back(std::move(text));
    }
  }
  if (!input.wal_dir.empty() && input.kills_happened) {
    take(WalReplayProbe(*input.cluster, input.wal_dir));
  }
  return report;
}

}  // namespace threev::fuzz
