#include "threev/fuzz/fault_plan.h"

namespace threev::fuzz {

FaultPlan::FaultPlan(SimNet* net, Cluster* cluster)
    : net_(net), cluster_(cluster), delivered_by_type_(256, 0) {
  net_->SetDeliveryTap(
      [this](NodeId to, const Message& msg) { OnDelivery(to, msg); });
}

FaultPlan::~FaultPlan() { net_->SetDeliveryTap(nullptr); }

size_t FaultPlan::Arm(CrashPoint point) {
  armed_.push_back(Armed{point, 0, false});
  return armed_.size() - 1;
}

int64_t FaultPlan::Delivered(MsgType type) const {
  return delivered_by_type_[static_cast<uint8_t>(type)];
}

void FaultPlan::OnDelivery(NodeId to, const Message& msg) {
  delivered_by_type_[static_cast<uint8_t>(msg.type)] += 1;
  if (observer_) observer_(to, msg);
  for (Armed& armed : armed_) {
    NodeId trigger = armed.point.trigger_node == CrashPoint::kTriggerIsVictim
                         ? armed.point.victim
                         : armed.point.trigger_node;
    if (armed.fired || to != trigger || msg.type != armed.point.at_type) {
      continue;
    }
    if (++armed.seen < armed.point.nth) continue;
    armed.fired = true;
    ++fired_count_;
    Cluster* cluster = cluster_;
    NodeId victim = armed.point.victim;
    cluster->KillNode(victim);
    net_->ScheduleAfter(armed.point.downtime,
                        [cluster, victim] { cluster->RestartNode(victim); });
    // The triggering message died with the node (SimNet re-checks liveness
    // after the tap); nothing more can fire on this delivery.
    return;
  }
}

bool RunUntilDeadline(EventLoop& loop, Micros deadline,
                      const std::function<bool()>& pred) {
  loop.RunUntil([&] { return pred() || loop.Now() >= deadline; });
  return pred();
}

Status DriveAdvancement(SimNet& net, Cluster& cluster, Micros cap) {
  EventLoop& loop = net.loop();
  Micros deadline = loop.Now() + cap;
  if (!RunUntilDeadline(loop, deadline, [&] {
        return !cluster.coordinator().running();
      })) {
    return Status::TimedOut("stale advancement never finished");
  }
  bool done = false;
  Status result;
  if (!cluster.coordinator().StartAdvancement([&](Status s) {
        result = std::move(s);
        done = true;
      })) {
    return Status::Internal("StartAdvancement refused while idle");
  }
  if (!RunUntilDeadline(loop, deadline, [&] { return done; })) {
    return Status::TimedOut("advancement did not complete before deadline");
  }
  return result;
}

}  // namespace threev::fuzz
