#ifndef THREEV_FUZZ_PLAN_H_
#define THREEV_FUZZ_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/core/node.h"
#include "threev/net/message.h"
#include "threev/txn/plan.h"

namespace threev::fuzz {

// Everything the generator randomizes about a run's shape, derived from
// the seed before any transaction or fault is drawn, so a plan prints and
// replays completely from (seed, quick).
struct FuzzProfile {
  size_t num_nodes = 3;
  size_t rounds = 3;          // traffic-window / fault-window pairs
  size_t txns_per_round = 40;
  double read_fraction = 0.2;
  double nc_fraction = 0.0;   // > 0 implies mode == kNC3V
  double abort_probability = 0.0;  // well-behaved roots -> compensations
  size_t fanout = 2;
  uint64_t num_entities = 12;
  double zipf_theta = 0.6;
  Micros min_delay = 100;
  Micros mean_extra_delay = 300;
  Micros mean_txn_gap = 400;  // inter-submit gap inside a traffic window
  NodeMode mode = NodeMode::kPure3V;
};

// One transaction of the workload plan, pinned to its traffic window.
struct PlannedTxn {
  size_t round = 0;
  Micros gap = 0;  // scheduled this long after the previous submit
  NodeId origin = 0;
  TxnSpec spec;
};

// The fault-schedule grammar (DESIGN.md section 13). Crash events are
// scoped to one (drained) fault window; drop/delay/reorder rules apply for
// the whole run. Every knob respects a liveness budget: drops only target
// retransmittable protocol messages and are budget-capped below the
// coordinator's max_stage_retries, downtime stays well inside the
// advancement deadline, and reordering only bypasses the FIFO clamp on
// channels where delivery order is not load-bearing (protocol steps are
// causally gated; same-channel commuting subtransactions commute - but
// compensation pairs do NOT, so profiles with abort injection draw no
// reorder rules).
enum class FaultKind : uint8_t {
  kCrashAtMessage = 0,
  kDropRule = 1,
  kDelayChannel = 2,
  kReorderChannel = 3,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kDropRule;
  // kCrashAtMessage: kill `victim` at the nth delivery of `at_type` in
  // fault window `round`; restart `downtime` later. 2PC crash points set
  // needs_nc_probe: the window submits one dedicated non-commuting probe
  // transaction rooted at `probe_origin` to create the targeted traffic.
  size_t round = 0;
  MsgType at_type = MsgType::kStartAdvancement;
  NodeId victim = 0;
  uint32_t nth = 1;
  Micros downtime = 20'000;
  bool needs_nc_probe = false;
  NodeId probe_origin = 0;
  // kDropRule: drop deliveries of `drop_type` with `probability`, at most
  // `budget` times.
  MsgType drop_type = MsgType::kCounterRead;
  double probability = 0.0;
  uint32_t budget = 0;
  // kDelayChannel / kReorderChannel: the affected (from -> to) channel;
  // delay rules add `extra_delay`, reorder rules bypass FIFO with
  // `probability`.
  NodeId from = 0;
  NodeId to = 0;
  Micros extra_delay = 0;

  std::string ToString() const;
};

struct FuzzPlan {
  uint64_t seed = 0;
  bool quick = false;
  FuzzProfile profile;
  std::vector<PlannedTxn> txns;
  std::vector<FaultSpec> faults;
  // Per round: start an advancement mid-window, overlapping live traffic
  // (only in rounds whose fault window has no crash event).
  std::vector<bool> advance_during_traffic;

  size_t EventCount() const { return txns.size() + faults.size(); }
  std::string Summary() const;
};

// Derives the whole plan - profile, workload, fault schedule - from one
// 64-bit seed. `quick` shrinks every dimension for smoke/CI profiles.
// Pure: same (seed, quick) in, same plan out.
FuzzPlan BuildPlan(uint64_t seed, bool quick);

// Keeps only the listed txn / fault indices (indices into the full plan's
// vectors); round structure and profile are preserved. The shrinker's
// candidate generator.
FuzzPlan FilterPlan(const FuzzPlan& plan, const std::vector<size_t>& txn_keep,
                    const std::vector<size_t>& fault_keep);

// ---------------------------------------------------------------------------
// Repro artifacts: a failing schedule is fully described by its seed plus
// the indices that survived shrinking, so the artifact stays tiny and the
// CLI regenerates the plan instead of deserializing transaction specs.
// ---------------------------------------------------------------------------

struct ReproSpec {
  uint64_t seed = 0;
  bool quick = true;
  bool all_txns = true;    // ignore `txns` and keep everything
  bool all_faults = true;  // ignore `faults` and keep everything
  std::vector<size_t> txns;
  std::vector<size_t> faults;
  std::string note;
};

std::string ReproToJson(const ReproSpec& repro);
// Minimal parser for the artifact schema above (plus hand edits). Returns
// false and fills `error` on malformed input.
bool ReproFromJson(const std::string& json, ReproSpec* out,
                   std::string* error);
FuzzPlan PlanFromRepro(const ReproSpec& repro);

}  // namespace threev::fuzz

#endif  // THREEV_FUZZ_PLAN_H_
