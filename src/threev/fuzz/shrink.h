#ifndef THREEV_FUZZ_SHRINK_H_
#define THREEV_FUZZ_SHRINK_H_

#include <cstddef>

#include "threev/fuzz/fuzz.h"
#include "threev/fuzz/plan.h"

namespace threev::fuzz {

struct ShrinkOutcome {
  // True iff the unfiltered plan failed (so `repro` describes a minimized
  // failing schedule). False means there was nothing to shrink.
  bool shrunk = false;
  ReproSpec repro;
  // The last run of the minimized schedule (its failures become the
  // artifact's note) - or the passing baseline when shrunk is false.
  FuzzResult final_result;
  size_t candidate_runs = 0;
  size_t events = 0;  // txns + faults kept in the minimized schedule
};

// Delta-debugging (ddmin) over the plan's transaction list, then its fault
// events, repeated to a fixpoint: each candidate keeps an index subset,
// regenerates the filtered plan and re-runs it deterministically, keeping
// the subset iff the oracles still fail. `max_runs` bounds total candidate
// executions; on exhaustion the best-so-far repro is returned.
ShrinkOutcome Shrink(const FuzzPlan& plan, const FuzzOptions& options,
                     size_t max_runs = 400);

}  // namespace threev::fuzz

#endif  // THREEV_FUZZ_SHRINK_H_
