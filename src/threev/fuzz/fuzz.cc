#include "threev/fuzz/fuzz.h"

#include <filesystem>
#include <map>
#include <sstream>
#include <utility>

#include "threev/common/random.h"
#include "threev/core/cluster.h"
#include "threev/fuzz/fault_plan.h"
#include "threev/fuzz/oracle.h"
#include "threev/metrics/metrics.h"
#include "threev/net/sim_net.h"
#include "threev/verify/history.h"

namespace threev::fuzz {
namespace {

// Independent streams for the whole-run fault rules, salted off the plan
// seed so they never correlate with SimNet's delay stream.
constexpr uint64_t kDropSalt = 0xa0761d6478bd642fULL;
constexpr uint64_t kReorderSalt = 0xe7037ed1a0b428dbULL;

std::filesystem::path ScratchDir(const FuzzPlan& plan,
                                 const FuzzOptions& options) {
  if (!options.scratch_dir.empty()) {
    return std::filesystem::path(options.scratch_dir);
  }
  return std::filesystem::temp_directory_path() /
         ("threev_fuzz_" + std::to_string(plan.seed) +
          (plan.quick ? "_q" : ""));
}

}  // namespace

std::string FuzzResult::Summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << " hash=" << std::hex << history_hash
     << std::dec << " committed=" << committed << " aborted=" << aborted
     << " orphans=" << orphans << " crashes=" << crashes
     << " drops=" << injected_drops << " delays=" << injected_delays
     << " events=" << events << " virtual_us=" << virtual_elapsed;
  for (const std::string& f : failures) os << "\n  - " << f;
  return os.str();
}

FuzzResult RunPlan(const FuzzPlan& plan, const FuzzOptions& options) {
  FuzzResult result;
  result.events = plan.EventCount();
  const FuzzProfile& prof = plan.profile;
  const size_t n = prof.num_nodes;

  std::filesystem::path scratch = ScratchDir(plan, options);
  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
  std::filesystem::create_directories(scratch, ec);

  Metrics metrics;
  HistoryRecorder history;

  SimNetOptions nopts;
  nopts.seed = plan.seed;
  nopts.min_delay = prof.min_delay;
  nopts.mean_extra_delay = prof.mean_extra_delay;
  SimNet net(nopts, &metrics);

  ClusterOptions copts;
  copts.num_nodes = n;
  copts.mode = prof.mode;
  copts.nc_lock_timeout = 50'000;
  copts.inject_abort_probability = prof.abort_probability;
  copts.coordinator_poll_interval = 1'000;
  copts.seed = plan.seed;
  copts.wal_dir = scratch.string();
  copts.twopc_retry_interval = 10'000;
  copts.coordinator_retry_interval = 5'000;
  if (options.injected_bug == FuzzOptions::InjectedBug::kSkipCompletionCounter) {
    copts.test_skip_completion_node = options.bug_node;
  }
  Cluster cluster(copts, &net, &metrics, &history);

  // ---- whole-run fault rules -> SimNet fault injector -------------------
  struct DropState {
    FaultSpec spec;
    uint32_t used = 0;
  };
  std::vector<DropState> drop_rules;
  std::vector<FaultSpec> delay_rules;
  std::vector<FaultSpec> reorder_rules;
  std::map<size_t, FaultSpec> crash_at_round;
  for (const FaultSpec& f : plan.faults) {
    switch (f.kind) {
      case FaultKind::kCrashAtMessage:
        crash_at_round[f.round] = f;  // the generator emits <= 1 per round
        break;
      case FaultKind::kDropRule:
        drop_rules.push_back({f, 0});
        break;
      case FaultKind::kDelayChannel:
        delay_rules.push_back(f);
        break;
      case FaultKind::kReorderChannel:
        reorder_rules.push_back(f);
        break;
    }
  }
  Rng drop_rng(plan.seed ^ kDropSalt);
  Rng reorder_rng(plan.seed ^ kReorderSalt);
  net.SetFaultInjector([&](NodeId to, const Message& msg) {
    SimNet::FaultDecision decision;
    for (DropState& rule : drop_rules) {
      if (msg.type == rule.spec.drop_type && rule.used < rule.spec.budget &&
          drop_rng.Bernoulli(rule.spec.probability)) {
        ++rule.used;
        decision.drop = true;
        return decision;
      }
    }
    for (const FaultSpec& rule : delay_rules) {
      if (msg.from == rule.from && to == rule.to) {
        decision.extra_delay += rule.extra_delay;
      }
    }
    for (const FaultSpec& rule : reorder_rules) {
      if (msg.from == rule.from && to == rule.to &&
          reorder_rng.Bernoulli(rule.probability)) {
        decision.bypass_fifo = true;
      }
    }
    return decision;
  });

  // ---- delivery tap: history hash + external counter tally --------------
  FaultPlan fault_plan(&net, &cluster);
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
  auto mix = [&hash](uint64_t x) {
    hash ^= x;
    hash *= 1099511628211ULL;  // FNV-1a prime
  };
  ExpectedMatrix expected;
  fault_plan.SetObserver([&](NodeId to, const Message& msg) {
    mix(static_cast<uint64_t>(net.loop().Now()));
    mix(to);
    mix(msg.from);
    mix(static_cast<uint64_t>(msg.type));
    mix(msg.txn);
    mix(msg.subtxn);
    mix(msg.version);
    mix(msg.seq);
    mix(msg.flag ? 1 : 0);
    mix(static_cast<uint64_t>(msg.status_code));
    // Off-diagonal R/C contributions all ride on a delivered subtxn
    // request (compensations included); roots self-count on the diagonal.
    if (msg.type == MsgType::kSubtxnRequest &&
        static_cast<size_t>(msg.from) < n && static_cast<size_t>(to) < n &&
        msg.from != to) {
      auto& row = expected[msg.version];
      if (row.empty()) row.assign(n * n, 0);
      row[static_cast<size_t>(msg.from) * n + to] += 1;
    }
  });

  // ---- run bookkeeping ---------------------------------------------------
  size_t scheduled = 0;  // submits planned so far (incl. not-yet-fired)
  size_t submitted = 0;
  size_t resolved = 0;
  std::vector<std::string> failures;
  std::vector<Status> advancement_statuses;

  auto submit = [&](NodeId origin, const TxnSpec& spec) {
    ++submitted;
    cluster.Submit(origin, spec, [&](const TxnResult& r) {
      ++resolved;
      if (r.status.ok()) {
        ++result.committed;
      } else {
        ++result.aborted;
      }
    });
  };

  // Drained: every planned submit has fired and every non-orphaned request
  // resolved, no advancement running, no incomplete subtransaction trees
  // anywhere. The `scheduled` check matters: a round's early transactions
  // can all resolve while later submits still sit in the event queue, and
  // opening a fault window then would let a kill orphan live trees.
  auto drained = [&] {
    return submitted == scheduled && resolved + result.orphans == submitted &&
           !cluster.coordinator().running() &&
           cluster.TotalPendingSubtxns() == 0 &&
           cluster.client().InFlight() == result.orphans;
  };

  auto drive_advancement = [&](const std::string& context, Micros cap) {
    Status s = DriveAdvancement(net, cluster, cap);
    advancement_statuses.push_back(s);
    if (!s.ok()) {
      failures.push_back("advancement (" + context + "): " + s.ToString());
    }
  };

  // ---- rounds: traffic window then fault window --------------------------
  for (size_t round = 0; round < prof.rounds; ++round) {
    // Traffic window: replay this round's submits at their planned gaps.
    Micros at = 0;
    for (const PlannedTxn& txn : plan.txns) {
      if (txn.round != round) continue;
      at += txn.gap;
      ++scheduled;
      const PlannedTxn* t = &txn;
      net.ScheduleAfter(at, [&submit, t] { submit(t->origin, t->spec); });
    }
    const bool mid_advance = round < plan.advance_during_traffic.size() &&
                             plan.advance_during_traffic[round];
    if (mid_advance) {
      // Overlap an advancement with live traffic, mid-window.
      net.ScheduleAfter(at / 2 + 1, [&cluster, &advancement_statuses] {
        if (cluster.coordinator().running()) return;
        cluster.coordinator().StartAdvancement(
            [&advancement_statuses](Status s) {
              advancement_statuses.push_back(s);
            });
      });
    }
    if (!RunUntilDeadline(net.loop(), net.loop().Now() + options.window_cap,
                          drained)) {
      failures.push_back("round " + std::to_string(round) +
                         ": traffic window never drained");
      break;  // the oracles will document the stuck state
    }

    // Fault window: operate on the drained cluster so a kill can never
    // orphan a well-behaved tree (subtxn requests have no retransmission);
    // 2PC crash points create their own crash-safe traffic via a dedicated
    // non-commuting probe transaction.
    auto crash_it = crash_at_round.find(round);
    if (crash_it != crash_at_round.end()) {
      const FaultSpec& f = crash_it->second;
      size_t armed = fault_plan.Arm(
          {f.at_type, f.victim, f.nth, f.downtime});
      bool root_killed = false;
      if (f.needs_nc_probe) {
        TxnBuilder b(f.probe_origin);
        std::string key = "nc_probe_" + std::to_string(round);
        b.Put(key, "round " + std::to_string(round));
        for (size_t p = 0; p < n; ++p) {
          if (p == f.probe_origin) continue;
          b.Child(static_cast<NodeId>(p),
                  {OpPut(key, "round " + std::to_string(round))});
        }
        root_killed = f.victim == f.probe_origin;
        ++scheduled;
        submit(f.probe_origin, b.Build());
        if (root_killed) {
          // The probe's root dies holding the client's request: presumed
          // abort cleans up the participants but nobody answers the client.
          ++result.orphans;
        }
      }
      drive_advancement("round " + std::to_string(round) + " crash window, " +
                            f.ToString(),
                        options.advancement_cap + f.downtime);
      // Let the victim's restart land and the probe (if any) resolve.
      if (!RunUntilDeadline(
              net.loop(), net.loop().Now() + options.window_cap, [&] {
                return fault_plan.Fired(armed) &&
                       cluster.node_alive(f.victim) && drained();
              })) {
        failures.push_back("round " + std::to_string(round) +
                           ": fault window never converged (" + f.ToString() +
                           ")");
        break;
      }
      if (!fault_plan.Fired(armed)) {
        failures.push_back("crash point never fired: " + f.ToString());
      }
    } else if (!mid_advance) {
      // No fault and no overlapped advancement: advance here anyway so
      // every round ends with fresh version churn.
      drive_advancement("round " + std::to_string(round),
                        options.advancement_cap);
    }
  }

  // ---- final quiescence --------------------------------------------------
  if (!RunUntilDeadline(net.loop(), net.loop().Now() + options.window_cap,
                        drained)) {
    failures.push_back("final drain never completed");
  }
  // Two clean advancements retire and garbage-collect the last versions
  // that carried traffic, so the conservation probe sees settled counters.
  drive_advancement("final #1", options.advancement_cap);
  drive_advancement("final #2", options.advancement_cap);

  // ---- history hash: delivered messages + final per-node state -----------
  for (size_t i = 0; i < n; ++i) {
    if (!cluster.node_alive(i)) {
      mix(0xdeadULL);
      continue;
    }
    Node& node = cluster.node(i);
    mix(node.vu());
    mix(node.vr());
    for (const auto& [key, version, value] : node.store().DumpAll()) {
      for (char c : key) mix(static_cast<uint8_t>(c));
      mix(version);
      mix(static_cast<uint64_t>(value.num));
      for (uint64_t id : value.ids) mix(id);
      for (char c : value.str) mix(static_cast<uint8_t>(c));
    }
  }
  mix(result.committed);
  mix(result.aborted);
  result.history_hash = hash;

  // ---- oracle battery ----------------------------------------------------
  OracleInput oin;
  oin.cluster = &cluster;
  oin.net = &net;
  oin.history = &history;
  oin.wal_dir = scratch.string();
  oin.kills_happened = metrics.node_crashes.load() > 0;
  oin.expected = std::move(expected);
  oin.num_nodes = n;
  OracleReport report = RunOracles(oin);
  for (std::string& f : report.failures) failures.push_back(std::move(f));

  result.failures = std::move(failures);
  result.ok = result.failures.empty();
  result.crashes = metrics.node_crashes.load();
  result.injected_drops = metrics.fault_injected_drops.load();
  result.injected_delays = metrics.fault_injected_delays.load();
  result.virtual_elapsed = net.loop().Now();

  std::filesystem::remove_all(scratch, ec);
  return result;
}

FuzzResult RunSeed(uint64_t seed, bool quick, const FuzzOptions& options) {
  return RunPlan(BuildPlan(seed, quick), options);
}

}  // namespace threev::fuzz
