#ifndef THREEV_FUZZ_ORACLE_H_
#define THREEV_FUZZ_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "threev/core/cluster.h"
#include "threev/fuzz/fault_plan.h"
#include "threev/net/sim_net.h"
#include "threev/verify/history.h"

namespace threev::fuzz {

// Expected counter matrix per version, tallied externally by the run
// driver from the delivery tap: every observed kSubtxnRequest delivery
// (from=p, to=q, version=v) adds one to entry [p * num_nodes + q]. Only
// off-diagonal entries are externally checkable this way (roots and local
// compensations count on the diagonal without touching the network), so
// the probe compares off-diagonal entries against this tally and all
// entries against each other (R == C).
using ExpectedMatrix = std::map<Version, std::vector<int64_t>>;

// Structural-invariant probe over kAdminInspect only - no node internals.
// Requires a drained, quiescent cluster (no advancement running, no
// pending subtransactions). Checks, per node: the version window
// vr < vu <= MaxUpdateVersionFor(vr); <= kMaxSimultaneousVersions ever
// observed in the store; zero pending/gate-waiting/lock-holding state; and
// pairwise property 2(b) (nodes differing in vu agree on vr and vice
// versa) plus agreement with the idle coordinator's view.
std::vector<std::string> InspectionProbe(Cluster& cluster, SimNet& net);

// Counter-matrix conservation at quiescence: for every version still live
// in any node's counter table, re-reads each node's R row and C column via
// versioned kAdminInspect probes and checks R(v)[p][q] == C(v)[p][q] for
// every ordered pair - an independent re-implementation of the
// coordinator's quiescence test - and, off-diagonal, equality with the
// externally tallied expectation.
std::vector<std::string> ConservationProbe(Cluster& cluster, SimNet& net,
                                           const ExpectedMatrix& expected);

// WAL-replay equivalence: recovers every node's durable state read-only
// (RecoverNodeState over a fresh store/counter table) and compares it with
// the live node - versions, full store dump, live counter rows. Any
// mismatch means a crash at this instant would lose or invent state.
std::vector<std::string> WalReplayProbe(Cluster& cluster,
                                        const std::string& wal_dir);

struct OracleInput {
  Cluster* cluster = nullptr;
  SimNet* net = nullptr;
  HistoryRecorder* history = nullptr;
  std::string wal_dir;         // empty: skip WAL-replay equivalence
  bool kills_happened = false;  // run WalReplayProbe even without kills?
  bool check_version_cut = true;
  ExpectedMatrix expected;
  size_t num_nodes = 0;
};

struct OracleReport {
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// The full battery: inspection probe, conservation probe, serializability
// (verify/ checker with the version-cut rule), WAL-replay equivalence when
// kills occurred. The cluster must be drained and quiescent.
OracleReport RunOracles(const OracleInput& input);

}  // namespace threev::fuzz

#endif  // THREEV_FUZZ_ORACLE_H_
