#include "threev/fuzz/shrink.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

namespace threev::fuzz {
namespace {

using Indices = std::vector<size_t>;

// Classic ddmin: split into `granularity` chunks; first try each chunk
// alone, then each complement; on any success restart at granularity 2,
// otherwise double the granularity until it exceeds the list size.
Indices DDMin(Indices items, const std::function<bool(const Indices&)>& fails) {
  if (items.empty()) return items;
  if (fails({})) return {};
  size_t granularity = 2;
  while (items.size() >= 2) {
    size_t chunk = (items.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0; start < items.size() && !reduced; start += chunk) {
      size_t end = std::min(start + chunk, items.size());
      Indices subset(items.begin() + start, items.begin() + end);
      if (subset.size() == items.size()) continue;
      if (fails(subset)) {
        items = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    for (size_t start = 0; start < items.size() && !reduced; start += chunk) {
      size_t end = std::min(start + chunk, items.size());
      Indices complement;
      complement.reserve(items.size() - (end - start));
      complement.insert(complement.end(), items.begin(),
                        items.begin() + start);
      complement.insert(complement.end(), items.begin() + end, items.end());
      if (complement.size() == items.size() || complement.empty()) continue;
      if (fails(complement)) {
        items = std::move(complement);
        granularity = std::max<size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= items.size()) break;
      granularity = std::min(items.size(), granularity * 2);
    }
  }
  return items;
}

}  // namespace

ShrinkOutcome Shrink(const FuzzPlan& plan, const FuzzOptions& options,
                     size_t max_runs) {
  ShrinkOutcome out;
  out.final_result = RunPlan(plan, options);
  if (out.final_result.ok) return out;  // nothing to shrink
  out.shrunk = true;

  Indices txns(plan.txns.size());
  std::iota(txns.begin(), txns.end(), 0);
  Indices faults(plan.faults.size());
  std::iota(faults.begin(), faults.end(), 0);

  auto fails = [&](const Indices& t, const Indices& f) {
    if (out.candidate_runs >= max_runs) return false;
    ++out.candidate_runs;
    return !RunPlan(FilterPlan(plan, t, f), options).ok;
  };

  // Alternate dimensions to a fixpoint: removing faults often unlocks
  // further transaction removal and vice versa.
  for (;;) {
    size_t before = txns.size() + faults.size();
    txns = DDMin(std::move(txns), [&](const Indices& t) {
      return fails(t, faults);
    });
    faults = DDMin(std::move(faults), [&](const Indices& f) {
      return fails(txns, f);
    });
    if (txns.size() + faults.size() == before ||
        out.candidate_runs >= max_runs) {
      break;
    }
  }

  out.repro.seed = plan.seed;
  out.repro.quick = plan.quick;
  out.repro.all_txns = false;
  out.repro.all_faults = false;
  out.repro.txns = txns;
  out.repro.faults = faults;
  out.events = txns.size() + faults.size();
  out.final_result = RunPlan(FilterPlan(plan, txns, faults), options);
  if (!out.final_result.failures.empty()) {
    out.repro.note = out.final_result.failures.front();
  }
  return out;
}

}  // namespace threev::fuzz
