#include "threev/fuzz/plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "threev/common/random.h"
#include "threev/workload/workload.h"

namespace threev::fuzz {
namespace {

// Stream salts: every derived Rng gets its own stream so adding a draw to
// one stage of the generator never shifts another stage's choices.
constexpr uint64_t kProfileSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kWorkloadSalt = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kScheduleSalt = 0x94d049bb133111ebULL;
constexpr uint64_t kFaultSalt = 0xd6e8feb86659fd93ULL;

double UniformIn(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.NextDouble();
}

FuzzProfile DeriveProfile(uint64_t seed, bool quick) {
  Rng rng(seed ^ kProfileSalt);
  FuzzProfile p;
  p.num_nodes = quick ? 3 : 3 + static_cast<size_t>(rng.Uniform(3));
  p.rounds = quick ? 2 : 3;
  p.txns_per_round = quick ? 15 : 30 + static_cast<size_t>(rng.Uniform(21));
  p.read_fraction = UniformIn(rng, 0.1, 0.4);
  // Most plans exercise NC3V (locks + gate + 2PC); the rest stay pure 3V.
  if (rng.Bernoulli(0.7)) {
    p.mode = NodeMode::kNC3V;
    p.nc_fraction = UniformIn(rng, 0.05, 0.25);
  }
  p.abort_probability = rng.Bernoulli(0.4) ? UniformIn(rng, 0.05, 0.15) : 0.0;
  p.fanout = 1 + static_cast<size_t>(rng.Uniform(3));
  if (p.fanout > p.num_nodes) p.fanout = p.num_nodes;
  p.num_entities = 8 + rng.Uniform(17);
  p.zipf_theta = UniformIn(rng, 0.0, 0.9);
  p.min_delay = 50 + static_cast<Micros>(rng.Uniform(251));
  p.mean_extra_delay = 100 + static_cast<Micros>(rng.Uniform(401));
  p.mean_txn_gap = 200 + static_cast<Micros>(rng.Uniform(601));
  return p;
}

// Crash points the schedule may target. The liveness analysis behind each
// entry lives in DESIGN.md section 13; the short version: advancement
// points are retransmitted by the coordinator until the victim restarts,
// and 2PC points ride the root/participant retransmission plus
// presumed-abort recovery, with completion counters deferred to decision
// time (crash-safe by construction).
struct CrashTemplate {
  MsgType type;
  uint32_t max_nth;
  bool needs_nc_probe;
  bool victim_is_probe_origin;
};

constexpr CrashTemplate kAdvancementPoints[] = {
    {MsgType::kStartAdvancement, 1, false, false},
    {MsgType::kCounterRead, 2, false, false},
    {MsgType::kReadVersionAdvance, 1, false, false},
    {MsgType::kGarbageCollect, 1, false, false},
};

constexpr CrashTemplate kTwoPcPoints[] = {
    {MsgType::kPrepare, 1, true, false},
    {MsgType::kVote, 1, true, true},  // the vote's destination is the root
    {MsgType::kDecision, 1, true, false},
};

// Message types whose loss the protocol provably recovers from (stage
// retransmission / 2PC retransmission). Dropping anything else can wedge
// quiescence forever, so the generator never does.
const MsgType kDroppableAdvancement[] = {
    MsgType::kStartAdvancement,   MsgType::kStartAdvancementAck,
    MsgType::kCounterRead,        MsgType::kCounterReadReply,
    MsgType::kReadVersionAdvance, MsgType::kReadVersionAdvanceAck,
    MsgType::kGarbageCollect,     MsgType::kGarbageCollectAck,
};
const MsgType kDroppableTwoPc[] = {
    MsgType::kPrepare,
    MsgType::kVote,
    MsgType::kDecision,
    MsgType::kDecisionAck,
};

// Total injected-drop allowance per run, kept far below the coordinator's
// max_stage_retries (50) so a dropped stage can always retransmit through.
constexpr uint32_t kDropBudgetPool = 24;

std::vector<FaultSpec> DeriveFaults(uint64_t seed, const FuzzProfile& p,
                                    bool quick) {
  Rng rng(seed ^ kFaultSalt);
  std::vector<FaultSpec> faults;
  size_t count = quick ? 2 + rng.Uniform(3) : 4 + rng.Uniform(5);
  std::set<size_t> crash_rounds;  // at most one crash per fault window
  uint32_t drop_pool = kDropBudgetPool;
  NodeId coord = static_cast<NodeId>(p.num_nodes);
  for (size_t i = 0; i < count; ++i) {
    double kind_roll = rng.NextDouble();
    FaultSpec f;
    if (kind_roll < 0.45 && crash_rounds.size() < p.rounds) {
      f.kind = FaultKind::kCrashAtMessage;
      size_t round = rng.Uniform(p.rounds);
      while (crash_rounds.count(round) != 0) round = (round + 1) % p.rounds;
      crash_rounds.insert(round);
      f.round = round;
      bool twopc =
          p.mode == NodeMode::kNC3V && rng.Bernoulli(0.4);
      const CrashTemplate& tmpl =
          twopc ? kTwoPcPoints[rng.Uniform(std::size(kTwoPcPoints))]
                : kAdvancementPoints[rng.Uniform(
                      std::size(kAdvancementPoints))];
      f.at_type = tmpl.type;
      f.nth = 1 + static_cast<uint32_t>(rng.Uniform(tmpl.max_nth));
      f.victim = static_cast<NodeId>(rng.Uniform(p.num_nodes));
      f.downtime = 10'000 + static_cast<Micros>(rng.Uniform(40'001));
      f.needs_nc_probe = tmpl.needs_nc_probe;
      if (f.needs_nc_probe) {
        f.probe_origin =
            tmpl.victim_is_probe_origin
                ? f.victim
                : static_cast<NodeId>((f.victim + 1) % p.num_nodes);
      }
    } else if (kind_roll < 0.70 && drop_pool > 0) {
      f.kind = FaultKind::kDropRule;
      bool twopc = p.mode == NodeMode::kNC3V && rng.Bernoulli(0.35);
      f.drop_type =
          twopc ? kDroppableTwoPc[rng.Uniform(std::size(kDroppableTwoPc))]
                : kDroppableAdvancement[rng.Uniform(
                      std::size(kDroppableAdvancement))];
      f.probability = UniformIn(rng, 0.2, 0.6);
      f.budget = 3 + static_cast<uint32_t>(rng.Uniform(6));
      if (f.budget > drop_pool) f.budget = drop_pool;
      drop_pool -= f.budget;
    } else if (kind_roll < 0.85) {
      f.kind = FaultKind::kDelayChannel;
      f.from = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      do {
        f.to = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      } while (f.to == f.from);
      f.extra_delay = 500 + static_cast<Micros>(rng.Uniform(4'501));
      (void)coord;
    } else if (p.abort_probability == 0.0) {
      // FIFO-bypass reordering is sound for the protocol itself but NOT
      // for the compensation model: a compensating child request overtaking
      // its original on the same channel un-deletes the aborted effects
      // (see tests/property_test.cc's no-FIFO sweep, which likewise injects
      // no aborts). Profiles with abort injection skip reorder rules.
      f.kind = FaultKind::kReorderChannel;
      f.from = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      do {
        f.to = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      } while (f.to == f.from);
      f.probability = UniformIn(rng, 0.3, 0.8);
    } else {
      f.kind = FaultKind::kDelayChannel;
      f.from = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      do {
        f.to = static_cast<NodeId>(rng.Uniform(p.num_nodes + 1));
      } while (f.to == f.from);
      f.extra_delay = 500 + static_cast<Micros>(rng.Uniform(4'501));
    }
    faults.push_back(f);
  }
  return faults;
}

void AppendIndexArray(std::ostringstream& os, const char* key,
                      const std::vector<size_t>& v) {
  os << "  \"" << key << "\": [";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i];
  }
  os << "]";
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// --- minimal JSON field scanning for the repro schema --------------------

bool FindKey(const std::string& json, const std::string& key, size_t* pos) {
  size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return false;
  at = json.find(':', at);
  if (at == std::string::npos) return false;
  *pos = at + 1;
  return true;
}

bool ParseU64(const std::string& json, const std::string& key, uint64_t* out) {
  size_t pos;
  if (!FindKey(json, key, &pos)) return false;
  while (pos < json.size() && isspace(static_cast<unsigned char>(json[pos])))
    ++pos;
  if (pos >= json.size() || !isdigit(static_cast<unsigned char>(json[pos])))
    return false;
  *out = 0;
  while (pos < json.size() && isdigit(static_cast<unsigned char>(json[pos])))
    *out = *out * 10 + static_cast<uint64_t>(json[pos++] - '0');
  return true;
}

bool ParseBool(const std::string& json, const std::string& key, bool* out) {
  size_t pos;
  if (!FindKey(json, key, &pos)) return false;
  while (pos < json.size() && isspace(static_cast<unsigned char>(json[pos])))
    ++pos;
  if (json.compare(pos, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (json.compare(pos, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool ParseString(const std::string& json, const std::string& key,
                 std::string* out) {
  size_t pos;
  if (!FindKey(json, key, &pos)) return false;
  pos = json.find('"', pos);
  if (pos == std::string::npos) return false;
  out->clear();
  for (size_t i = pos + 1; i < json.size(); ++i) {
    char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      char next = json[++i];
      out->push_back(next == 'n' ? '\n' : next);
      continue;
    }
    if (c == '"') return true;
    out->push_back(c);
  }
  return false;  // unterminated string
}

bool ParseIndexArray(const std::string& json, const std::string& key,
                     std::vector<size_t>* out) {
  size_t pos;
  if (!FindKey(json, key, &pos)) return false;
  pos = json.find('[', pos);
  if (pos == std::string::npos) return false;
  size_t end = json.find(']', pos);
  if (end == std::string::npos) return false;
  out->clear();
  uint64_t cur = 0;
  bool in_number = false;
  for (size_t i = pos + 1; i < end; ++i) {
    char c = json[i];
    if (isdigit(static_cast<unsigned char>(c))) {
      cur = cur * 10 + static_cast<uint64_t>(c - '0');
      in_number = true;
    } else {
      if (in_number) out->push_back(static_cast<size_t>(cur));
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out->push_back(static_cast<size_t>(cur));
  return true;
}

}  // namespace

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kCrashAtMessage:
      os << "crash{round=" << round << " at=" << MsgTypeName(at_type)
         << " nth=" << nth << " victim=" << victim
         << " downtime=" << downtime;
      if (needs_nc_probe) os << " probe_origin=" << probe_origin;
      os << "}";
      break;
    case FaultKind::kDropRule:
      os << "drop{type=" << MsgTypeName(drop_type) << " p=" << probability
         << " budget=" << budget << "}";
      break;
    case FaultKind::kDelayChannel:
      os << "delay{" << from << "->" << to << " extra=" << extra_delay
         << "}";
      break;
    case FaultKind::kReorderChannel:
      os << "reorder{" << from << "->" << to << " p=" << probability << "}";
      break;
  }
  return os.str();
}

std::string FuzzPlan::Summary() const {
  std::ostringstream os;
  os << "seed=" << seed << (quick ? " quick" : "")
     << " nodes=" << profile.num_nodes << " rounds=" << profile.rounds
     << " txns=" << txns.size()
     << " mode=" << (profile.mode == NodeMode::kNC3V ? "nc3v" : "pure3v")
     << " faults=[";
  for (size_t i = 0; i < faults.size(); ++i) {
    if (i != 0) os << " ";
    os << faults[i].ToString();
  }
  os << "]";
  return os.str();
}

FuzzPlan BuildPlan(uint64_t seed, bool quick) {
  FuzzPlan plan;
  plan.seed = seed;
  plan.quick = quick;
  plan.profile = DeriveProfile(seed, quick);
  const FuzzProfile& p = plan.profile;

  WorkloadOptions wopts;
  wopts.num_nodes = p.num_nodes;
  wopts.num_entities = p.num_entities;
  wopts.zipf_theta = p.zipf_theta;
  wopts.read_fraction = p.read_fraction;
  wopts.noncommuting_fraction = p.nc_fraction;
  wopts.fanout = p.fanout;
  wopts.with_inserts = true;
  wopts.seed = seed ^ kWorkloadSalt;
  WorkloadGenerator gen(wopts);

  Rng schedule_rng(seed ^ kScheduleSalt);
  for (size_t round = 0; round < p.rounds; ++round) {
    for (size_t i = 0; i < p.txns_per_round; ++i) {
      WorkloadJob job = gen.Next();
      PlannedTxn txn;
      txn.round = round;
      txn.gap = 1 + static_cast<Micros>(schedule_rng.Exponential(
                        static_cast<double>(p.mean_txn_gap)));
      txn.origin = job.origin;
      txn.spec = std::move(job.spec);
      plan.txns.push_back(std::move(txn));
    }
  }

  plan.faults = DeriveFaults(seed, p, quick);

  std::set<size_t> crash_rounds;
  for (const FaultSpec& f : plan.faults) {
    if (f.kind == FaultKind::kCrashAtMessage) crash_rounds.insert(f.round);
  }
  plan.advance_during_traffic.resize(p.rounds, false);
  for (size_t round = 0; round < p.rounds; ++round) {
    plan.advance_during_traffic[round] =
        crash_rounds.count(round) == 0 && schedule_rng.Bernoulli(0.5);
  }
  return plan;
}

FuzzPlan FilterPlan(const FuzzPlan& plan, const std::vector<size_t>& txn_keep,
                    const std::vector<size_t>& fault_keep) {
  FuzzPlan out = plan;
  out.txns.clear();
  out.faults.clear();
  std::set<size_t> tk(txn_keep.begin(), txn_keep.end());
  std::set<size_t> fk(fault_keep.begin(), fault_keep.end());
  for (size_t i = 0; i < plan.txns.size(); ++i) {
    if (tk.count(i) != 0) out.txns.push_back(plan.txns[i]);
  }
  for (size_t i = 0; i < plan.faults.size(); ++i) {
    if (fk.count(i) != 0) out.faults.push_back(plan.faults[i]);
  }
  return out;
}

std::string ReproToJson(const ReproSpec& repro) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"threev-fuzz-repro-v1\",\n";
  os << "  \"seed\": " << repro.seed << ",\n";
  os << "  \"quick\": " << (repro.quick ? "true" : "false") << ",\n";
  os << "  \"all_txns\": " << (repro.all_txns ? "true" : "false") << ",\n";
  AppendIndexArray(os, "txns", repro.txns);
  os << ",\n";
  os << "  \"all_faults\": " << (repro.all_faults ? "true" : "false")
     << ",\n";
  AppendIndexArray(os, "faults", repro.faults);
  os << ",\n";
  os << "  \"note\": \"" << EscapeJson(repro.note) << "\"\n";
  os << "}\n";
  return os.str();
}

bool ReproFromJson(const std::string& json, ReproSpec* out,
                   std::string* error) {
  if (json.find("threev-fuzz-repro-v1") == std::string::npos) {
    *error = "missing schema marker threev-fuzz-repro-v1";
    return false;
  }
  ReproSpec repro;
  if (!ParseU64(json, "seed", &repro.seed)) {
    *error = "missing or malformed \"seed\"";
    return false;
  }
  ParseBool(json, "quick", &repro.quick);
  ParseBool(json, "all_txns", &repro.all_txns);
  ParseBool(json, "all_faults", &repro.all_faults);
  ParseIndexArray(json, "txns", &repro.txns);
  ParseIndexArray(json, "faults", &repro.faults);
  ParseString(json, "note", &repro.note);
  *out = std::move(repro);
  return true;
}

FuzzPlan PlanFromRepro(const ReproSpec& repro) {
  FuzzPlan plan = BuildPlan(repro.seed, repro.quick);
  if (repro.all_txns && repro.all_faults) return plan;
  std::vector<size_t> txn_keep;
  std::vector<size_t> fault_keep;
  if (repro.all_txns) {
    for (size_t i = 0; i < plan.txns.size(); ++i) txn_keep.push_back(i);
  } else {
    txn_keep = repro.txns;
  }
  if (repro.all_faults) {
    for (size_t i = 0; i < plan.faults.size(); ++i) fault_keep.push_back(i);
  } else {
    fault_keep = repro.faults;
  }
  return FilterPlan(plan, txn_keep, fault_keep);
}

}  // namespace threev::fuzz
