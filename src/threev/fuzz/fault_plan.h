#ifndef THREEV_FUZZ_FAULT_PLAN_H_
#define THREEV_FUZZ_FAULT_PLAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "threev/common/status.h"
#include "threev/core/cluster.h"
#include "threev/net/sim_net.h"

namespace threev::fuzz {

// A crash choreography: kill `victim` the moment the `nth` delivery of
// `at_type` reaches it (the triggering message dies with the node) and
// restart it `downtime` virtual microseconds later. Promoted from the
// ad-hoc delivery taps that tests/crash_recovery_test.cc used to hand-roll
// per test, so hand-written crash tests and generated fuzz schedules share
// one implementation.
struct CrashPoint {
  MsgType at_type = MsgType::kStartAdvancement;
  NodeId victim = 0;
  uint32_t nth = 1;
  Micros downtime = 20'000;
  // Node whose delivery of `at_type` pulls the trigger. Defaults to the
  // victim; set it to a different node for cross-node choreography ("kill
  // the 2PC root the instant its prepare reaches a participant").
  NodeId trigger_node = kTriggerIsVictim;
  static constexpr NodeId kTriggerIsVictim = ~NodeId{0};
};

// Owns the SimNet delivery tap for its lifetime: counts deliveries, fires
// armed crash points (kill + scheduled restart), and forwards every
// delivered message to an optional observer (the fuzz driver's history
// hasher / counter tally). Single-threaded, like SimNet itself. The
// destructor detaches the tap; scheduled restarts stay valid because they
// capture only the cluster pointer.
class FaultPlan {
 public:
  FaultPlan(SimNet* net, Cluster* cluster);
  ~FaultPlan();

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // Arms one crash point; returns its index for Fired(). Safe to call
  // between (not during) event-loop turns.
  size_t Arm(CrashPoint point);

  bool Fired(size_t index) const { return armed_[index].fired; }
  size_t fired_count() const { return fired_count_; }

  // Deliveries observed per message type (post-liveness, pre-handler),
  // including the crash-triggering deliveries themselves.
  int64_t Delivered(MsgType type) const;

  // Forwarded every observed delivery, before crash points are evaluated
  // (so a crash-triggering message is still observed).
  using Observer = std::function<void(NodeId to, const Message&)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

 private:
  struct Armed {
    CrashPoint point;
    uint32_t seen = 0;
    bool fired = false;
  };

  void OnDelivery(NodeId to, const Message& msg);

  SimNet* net_;
  Cluster* cluster_;
  Observer observer_;
  std::vector<Armed> armed_;
  size_t fired_count_ = 0;
  std::vector<int64_t> delivered_by_type_;
};

// Runs the loop until `pred()` holds or virtual time reaches `deadline`
// (whichever first; also stops if the event queue drains). Returns whether
// the predicate held. The bounded wait is what turns a protocol livelock
// into an oracle failure instead of a hung test.
bool RunUntilDeadline(EventLoop& loop, Micros deadline,
                      const std::function<bool()>& pred);

// One advancement driven to completion: waits out any stale run, starts a
// fresh one and runs the loop until its done-callback fires - all within
// `cap` extra virtual microseconds. Returns the advancement's status, or a
// timeout/internal error if it could not start or finish.
Status DriveAdvancement(SimNet& net, Cluster& cluster,
                        Micros cap = 5'000'000);

}  // namespace threev::fuzz

#endif  // THREEV_FUZZ_FAULT_PLAN_H_
