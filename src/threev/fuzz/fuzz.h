#ifndef THREEV_FUZZ_FUZZ_H_
#define THREEV_FUZZ_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/common/clock.h"
#include "threev/fuzz/plan.h"

namespace threev::fuzz {

// Deterministic simulation testing (DESIGN.md section 13): one seed, one
// single-threaded SimNet run alternating traffic windows (a burst of
// workload transactions, drained to full resolution) with fault windows
// (crash points armed at exact protocol messages, each closed by a driven
// advancement), under whole-run drop/delay/reorder rules - then an oracle
// battery over the quiescent end state.
struct FuzzOptions {
  // Test-only protocol bugs, used to prove the oracles catch them.
  enum class InjectedBug : uint8_t {
    kNone = 0,
    // NodeOptions::test_skip_first_completion on `bug_node`.
    kSkipCompletionCounter = 1,
  };
  InjectedBug injected_bug = InjectedBug::kNone;
  int bug_node = 0;
  // WAL scratch directory; empty derives one from the seed under the
  // system temp dir. Wiped at the start of every run.
  std::string scratch_dir;
  // Virtual-time budgets. A healthy schedule finishes far inside these;
  // exceeding one is itself an oracle failure (liveness), never a hang.
  Micros window_cap = 20'000'000;
  Micros advancement_cap = 5'000'000;
};

struct FuzzResult {
  bool ok = false;
  std::vector<std::string> failures;
  // FNV-1a over every delivered message tuple plus the final per-node
  // state: the run's bit-reproducibility witness.
  uint64_t history_hash = 0;
  size_t committed = 0;
  size_t aborted = 0;
  // Client requests whose acknowledgement died with a killed root (their
  // callbacks never fire; presumed abort cleans up behind them).
  size_t orphans = 0;
  int64_t crashes = 0;
  int64_t injected_drops = 0;
  int64_t injected_delays = 0;
  size_t events = 0;  // plan.EventCount()
  Micros virtual_elapsed = 0;

  std::string Summary() const;
};

FuzzResult RunPlan(const FuzzPlan& plan, const FuzzOptions& options = {});
FuzzResult RunSeed(uint64_t seed, bool quick,
                   const FuzzOptions& options = {});

}  // namespace threev::fuzz

#endif  // THREEV_FUZZ_FUZZ_H_
