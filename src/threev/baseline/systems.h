#ifndef THREEV_BASELINE_SYSTEMS_H_
#define THREEV_BASELINE_SYSTEMS_H_

#include <memory>
#include <string>

#include "threev/baseline/manual_versioning.h"
#include "threev/core/cluster.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/verify/history.h"

namespace threev {

// The four coordination strategies the paper's introduction contrasts.
enum class SystemKind : uint8_t {
  // The paper's contribution. Pure 3V fast path (no locks) when the
  // workload is declared all-commuting; NC3V when it is mixed.
  kThreeV = 0,
  // "Global Synchronization": every transaction - reads included - runs
  // distributed strict 2PL plus two-phase commit. Implemented by forcing
  // every submission through the NC3V non-commuting path.
  kGlobalSync = 1,
  // "No Coordination": no versioning, no locks; reads observe in-flight
  // transactions. Fast and incorrect.
  kNoCoord = 2,
  // "Manual Versioning": period-based batch versions, unsynchronized
  // switch, conservative read delay.
  kManual = 3,
};

const char* SystemKindName(SystemKind kind);

struct SystemConfig {
  SystemKind kind = SystemKind::kThreeV;
  size_t num_nodes = 4;
  uint64_t seed = 1;
  // kThreeV: run nodes in NC3V mode (needed iff the workload submits
  // non-commuting transactions).
  bool mixed_workload = false;
  Micros nc_lock_timeout = 100'000;
  Micros coordinator_poll_interval = 2000;
  Micros manual_safety_delay = 50'000;
  double inject_abort_probability = 0.0;
  // Observability: cluster-based strategies (3V, GlobalSync, NoCoord) record
  // spans into this flight recorder when non-null. Unowned. The manual-
  // versioning baseline predates the span taxonomy and ignores it.
  Tracer* tracer = nullptr;
};

// Uniform driver facade over the four strategies so workloads and benches
// are strategy-agnostic.
class System {
 public:
  virtual ~System() = default;

  virtual uint64_t Submit(NodeId origin, TxnSpec spec,
                          Client::ResultCallback cb) = 0;

  // Requests one version advancement / period switch. Returns false if the
  // strategy has no advancement concept or one is already running.
  virtual bool Advance() { return false; }
  virtual void EnableAutoAdvance(Micros period) { (void)period; }
  virtual void DisableAutoAdvance() {}

  virtual Node& node(size_t i) = 0;
  virtual size_t num_nodes() const = 0;

  // Structural invariants; Ok for strategies that make no such claims.
  virtual Status CheckInvariants() const { return Status::Ok(); }

  virtual const char* name() const = 0;
};

std::unique_ptr<System> MakeSystem(const SystemConfig& config,
                                   Network* network, Metrics* metrics,
                                   HistoryRecorder* history = nullptr);

}  // namespace threev

#endif  // THREEV_BASELINE_SYSTEMS_H_
