#include "threev/baseline/systems.h"

namespace threev {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kThreeV:
      return "3V";
    case SystemKind::kGlobalSync:
      return "GlobalSync";
    case SystemKind::kNoCoord:
      return "NoCoord";
    case SystemKind::kManual:
      return "ManualVersioning";
  }
  return "?";
}

namespace {

// kThreeV / kGlobalSync / kNoCoord share the Cluster engine and differ only
// in node configuration and submission policy.
class ClusterSystem : public System {
 public:
  ClusterSystem(SystemKind kind, const ClusterOptions& options,
                Network* network, Metrics* metrics, HistoryRecorder* history)
      : kind_(kind), cluster_(options, network, metrics, history) {}

  uint64_t Submit(NodeId origin, TxnSpec spec,
                  Client::ResultCallback cb) override {
    if (kind_ == SystemKind::kGlobalSync) {
      // Conventional distributed database: everything is a full-fledged
      // globally synchronized transaction.
      spec.klass = TxnClass::kNonCommuting;
    }
    return cluster_.Submit(origin, spec, std::move(cb));
  }

  bool Advance() override {
    if (kind_ != SystemKind::kThreeV) return false;
    return cluster_.coordinator().StartAdvancement();
  }

  void EnableAutoAdvance(Micros period) override {
    if (kind_ == SystemKind::kThreeV) {
      cluster_.coordinator().EnableAutoAdvance(period);
    }
  }

  void DisableAutoAdvance() override {
    if (kind_ == SystemKind::kThreeV) {
      cluster_.coordinator().DisableAutoAdvance();
    }
  }

  Node& node(size_t i) override { return cluster_.node(i); }
  size_t num_nodes() const override { return cluster_.num_nodes(); }

  Status CheckInvariants() const override {
    // NoCoord never advances, so the invariants hold trivially; GlobalSync
    // shares the same static single-version shape. Check them all.
    return cluster_.CheckInvariants();
  }

  const char* name() const override { return SystemKindName(kind_); }

  Cluster& cluster() { return cluster_; }

 private:
  SystemKind kind_;
  Cluster cluster_;
};

class ManualSystem : public System {
 public:
  ManualSystem(const ManualVersioningOptions& options, Network* network,
               Metrics* metrics, HistoryRecorder* history)
      : system_(options, network, metrics, history) {}

  uint64_t Submit(NodeId origin, TxnSpec spec,
                  Client::ResultCallback cb) override {
    return system_.Submit(origin, spec, std::move(cb));
  }

  bool Advance() override {
    system_.SwitchPeriod();
    return true;
  }

  void EnableAutoAdvance(Micros period) override {
    system_.EnableAutoAdvance(period);
  }

  void DisableAutoAdvance() override { system_.DisableAutoAdvance(); }

  Node& node(size_t i) override { return system_.node(i); }
  size_t num_nodes() const override { return system_.num_nodes(); }

  const char* name() const override {
    return SystemKindName(SystemKind::kManual);
  }

 private:
  ManualVersioningSystem system_;
};

}  // namespace

std::unique_ptr<System> MakeSystem(const SystemConfig& config,
                                   Network* network, Metrics* metrics,
                                   HistoryRecorder* history) {
  switch (config.kind) {
    case SystemKind::kThreeV: {
      ClusterOptions options;
      options.num_nodes = config.num_nodes;
      options.mode =
          config.mixed_workload ? NodeMode::kNC3V : NodeMode::kPure3V;
      options.read_policy = ReadPolicy::kReadVersion;
      options.nc_lock_timeout = config.nc_lock_timeout;
      options.inject_abort_probability = config.inject_abort_probability;
      options.coordinator_poll_interval = config.coordinator_poll_interval;
      options.seed = config.seed;
      options.tracer = config.tracer;
      return std::make_unique<ClusterSystem>(config.kind, options, network,
                                             metrics, history);
    }
    case SystemKind::kGlobalSync: {
      ClusterOptions options;
      options.num_nodes = config.num_nodes;
      options.mode = NodeMode::kNC3V;
      options.read_policy = ReadPolicy::kReadVersion;
      options.nc_lock_timeout = config.nc_lock_timeout;
      options.coordinator_poll_interval = config.coordinator_poll_interval;
      options.seed = config.seed;
      options.tracer = config.tracer;
      return std::make_unique<ClusterSystem>(config.kind, options, network,
                                             metrics, history);
    }
    case SystemKind::kNoCoord: {
      ClusterOptions options;
      options.num_nodes = config.num_nodes;
      options.mode = NodeMode::kPure3V;
      options.read_policy = ReadPolicy::kCurrentVersion;
      options.inject_abort_probability = config.inject_abort_probability;
      options.seed = config.seed;
      options.tracer = config.tracer;
      return std::make_unique<ClusterSystem>(config.kind, options, network,
                                             metrics, history);
    }
    case SystemKind::kManual: {
      ManualVersioningOptions options;
      options.num_nodes = config.num_nodes;
      options.safety_delay = config.manual_safety_delay;
      options.seed = config.seed;
      return std::make_unique<ManualSystem>(options, network, metrics,
                                            history);
    }
  }
  return nullptr;
}

}  // namespace threev
