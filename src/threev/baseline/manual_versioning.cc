#include "threev/baseline/manual_versioning.h"

namespace threev {

ManualVersioningSystem::ManualVersioningSystem(
    const ManualVersioningOptions& options, Network* network,
    Metrics* metrics, HistoryRecorder* history)
    : network_(network), safety_delay_(options.safety_delay) {
  for (size_t i = 0; i < options.num_nodes; ++i) {
    NodeOptions node_options;
    node_options.id = static_cast<NodeId>(i);
    node_options.num_nodes = options.num_nodes;
    node_options.mode = NodeMode::kPure3V;
    node_options.read_policy = ReadPolicy::kReadVersion;
    node_options.version_assignment = VersionAssignment::kLocalPeriod;
    node_options.seed = options.seed;
    nodes_.push_back(
        std::make_unique<Node>(node_options, network, metrics, history));
    Node* node = nodes_.back().get();
    network->RegisterEndpoint(
        node->id(), [node](const Message& m) { node->HandleMessage(m); });
  }
  driver_id_ = static_cast<NodeId>(options.num_nodes);
  // The driver only broadcasts; node acks are accepted and dropped.
  network->RegisterEndpoint(driver_id_, [](const Message&) {});
  NodeId client_id = driver_id_ + 1;
  client_ = std::make_unique<Client>(client_id, network);
  Client* client = client_.get();
  network->RegisterEndpoint(
      client_id, [client](const Message& m) { client->HandleMessage(m); });
}

uint64_t ManualVersioningSystem::Submit(NodeId origin, const TxnSpec& spec,
                                        Client::ResultCallback cb) {
  return client_->Submit(origin, spec, std::move(cb));
}

void ManualVersioningSystem::SwitchPeriod() {
  Version new_period, new_readable, gc_below;
  {
    MutexLock lock(mu_);
    period_ = NextVersion(period_);
    new_period = period_;
    // Becomes readable after the safety delay.
    new_readable = NextVersion(readable_);
    gc_below = new_readable >= 1 ? PrevVersion(new_readable) : 0;
  }
  for (auto& node : nodes_) {
    Message m;
    m.type = MsgType::kStartAdvancement;
    m.from = driver_id_;
    m.version = new_period;
    network_->Send(node->id(), std::move(m));
  }
  // After the conservative delay, hope all stragglers finished and expose
  // the closed period to readers. No quiescence check - this is the point.
  network_->ScheduleAfter(safety_delay_, [this, new_readable, gc_below] {
    {
      MutexLock lock(mu_);
      if (new_readable > readable_) readable_ = new_readable;
    }
    for (auto& node : nodes_) {
      Message m;
      m.type = MsgType::kReadVersionAdvance;
      m.from = driver_id_;
      m.version = new_readable;
      network_->Send(node->id(), std::move(m));
      if (gc_below > 0) {
        Message g;
        g.type = MsgType::kGarbageCollect;
        g.from = driver_id_;
        g.version = gc_below;
        network_->Send(node->id(), std::move(g));
      }
    }
  });
}

void ManualVersioningSystem::EnableAutoAdvance(Micros period) {
  {
    MutexLock lock(mu_);
    if (auto_enabled_) {
      auto_period_ = period;
      return;
    }
    auto_enabled_ = true;
    auto_period_ = period;
  }
  ScheduleAutoTick();
}

void ManualVersioningSystem::DisableAutoAdvance() {
  MutexLock lock(mu_);
  auto_enabled_ = false;
}

void ManualVersioningSystem::ScheduleAutoTick() {
  Micros period;
  {
    MutexLock lock(mu_);
    if (!auto_enabled_) return;
    period = auto_period_;
  }
  network_->ScheduleAfter(period, [this] {
    {
      MutexLock lock(mu_);
      if (!auto_enabled_) return;
    }
    SwitchPeriod();
    ScheduleAutoTick();
  });
}

}  // namespace threev
