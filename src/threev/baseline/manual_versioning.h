#ifndef THREEV_BASELINE_MANUAL_VERSIONING_H_
#define THREEV_BASELINE_MANUAL_VERSIONING_H_

#include <memory>
#include <vector>

#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/core/cluster.h"
#include "threev/core/node.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/verify/history.h"

namespace threev {

struct ManualVersioningOptions {
  size_t num_nodes = 3;
  // Conservative delay between switching nodes to a new update period and
  // allowing reads on the previous one ("some time after the month ends,
  // we hope that all updates have been applied", Section 1). Too small =>
  // reads see partial transactions; large => extra staleness.
  Micros safety_delay = 50'000;
  uint64_t seed = 1;
};

// The "Manual Versioning" strawman of Section 1: period-based batch
// versions with an unsynchronized switch and a fixed safety delay before
// the closed period becomes readable. No quiescence detection, no version
// inference, no dual writes: a transaction in flight across the switch
// splits its writes between periods, which is exactly the correctness gap
// the 3V algorithm closes.
//
// Reuses the core Node with VersionAssignment::kLocalPeriod; the "driver"
// below plays the role of the administrative calendar job.
class ManualVersioningSystem {
 public:
  ManualVersioningSystem(const ManualVersioningOptions& options,
                         Network* network, Metrics* metrics,
                         HistoryRecorder* history = nullptr);

  ManualVersioningSystem(const ManualVersioningSystem&) = delete;
  ManualVersioningSystem& operator=(const ManualVersioningSystem&) = delete;

  size_t num_nodes() const { return nodes_.size(); }
  Node& node(size_t i) { return *nodes_[i]; }
  Client& client() { return *client_; }

  uint64_t Submit(NodeId origin, const TxnSpec& spec,
                  Client::ResultCallback cb);

  // Switches every node to a new update period (unsynchronized broadcast)
  // and schedules the read-period advance safety_delay later.
  void SwitchPeriod() EXCLUDES(mu_);

  void EnableAutoAdvance(Micros period) EXCLUDES(mu_);
  void DisableAutoAdvance() EXCLUDES(mu_);

 private:
  void ScheduleAutoTick() EXCLUDES(mu_);

  Network* network_;
  Micros safety_delay_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Client> client_;
  NodeId driver_id_;

  Mutex mu_;
  // Current accumulation period (= nodes' vu).
  Version period_ GUARDED_BY(mu_) = 1;
  // Latest readable period (= nodes' vr).
  Version readable_ GUARDED_BY(mu_) = 0;
  bool auto_enabled_ GUARDED_BY(mu_) = false;
  Micros auto_period_ GUARDED_BY(mu_) = 0;
};

}  // namespace threev

#endif  // THREEV_BASELINE_MANUAL_VERSIONING_H_
