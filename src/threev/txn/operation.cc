#include "threev/txn/operation.h"

#include <algorithm>
#include <sstream>

namespace threev {

bool Value::ContainsId(uint64_t id) const {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << "{num=" << num;
  if (!ids.empty()) {
    os << " ids=[";
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i) os << ",";
      os << ids[i];
    }
    os << "]";
  }
  if (!str.empty()) os << " str=\"" << str << "\"";
  os << "}";
  return os.str();
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kGet:
      return "Get";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kInsert:
      return "Insert";
    case OpKind::kRemove:
      return "Remove";
    case OpKind::kPut:
      return "Put";
    case OpKind::kMultiply:
      return "Multiply";
    case OpKind::kScan:
      return "Scan";
  }
  return "?";
}

bool OpWrites(OpKind kind) {
  return kind != OpKind::kGet && kind != OpKind::kScan;
}

bool OpIsCommuting(OpKind kind) {
  switch (kind) {
    case OpKind::kGet:
    case OpKind::kScan:
    case OpKind::kAdd:
    case OpKind::kInsert:
    case OpKind::kRemove:
      return true;
    case OpKind::kPut:
    case OpKind::kMultiply:
      return false;
  }
  return false;
}

void Operation::ApplyTo(Value& v) const {
  switch (kind) {
    case OpKind::kGet:
    case OpKind::kScan:
      break;
    case OpKind::kAdd:
      v.num += arg;
      break;
    case OpKind::kInsert:
      if (!v.ContainsId(static_cast<uint64_t>(arg))) {
        v.ids.push_back(static_cast<uint64_t>(arg));
      }
      break;
    case OpKind::kRemove: {
      auto it = std::find(v.ids.begin(), v.ids.end(),
                          static_cast<uint64_t>(arg));
      if (it != v.ids.end()) v.ids.erase(it);
      break;
    }
    case OpKind::kPut:
      v.str = payload;
      break;
    case OpKind::kMultiply:
      v.num *= arg;
      break;
  }
}

bool Operation::Invert(Operation& out) const {
  switch (kind) {
    case OpKind::kAdd:
      out = OpAdd(key, -arg);
      return true;
    case OpKind::kInsert:
      out = OpRemove(key, static_cast<uint64_t>(arg));
      return true;
    case OpKind::kRemove:
      out = OpInsert(key, static_cast<uint64_t>(arg));
      return true;
    case OpKind::kGet:
    case OpKind::kScan:
    case OpKind::kPut:
    case OpKind::kMultiply:
      return false;
  }
  return false;
}

std::string Operation::ToString() const {
  std::ostringstream os;
  os << OpKindName(kind) << "(" << key;
  if (kind == OpKind::kAdd || kind == OpKind::kInsert ||
      kind == OpKind::kRemove || kind == OpKind::kMultiply) {
    os << "," << arg;
  } else if (kind == OpKind::kPut) {
    os << ",\"" << payload << "\"";
  }
  os << ")";
  return os.str();
}

Operation OpGet(std::string key) {
  return Operation{OpKind::kGet, std::move(key), 0, ""};
}
Operation OpScan(std::string prefix) {
  return Operation{OpKind::kScan, std::move(prefix), 0, ""};
}
Operation OpAdd(std::string key, int64_t delta) {
  return Operation{OpKind::kAdd, std::move(key), delta, ""};
}
Operation OpInsert(std::string key, uint64_t id) {
  return Operation{OpKind::kInsert, std::move(key), static_cast<int64_t>(id),
                   ""};
}
Operation OpRemove(std::string key, uint64_t id) {
  return Operation{OpKind::kRemove, std::move(key), static_cast<int64_t>(id),
                   ""};
}
Operation OpPut(std::string key, std::string value) {
  return Operation{OpKind::kPut, std::move(key), 0, std::move(value)};
}
Operation OpMultiply(std::string key, int64_t factor) {
  return Operation{OpKind::kMultiply, std::move(key), factor, ""};
}

}  // namespace threev
