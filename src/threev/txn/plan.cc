#include "threev/txn/plan.h"

#include <algorithm>
#include <sstream>

namespace threev {

size_t SubtxnPlan::CountSubtxns() const {
  size_t n = 1;
  for (const auto& c : children) n += c.CountSubtxns();
  return n;
}

namespace {
void CollectParticipants(const SubtxnPlan& plan, std::vector<NodeId>& out) {
  out.push_back(plan.node);
  for (const auto& c : plan.children) CollectParticipants(c, out);
}

bool PlanHasWrites(const SubtxnPlan& plan) {
  for (const auto& op : plan.ops) {
    if (OpWrites(op.kind)) return true;
  }
  for (const auto& c : plan.children) {
    if (PlanHasWrites(c)) return true;
  }
  return false;
}

bool PlanAllCommuting(const SubtxnPlan& plan) {
  for (const auto& op : plan.ops) {
    if (!OpIsCommuting(op.kind)) return false;
  }
  for (const auto& c : plan.children) {
    if (!PlanAllCommuting(c)) return false;
  }
  return true;
}
}  // namespace

std::vector<NodeId> SubtxnPlan::Participants() const {
  std::vector<NodeId> nodes;
  CollectParticipants(*this, nodes);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

Status SubtxnPlan::Validate(size_t num_nodes, bool require_commuting) const {
  if (node >= num_nodes) {
    return Status::InvalidArgument("subtransaction targets unknown node " +
                                   std::to_string(node));
  }
  for (const auto& op : ops) {
    if (op.key.empty()) {
      return Status::InvalidArgument("operation with empty key");
    }
    if (require_commuting && !OpIsCommuting(op.kind)) {
      return Status::InvalidArgument(
          std::string("non-commuting op ") + OpKindName(op.kind) +
          " in a well-behaved transaction; declare TxnClass::kNonCommuting");
    }
  }
  for (const auto& c : children) {
    Status s = c.Validate(num_nodes, require_commuting);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::string SubtxnPlan::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad << "@node" << node << " [";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i) os << " ";
    os << ops[i].ToString();
  }
  os << "]\n";
  for (const auto& c : children) os << c.ToString(indent + 1);
  return os.str();
}

void TxnSpec::DeduceFlags() {
  read_only = !PlanHasWrites(root);
  klass = PlanAllCommuting(root) ? TxnClass::kWellBehaved
                                 : TxnClass::kNonCommuting;
}

namespace {
bool PlanHasScans(const SubtxnPlan& plan) {
  for (const auto& op : plan.ops) {
    if (op.kind == OpKind::kScan) return true;
  }
  for (const auto& c : plan.children) {
    if (PlanHasScans(c)) return true;
  }
  return false;
}
}  // namespace

Status TxnSpec::Validate(size_t num_nodes) const {
  if (read_only && PlanHasWrites(root)) {
    return Status::InvalidArgument("read_only transaction contains writes");
  }
  if (!read_only && PlanHasScans(root)) {
    // Scans are stable only against the frozen read version; inside an
    // update (or non-commuting) transaction they would need phantom
    // protection, which the 3V model does not provide.
    return Status::InvalidArgument(
        "kScan is only permitted in read-only transactions");
  }
  return root.Validate(num_nodes,
                       /*require_commuting=*/klass == TxnClass::kWellBehaved);
}

Result<SubtxnPlan> MakeCompensationPlan(const SubtxnPlan& plan) {
  SubtxnPlan comp;
  comp.node = plan.node;
  // Inverse operations in reverse order. (For commuting ops the order is
  // immaterial, but reverse order is also correct for any future
  // non-commuting invertible ops.)
  for (auto it = plan.ops.rbegin(); it != plan.ops.rend(); ++it) {
    if (it->kind == OpKind::kGet) continue;
    Operation inv;
    if (!it->Invert(inv)) {
      return Status::InvalidArgument("operation " + it->ToString() +
                                     " is not invertible");
    }
    comp.ops.push_back(std::move(inv));
  }
  for (const auto& c : plan.children) {
    Result<SubtxnPlan> sub = MakeCompensationPlan(c);
    if (!sub.ok()) return sub.status();
    comp.children.push_back(std::move(sub).value());
  }
  return comp;
}

}  // namespace threev
