#ifndef THREEV_TXN_PLAN_H_
#define THREEV_TXN_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/common/status.h"
#include "threev/txn/operation.h"

namespace threev {

// A transaction is a tree of subtransactions (the tree model of [Mohan et
// al., R*], Section 2.1 of the paper): the root subtransaction executes at
// the origin node, then spawns child subtransactions at other (or the same)
// nodes, which may spawn further children.
//
// Plans are declared up front: each subtransaction lists its operations and
// its child plans. Declared plans let local lock acquisition order keys
// deterministically (no local deadlock) and let the library derive
// compensation plans mechanically.
struct SubtxnPlan {
  NodeId node = 0;
  std::vector<Operation> ops;
  std::vector<SubtxnPlan> children;

  // Total number of subtransactions in this subtree (including itself).
  size_t CountSubtxns() const;

  // All distinct nodes visited by this subtree.
  std::vector<NodeId> Participants() const;

  // Validation: nodes in range, non-commuting ops flagged, etc.
  Status Validate(size_t num_nodes, bool require_commuting) const;

  std::string ToString(int indent = 0) const;
};

// How the transaction is handled by the system.
enum class TxnClass : uint8_t {
  // Update subtransactions commute with those of every other well-behaved
  // transaction (Definition 3.1). Runs the 3V fast path: no global locks,
  // no global commit.
  kWellBehaved = 0,
  // May contain non-commuting operations. Runs NC3V (Section 5): version
  // gate, non-commuting locks, two-phase commit.
  kNonCommuting = 1,
};

struct TxnSpec {
  SubtxnPlan root;
  bool read_only = false;
  TxnClass klass = TxnClass::kWellBehaved;

  // Computes read_only / klass from the ops (read_only if no op writes;
  // non-commuting if any op is non-commuting).
  void DeduceFlags();

  Status Validate(size_t num_nodes) const;
};

// Outcome of a transaction, delivered to the submitting client when the
// entire subtransaction tree has terminated (plus, for non-commuting
// transactions, when two-phase commit has resolved).
struct TxnResult {
  TxnId id = 0;
  Status status;
  Version version = 0;  // version the transaction executed in
  // Key -> value observed, merged over all subtransactions' kGet ops.
  std::map<std::string, Value> reads;
  Micros submit_time = 0;
  Micros complete_time = 0;

  Micros latency() const { return complete_time - submit_time; }
};

// Builds a compensating plan for an executed (or partially executed)
// well-behaved plan: same tree shape, each operation replaced by its inverse
// in reverse order, reads dropped. Fails if any op is non-invertible.
Result<SubtxnPlan> MakeCompensationPlan(const SubtxnPlan& plan);

// --- Small fluent builder used by examples/tests -------------------------
//
//   TxnSpec spec = TxnBuilder(/*origin=*/0)
//                      .Add("alice.balance", 500)
//                      .Child(1, {OpAdd("alice.radiology", 120)})
//                      .Build();
class TxnBuilder {
 public:
  explicit TxnBuilder(NodeId origin) { spec_.root.node = origin; }

  TxnBuilder& Op(Operation op) {
    spec_.root.ops.push_back(std::move(op));
    return *this;
  }
  TxnBuilder& Add(std::string key, int64_t delta) {
    return Op(OpAdd(std::move(key), delta));
  }
  TxnBuilder& Get(std::string key) { return Op(OpGet(std::move(key))); }
  TxnBuilder& Scan(std::string prefix) {
    return Op(OpScan(std::move(prefix)));
  }
  TxnBuilder& Insert(std::string key, uint64_t id) {
    return Op(OpInsert(std::move(key), id));
  }
  TxnBuilder& Put(std::string key, std::string value) {
    return Op(OpPut(std::move(key), std::move(value)));
  }

  // Adds a leaf child subtransaction at `node` with the given ops.
  TxnBuilder& Child(NodeId node, std::vector<Operation> ops) {
    SubtxnPlan child;
    child.node = node;
    child.ops = std::move(ops);
    spec_.root.children.push_back(std::move(child));
    return *this;
  }

  // Adds a fully formed child subtree.
  TxnBuilder& ChildPlan(SubtxnPlan child) {
    spec_.root.children.push_back(std::move(child));
    return *this;
  }

  // Finalizes: deduces read_only / klass flags from the ops.
  TxnSpec Build() {
    spec_.DeduceFlags();
    return spec_;
  }

 private:
  TxnSpec spec_;
};

}  // namespace threev

#endif  // THREEV_TXN_PLAN_H_
