#ifndef THREEV_TXN_OPERATION_H_
#define THREEV_TXN_OPERATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace threev {

// The value stored for a data item. Data recording systems keep running
// summaries plus recorded observations (Section 6 of the paper); we model
// both in one record:
//   num - a numeric summary (account balance, items sold). Updated by kAdd.
//   ids - a set of recorded observation ids (call records, visit charges).
//         Updated by kInsert / kRemove. Set semantics => commuting.
//   str - an opaque payload. Updated by kPut (non-commuting overwrite);
//         also used by benches to inflate record size for copy-cost studies.
struct Value {
  int64_t num = 0;
  std::vector<uint64_t> ids;
  std::string str;

  size_t ByteSize() const { return 8 + ids.size() * 8 + str.size(); }

  // Whether `id` is present in the ids set.
  bool ContainsId(uint64_t id) const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.num == b.num && a.ids == b.ids && a.str == b.str;
  }
};

// Primitive operations a subtransaction performs on its node's data.
//
// Commutativity classification (per Definition 3.1, applied to the
// operations our workloads use):
//   kGet            read-only.
//   kAdd            commutes with kAdd / kInsert / kRemove.
//   kInsert/kRemove commute with each other (set semantics; ids are unique
//                   per transaction so remove never races an insert of the
//                   same id from a different transaction).
//   kPut, kMultiply do NOT commute with kAdd/kPut; transactions containing
//                   them must be declared TxnClass::kNonCommuting and run
//                   through the NC3V path (Section 5).
enum class OpKind : uint8_t {
  kGet = 0,
  kAdd = 1,
  kInsert = 2,
  kRemove = 3,
  kPut = 4,
  kMultiply = 5,
  // Prefix scan: reads every record whose key starts with `key`, at the
  // transaction's version (bill generation, audits). Only permitted in
  // read-only transactions: they run against a frozen version so no
  // predicate locking is needed; inside update or non-commuting
  // transactions a scan would require phantom protection, which the 3V
  // model does not provide (TxnSpec::Validate rejects it).
  kScan = 6,
};

const char* OpKindName(OpKind kind);

// Whether an operation of this kind writes the record.
bool OpWrites(OpKind kind);

// Whether the operation commutes with every other commuting-class operation
// (i.e., is allowed inside a well-behaved transaction).
bool OpIsCommuting(OpKind kind);

struct Operation {
  OpKind kind = OpKind::kGet;
  std::string key;
  int64_t arg = 0;      // kAdd: delta; kInsert/kRemove: id; kMultiply: factor
  std::string payload;  // kPut: new str value

  // Applies this operation to `v` in place. kGet is a no-op here (reads are
  // collected by the executor).
  void ApplyTo(Value& v) const;

  // Returns the inverse operation for compensation. kPut/kMultiply and kGet
  // have no context-free inverse and return false.
  bool Invert(Operation& out) const;

  std::string ToString() const;

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.kind == b.kind && a.key == b.key && a.arg == b.arg &&
           a.payload == b.payload;
  }
};

// Convenience constructors.
Operation OpGet(std::string key);
Operation OpScan(std::string prefix);
Operation OpAdd(std::string key, int64_t delta);
Operation OpInsert(std::string key, uint64_t id);
Operation OpRemove(std::string key, uint64_t id);
Operation OpPut(std::string key, std::string value);
Operation OpMultiply(std::string key, int64_t factor);

}  // namespace threev

#endif  // THREEV_TXN_OPERATION_H_
