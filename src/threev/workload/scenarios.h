#ifndef THREEV_WORKLOAD_SCENARIOS_H_
#define THREEV_WORKLOAD_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/common/ids.h"
#include "threev/txn/plan.h"

namespace threev {

// Concrete transaction builders for the three application domains the paper
// motivates. Each function returns a ready-to-submit TxnSpec; node ids map
// to departments / switches / stores.

// ---- Hospital billing (the paper's Section 1 example) --------------------

struct HospitalCharge {
  NodeId department;  // node holding this department's accounting system
  int64_t amount;
  std::string procedure;
};

// A patient visit: records one charge per involved department and bumps the
// per-department balance due - the paper's T1 = {w11(x1), w12(x2)}.
// `visit_id` must be globally unique (it is the record id the checker
// tracks).
TxnSpec MakeHospitalVisit(uint64_t patient, uint64_t visit_id,
                          const std::vector<HospitalCharge>& charges);

// A balance inquiry across the given departments - the paper's
// T2 = {r21(x1), r22(x2)}.
TxnSpec MakeHospitalInquiry(uint64_t patient,
                            const std::vector<NodeId>& departments);

std::string HospitalBalanceKey(uint64_t patient, NodeId department);
std::string HospitalChargesKey(uint64_t patient, NodeId department);

// ---- Telephone call recording (AT&T's motivating application) ------------

// A call traverses several switches; each records the call and adds its leg
// duration to the subscriber's usage summary on that switch.
TxnSpec MakeCallRecord(uint64_t subscriber, uint64_t call_id,
                       const std::vector<NodeId>& switches,
                       int64_t duration_secs);

// Billing statement: total usage of a subscriber over the given switches.
TxnSpec MakeBillingQuery(uint64_t subscriber,
                         const std::vector<NodeId>& switches);

std::string UsageKey(uint64_t subscriber, NodeId switch_node);
std::string CallLogKey(uint64_t subscriber, NodeId switch_node);

// ---- Point-of-sale inventory ---------------------------------------------

struct SaleLine {
  NodeId store;  // node holding this store's inventory
  uint64_t sku;
  int64_t quantity;
};

// A multi-store order: decrements stock and counts units sold per store.
TxnSpec MakeSale(uint64_t order_id, const std::vector<SaleLine>& lines);

// Chain-wide stock audit for one SKU.
TxnSpec MakeStockAudit(uint64_t sku, const std::vector<NodeId>& stores);

// A price change: an overwrite, hence non-commuting - it must be declared
// TxnClass::kNonCommuting and will flow through the NC3V path.
TxnSpec MakePriceChange(uint64_t sku, const std::vector<NodeId>& stores,
                        const std::string& new_price);

std::string StockKey(uint64_t sku, NodeId store);
std::string SoldKey(uint64_t sku, NodeId store);
std::string PriceKey(uint64_t sku, NodeId store);

// ---- Factory operations monitoring ----------------------------------------
//
// The paper's Section 6(a): automated factories record sensor observations
// and maintain derived summaries (parts produced, alarm counts). A reading
// spans the line's local node and the plant-wide aggregation node.

// Records one sensor reading: raw observation on the line's node plus
// rollups on both the line node and the plant aggregate node.
TxnSpec MakeSensorReading(uint64_t line, uint64_t reading_id,
                          NodeId line_node, NodeId plant_node,
                          int64_t parts_delta, bool alarm);

// Plant dashboard query: per-line rollups at the line node and the plant
// totals, all from one consistent version.
TxnSpec MakeDashboardQuery(uint64_t line, NodeId line_node,
                           NodeId plant_node);

std::string LinePartsKey(uint64_t line, NodeId node);
std::string LineAlarmsKey(uint64_t line, NodeId node);
std::string LineLogKey(uint64_t line, NodeId node);
std::string PlantPartsKey(NodeId plant_node);

}  // namespace threev

#endif  // THREEV_WORKLOAD_SCENARIOS_H_
