#include "threev/workload/scenarios.h"

namespace threev {

namespace {
// Builds a txn whose root is placed at the first involved node and one
// child subtransaction at each further node, filled by `fill(plan, node)`.
template <typename Fill>
TxnSpec FanOut(const std::vector<NodeId>& nodes, Fill fill) {
  TxnSpec spec;
  spec.root.node = nodes.empty() ? 0 : nodes[0];
  for (size_t i = 0; i < nodes.size(); ++i) {
    SubtxnPlan* target;
    if (i == 0) {
      target = &spec.root;
    } else {
      SubtxnPlan child;
      child.node = nodes[i];
      spec.root.children.push_back(std::move(child));
      target = &spec.root.children.back();
    }
    fill(*target, nodes[i]);
  }
  spec.DeduceFlags();
  return spec;
}
}  // namespace

// ---- Hospital -------------------------------------------------------------

std::string HospitalBalanceKey(uint64_t patient, NodeId department) {
  return "hosp/bal/" + std::to_string(patient) + "@" +
         std::to_string(department);
}

std::string HospitalChargesKey(uint64_t patient, NodeId department) {
  return "hosp/charges/" + std::to_string(patient) + "@" +
         std::to_string(department);
}

TxnSpec MakeHospitalVisit(uint64_t patient, uint64_t visit_id,
                          const std::vector<HospitalCharge>& charges) {
  std::vector<NodeId> nodes;
  for (const auto& c : charges) nodes.push_back(c.department);
  size_t i = 0;
  return FanOut(nodes, [&](SubtxnPlan& plan, NodeId node) {
    (void)node;
    const HospitalCharge& c = charges[i++];
    plan.ops.push_back(
        OpAdd(HospitalBalanceKey(patient, c.department), c.amount));
    plan.ops.push_back(
        OpInsert(HospitalChargesKey(patient, c.department), visit_id));
  });
}

TxnSpec MakeHospitalInquiry(uint64_t patient,
                            const std::vector<NodeId>& departments) {
  return FanOut(departments, [&](SubtxnPlan& plan, NodeId node) {
    plan.ops.push_back(OpGet(HospitalBalanceKey(patient, node)));
    plan.ops.push_back(OpGet(HospitalChargesKey(patient, node)));
  });
}

// ---- Telecom ----------------------------------------------------------------

std::string UsageKey(uint64_t subscriber, NodeId switch_node) {
  return "tel/usage/" + std::to_string(subscriber) + "@" +
         std::to_string(switch_node);
}

std::string CallLogKey(uint64_t subscriber, NodeId switch_node) {
  return "tel/calls/" + std::to_string(subscriber) + "@" +
         std::to_string(switch_node);
}

TxnSpec MakeCallRecord(uint64_t subscriber, uint64_t call_id,
                       const std::vector<NodeId>& switches,
                       int64_t duration_secs) {
  return FanOut(switches, [&](SubtxnPlan& plan, NodeId node) {
    plan.ops.push_back(OpAdd(UsageKey(subscriber, node), duration_secs));
    plan.ops.push_back(OpInsert(CallLogKey(subscriber, node), call_id));
  });
}

TxnSpec MakeBillingQuery(uint64_t subscriber,
                         const std::vector<NodeId>& switches) {
  return FanOut(switches, [&](SubtxnPlan& plan, NodeId node) {
    plan.ops.push_back(OpGet(UsageKey(subscriber, node)));
    plan.ops.push_back(OpGet(CallLogKey(subscriber, node)));
  });
}

// ---- Point of sale ----------------------------------------------------------

std::string StockKey(uint64_t sku, NodeId store) {
  return "pos/stock/" + std::to_string(sku) + "@" + std::to_string(store);
}

std::string SoldKey(uint64_t sku, NodeId store) {
  return "pos/sold/" + std::to_string(sku) + "@" + std::to_string(store);
}

std::string PriceKey(uint64_t sku, NodeId store) {
  return "pos/price/" + std::to_string(sku) + "@" + std::to_string(store);
}

TxnSpec MakeSale(uint64_t order_id, const std::vector<SaleLine>& lines) {
  std::vector<NodeId> nodes;
  for (const auto& l : lines) nodes.push_back(l.store);
  size_t i = 0;
  return FanOut(nodes, [&](SubtxnPlan& plan, NodeId node) {
    (void)node;
    const SaleLine& l = lines[i++];
    plan.ops.push_back(OpAdd(StockKey(l.sku, l.store), -l.quantity));
    plan.ops.push_back(OpAdd(SoldKey(l.sku, l.store), l.quantity));
    plan.ops.push_back(OpInsert("pos/orders/" + std::to_string(l.sku) + "@" +
                                    std::to_string(l.store),
                                order_id));
  });
}

TxnSpec MakeStockAudit(uint64_t sku, const std::vector<NodeId>& stores) {
  return FanOut(stores, [&](SubtxnPlan& plan, NodeId node) {
    plan.ops.push_back(OpGet(StockKey(sku, node)));
    plan.ops.push_back(OpGet(SoldKey(sku, node)));
  });
}

TxnSpec MakePriceChange(uint64_t sku, const std::vector<NodeId>& stores,
                        const std::string& new_price) {
  return FanOut(stores, [&](SubtxnPlan& plan, NodeId node) {
    plan.ops.push_back(OpPut(PriceKey(sku, node), new_price));
  });
}

// ---- Factory monitoring -----------------------------------------------------

std::string LinePartsKey(uint64_t line, NodeId node) {
  return "fab/parts/" + std::to_string(line) + "@" + std::to_string(node);
}

std::string LineAlarmsKey(uint64_t line, NodeId node) {
  return "fab/alarms/" + std::to_string(line) + "@" + std::to_string(node);
}

std::string LineLogKey(uint64_t line, NodeId node) {
  return "fab/log/" + std::to_string(line) + "@" + std::to_string(node);
}

std::string PlantPartsKey(NodeId plant_node) {
  return "fab/plant/parts@" + std::to_string(plant_node);
}

TxnSpec MakeSensorReading(uint64_t line, uint64_t reading_id,
                          NodeId line_node, NodeId plant_node,
                          int64_t parts_delta, bool alarm) {
  TxnSpec spec;
  spec.root.node = line_node;
  spec.root.ops.push_back(OpInsert(LineLogKey(line, line_node), reading_id));
  spec.root.ops.push_back(OpAdd(LinePartsKey(line, line_node), parts_delta));
  if (alarm) {
    spec.root.ops.push_back(OpAdd(LineAlarmsKey(line, line_node), 1));
  }
  if (plant_node != line_node) {
    SubtxnPlan rollup;
    rollup.node = plant_node;
    rollup.ops.push_back(OpAdd(PlantPartsKey(plant_node), parts_delta));
    rollup.ops.push_back(
        OpInsert("fab/plant/log@" + std::to_string(plant_node), reading_id));
    spec.root.children.push_back(std::move(rollup));
  } else {
    spec.root.ops.push_back(OpAdd(PlantPartsKey(plant_node), parts_delta));
  }
  spec.DeduceFlags();
  return spec;
}

TxnSpec MakeDashboardQuery(uint64_t line, NodeId line_node,
                           NodeId plant_node) {
  TxnSpec spec;
  spec.root.node = line_node;
  spec.root.ops.push_back(OpGet(LinePartsKey(line, line_node)));
  spec.root.ops.push_back(OpGet(LineAlarmsKey(line, line_node)));
  if (plant_node != line_node) {
    SubtxnPlan agg;
    agg.node = plant_node;
    agg.ops.push_back(OpGet(PlantPartsKey(plant_node)));
    spec.root.children.push_back(std::move(agg));
  } else {
    spec.root.ops.push_back(OpGet(PlantPartsKey(plant_node)));
  }
  spec.DeduceFlags();
  return spec;
}

}  // namespace threev
