#include "threev/workload/workload.h"

#include <algorithm>
#include <functional>

#include "threev/common/logging.h"

namespace threev {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.num_entities, options.zipf_theta) {
  THREEV_CHECK(options.fanout >= 1);
  THREEV_CHECK(options.num_nodes >= 1);
}

std::vector<NodeId> WorkloadGenerator::HomeNodes(uint64_t entity) const {
  size_t fanout = std::min(options_.fanout, options_.num_nodes);
  std::vector<NodeId> nodes;
  nodes.reserve(fanout);
  // Deterministic spread: entity e lives on nodes h(e), h(e)+1, ...
  uint64_t h = entity * 0x9e3779b97f4a7c15ull >> 33;
  for (size_t i = 0; i < fanout; ++i) {
    nodes.push_back(static_cast<NodeId>((h + i) % options_.num_nodes));
  }
  return nodes;
}

std::string WorkloadGenerator::SummaryKey(uint64_t entity, NodeId node) {
  return "bal/" + std::to_string(entity) + "@" + std::to_string(node);
}

std::string WorkloadGenerator::RecordKey(uint64_t entity, NodeId node) {
  return "rec/" + std::to_string(entity) + "@" + std::to_string(node);
}

TxnSpec WorkloadGenerator::MakeUpdate(uint64_t entity, bool non_commuting) {
  std::vector<NodeId> nodes = HomeNodes(entity);
  // The recording event may originate at any of the entity's home nodes (a
  // call can start at any switch). This also means writes to one key
  // arrive over different channels, which is what makes old-version
  // stragglers - and hence dual-version writes - possible at all.
  std::rotate(nodes.begin(), nodes.begin() + rng_.Uniform(nodes.size()),
              nodes.end());
  uint64_t record_id = next_record_id_++;
  int64_t amount = rng_.UniformRange(1, 100);

  TxnSpec spec;
  spec.root.node = nodes[0];
  for (size_t i = 0; i < nodes.size(); ++i) {
    SubtxnPlan* target;
    if (i == 0) {
      target = &spec.root;
    } else {
      SubtxnPlan child;
      child.node = nodes[i];
      spec.root.children.push_back(std::move(child));
      target = &spec.root.children.back();
    }
    if (non_commuting) {
      // A no-op rescaling: classified non-commuting (Multiply does not
      // commute with Add), but factor 1 keeps balances checkable.
      target->ops.push_back(OpMultiply(SummaryKey(entity, nodes[i]), 1));
    }
    target->ops.push_back(OpAdd(SummaryKey(entity, nodes[i]), amount));
    if (options_.with_inserts) {
      target->ops.push_back(OpInsert(RecordKey(entity, nodes[i]), record_id));
    }
  }
  spec.DeduceFlags();
  return spec;
}

TxnSpec WorkloadGenerator::MakeRead(uint64_t entity) {
  std::vector<NodeId> nodes = HomeNodes(entity);
  // Audits visit the entity's homes in the opposite order of the recording
  // path. (Per-channel FIFO would otherwise mask the no-coordination
  // anomaly for reads that chase an update along the same route.)
  std::reverse(nodes.begin(), nodes.end());
  TxnSpec spec;
  spec.root.node = nodes[0];
  for (size_t i = 0; i < nodes.size(); ++i) {
    SubtxnPlan* target;
    if (i == 0) {
      target = &spec.root;
    } else {
      SubtxnPlan child;
      child.node = nodes[i];
      spec.root.children.push_back(std::move(child));
      target = &spec.root.children.back();
    }
    target->ops.push_back(OpGet(SummaryKey(entity, nodes[i])));
    if (options_.with_inserts) {
      target->ops.push_back(OpGet(RecordKey(entity, nodes[i])));
    }
  }
  spec.DeduceFlags();
  return spec;
}

WorkloadJob WorkloadGenerator::Next() {
  uint64_t entity = zipf_.Sample(rng_);
  WorkloadJob job;
  if (rng_.Bernoulli(options_.read_fraction)) {
    job.spec = MakeRead(entity);
  } else {
    bool nc = rng_.Bernoulli(options_.noncommuting_fraction);
    job.spec = MakeUpdate(entity, nc);
  }
  job.origin = job.spec.root.node;
  return job;
}

std::vector<std::string> WorkloadGenerator::AllSummaryKeys() const {
  std::vector<std::string> keys;
  for (uint64_t e = 0; e < options_.num_entities; ++e) {
    for (NodeId n : HomeNodes(e)) {
      keys.push_back(SummaryKey(e, n));
    }
  }
  return keys;
}

SimRunStats RunOpenLoopSim(System& system, SimNet& net,
                           WorkloadGenerator& gen, size_t total,
                           Micros mean_interarrival) {
  SimRunStats stats;
  Rng arrivals(gen.options().seed ^ 0xa5a5a5a5ull);
  Micros t = 0;
  size_t done = 0;
  auto on_result = [&stats, &done](const TxnResult& result) {
    if (result.status.ok()) {
      ++stats.committed;
    } else {
      ++stats.aborted;
    }
    ++done;
  };
  for (size_t i = 0; i < total; ++i) {
    t += static_cast<Micros>(
        arrivals.Exponential(static_cast<double>(mean_interarrival)));
    WorkloadJob job = gen.Next();
    net.loop().ScheduleAt(t, [&system, job, on_result] {
      system.Submit(job.origin, job.spec, on_result);
    });
    ++stats.submitted;
  }
  // Run until every submission resolved - NOT until the loop drains, which
  // never happens while auto-advance keeps rescheduling itself.
  net.loop().RunUntil([&] { return done >= total; });
  stats.virtual_elapsed = net.Now();
  return stats;
}

SimRunStats RunClosedLoopSim(System& system, SimNet& net,
                             WorkloadGenerator& gen, size_t total,
                             size_t concurrency) {
  SimRunStats stats;
  size_t launched = 0;
  size_t done = 0;
  // Self-replenishing submission: each completion launches the next job.
  std::function<void()> launch = [&] {
    if (launched >= total) return;
    ++launched;
    ++stats.submitted;
    WorkloadJob job = gen.Next();
    system.Submit(job.origin, job.spec, [&](const TxnResult& result) {
      if (result.status.ok()) {
        ++stats.committed;
      } else {
        ++stats.aborted;
      }
      ++done;
      launch();
    });
  };
  for (size_t i = 0; i < concurrency && i < total; ++i) launch();
  net.loop().RunUntil([&] { return done >= total; });
  stats.virtual_elapsed = net.Now();
  return stats;
}

}  // namespace threev
