#ifndef THREEV_WORKLOAD_WORKLOAD_H_
#define THREEV_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/baseline/systems.h"
#include "threev/common/random.h"
#include "threev/net/sim_net.h"
#include "threev/txn/plan.h"

namespace threev {

// Synthetic data-recording workload (Section 6): entities (patients,
// subscribers, SKUs) have a deterministic home set of nodes; an update
// transaction records an observation at every home node (Insert of a unique
// record id + Add to the summary); a read-only transaction audits the same
// keys. The fixed per-entity node set is what gives the serializability
// checker full overlap between readers and writers.
struct WorkloadOptions {
  size_t num_nodes = 4;
  uint64_t num_entities = 1000;
  double zipf_theta = 0.9;       // access skew over entities
  double read_fraction = 0.1;    // read-only transactions
  double noncommuting_fraction = 0.0;  // NC among update transactions
  size_t fanout = 2;             // nodes each transaction touches
  bool with_inserts = true;      // record ids (needed by the checker)
  uint64_t seed = 42;
};

struct WorkloadJob {
  TxnSpec spec;
  NodeId origin = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);

  WorkloadJob Next();

  // Keys the workload can touch (used to seed padded values for the
  // copy-cost ablation).
  std::vector<std::string> AllSummaryKeys() const;

  const WorkloadOptions& options() const { return options_; }

 private:
  // Home nodes of an entity: fanout consecutive nodes starting at a
  // deterministic hash of the entity.
  std::vector<NodeId> HomeNodes(uint64_t entity) const;
  static std::string SummaryKey(uint64_t entity, NodeId node);
  static std::string RecordKey(uint64_t entity, NodeId node);

  TxnSpec MakeUpdate(uint64_t entity, bool non_commuting);
  TxnSpec MakeRead(uint64_t entity);

  WorkloadOptions options_;
  Rng rng_;
  ZipfGenerator zipf_;
  uint64_t next_record_id_ = 1;
};

// Summary of one simulated run.
struct SimRunStats {
  size_t submitted = 0;
  size_t committed = 0;
  size_t aborted = 0;
  Micros virtual_elapsed = 0;

  double throughput_per_sec() const {
    return virtual_elapsed > 0
               ? static_cast<double>(committed) * 1e6 /
                     static_cast<double>(virtual_elapsed)
               : 0.0;
  }
};

// Open-loop driver for SimNet: schedules `total` submissions with
// exponential inter-arrival times of the given mean, runs the event loop to
// completion (all results received), and reports stats. Deterministic from
// the generator's seed plus the SimNet seed.
SimRunStats RunOpenLoopSim(System& system, SimNet& net,
                           WorkloadGenerator& gen, size_t total,
                           Micros mean_interarrival);

// Closed-loop driver for SimNet: keeps `concurrency` transactions in
// flight until `total` have been submitted, then drains.
SimRunStats RunClosedLoopSim(System& system, SimNet& net,
                             WorkloadGenerator& gen, size_t total,
                             size_t concurrency);

}  // namespace threev

#endif  // THREEV_WORKLOAD_WORKLOAD_H_
