#include "threev/core/policy.h"

namespace threev {

AdvancePolicyDriver::AdvancePolicyDriver(const AdvancePolicyOptions& options,
                                         AdvanceCoordinator* coordinator,
                                         const Metrics* metrics,
                                         Network* network)
    : options_(options),
      coordinator_(coordinator),
      metrics_(metrics),
      network_(network) {}

void AdvancePolicyDriver::Start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    committed_baseline_ = metrics_->txns_committed.load();
    last_advance_time_ = network_->Now() - options_.min_period;
  }
  ScheduleCheck();
}

void AdvancePolicyDriver::Stop() {
  MutexLock lock(mu_);
  running_ = false;
}

uint64_t AdvancePolicyDriver::triggered_count() const {
  MutexLock lock(mu_);
  return triggered_;
}

void AdvancePolicyDriver::ScheduleCheck() {
  network_->ScheduleAfter(options_.check_interval, [this] {
    {
      MutexLock lock(mu_);
      if (!running_) return;
    }
    Check();
    ScheduleCheck();
  });
}

bool AdvancePolicyDriver::StartIfAllowed() {
  {
    MutexLock lock(mu_);
    if (options_.min_period > 0 &&
        network_->Now() - last_advance_time_ < options_.min_period) {
      return false;
    }
  }
  if (!coordinator_->StartAdvancement()) return false;
  MutexLock lock(mu_);
  last_advance_time_ = network_->Now();
  committed_baseline_ = metrics_->txns_committed.load();
  ++triggered_;
  return true;
}

void AdvancePolicyDriver::Check() {
  bool fire = false;
  if (options_.txn_threshold > 0) {
    int64_t baseline;
    {
      MutexLock lock(mu_);
      baseline = committed_baseline_;
    }
    if (metrics_->txns_committed.load() - baseline >=
        options_.txn_threshold) {
      fire = true;
    }
  }
  if (!fire && options_.trigger && options_.trigger()) fire = true;
  if (fire) StartIfAllowed();
}

bool AdvancePolicyDriver::RequestOnce() { return StartIfAllowed(); }

}  // namespace threev
