#include "threev/core/coordinator.h"

#include "threev/common/logging.h"
#include "threev/trace/introspect.h"

namespace threev {

AdvanceCoordinator::AdvanceCoordinator(const CoordinatorOptions& options,
                                       Network* network, Metrics* metrics,
                                       HistoryRecorder* history)
    : options_(options),
      network_(network),
      metrics_(metrics),
      history_(history),
      tracer_(options.tracer),
      c_matrix_(options.num_nodes * options.num_nodes, 0),
      r_matrix_(options.num_nodes * options.num_nodes, 0) {}

bool AdvanceCoordinator::running() const {
  MutexLock lock(mu_);
  return phase_ != Phase::kIdle;
}

Version AdvanceCoordinator::vu() const {
  MutexLock lock(mu_);
  return vu_view_;
}

Version AdvanceCoordinator::vr() const {
  MutexLock lock(mu_);
  return vr_view_;
}

uint64_t AdvanceCoordinator::completed_count() const {
  MutexLock lock(mu_);
  return completed_;
}

uint64_t AdvanceCoordinator::WaveSeq(bool r_wave) const {
  // Tags a counter-read wave uniquely within an epoch so stale replies
  // from earlier rounds are discarded.
  return epoch_ * 1'000'000 + round_ * 2 + (r_wave ? 1 : 0);
}

bool AdvanceCoordinator::StartAdvancement(DoneCallback done) {
  Version vu_new;
  uint64_t epoch;
  {
    MutexLock lock(mu_);
    if (phase_ != Phase::kIdle) return false;
    ++epoch_;
    epoch = epoch_;
    phase_ = Phase::kSwitchUpdate;
    vu_new = NextVersion(vu_view_);
    done_ = std::move(done);
    start_time_ = network_->Now();
    if (tracer_ != nullptr && tracer_->enabled()) {
      adv_trace_ = tracer_->BeginSpan(start_time_, options_.id,
                                      TraceOp::kAdvancement, TraceContext{},
                                      static_cast<int64_t>(epoch));
      phase_trace_ = tracer_->BeginSpan(start_time_, options_.id,
                                        TraceOp::kAdvancePhase, adv_trace_,
                                        /*arg=*/1);
    }
  }
  BeginStage(MsgType::kStartAdvancement, vu_new, /*flag=*/false, epoch);
  return true;
}

void AdvanceCoordinator::BeginStage(MsgType type, Version version, bool flag,
                                    uint64_t seq) {
  uint64_t token;
  std::vector<NodeId> targets;
  TraceContext trace;
  {
    MutexLock lock(mu_);
    awaiting_.clear();
    for (NodeId n = 0; n < options_.num_nodes; ++n) awaiting_.insert(n);
    stage_type_ = type;
    stage_version_ = version;
    stage_flag_ = flag;
    stage_seq_ = seq;
    token = ++stage_token_;
    stage_retries_ = 0;
    targets.assign(awaiting_.begin(), awaiting_.end());
    trace = phase_trace_;
  }
  SendTo(targets, type, version, flag, seq, trace);
  ArmRetransmit(token);
}

void AdvanceCoordinator::SendTo(const std::vector<NodeId>& targets,
                                MsgType type, Version version, bool flag,
                                uint64_t seq, const TraceContext& trace) {
  for (NodeId n : targets) {
    Message m;
    m.type = type;
    m.from = options_.id;
    m.version = version;
    m.flag = flag;
    m.seq = seq;
    m.trace = trace;
    network_->Send(n, std::move(m));
  }
}

void AdvanceCoordinator::ArmRetransmit(uint64_t token) {
  if (options_.retry_interval <= 0) return;
  network_->ScheduleAfter(options_.retry_interval, [this, token] {
    std::vector<NodeId> targets;
    MsgType type = MsgType::kStartAdvancement;
    Version version = 0;
    bool flag = false;
    uint64_t seq = 0;
    TraceContext trace;
    {
      MutexLock lock(mu_);
      if (token != stage_token_ || awaiting_.empty()) return;
      if (++stage_retries_ > options_.max_stage_retries) return;
      targets.assign(awaiting_.begin(), awaiting_.end());
      type = stage_type_;
      version = stage_version_;
      flag = stage_flag_;
      seq = stage_seq_;
      trace = phase_trace_;
      if (metrics_ != nullptr) {
        metrics_->advancement_retransmits.fetch_add(
            static_cast<int64_t>(targets.size()), std::memory_order_relaxed);
      }
    }
    SendTo(targets, type, version, flag, seq, trace);
    ArmRetransmit(token);
  });
}

void AdvanceCoordinator::SwitchPhaseSpanLocked(Micros ts, int64_t ended,
                                               int64_t started) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->EndSpan(ts, options_.id, TraceOp::kAdvancePhase, phase_trace_,
                   ended);
  phase_trace_ = TraceContext{};
  if (started != 0) {
    phase_trace_ = tracer_->BeginSpan(ts, options_.id, TraceOp::kAdvancePhase,
                                      adv_trace_, started);
  }
}

void AdvanceCoordinator::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MsgType::kStartAdvancementAck: {
      bool proceed = false;
      Version quiesce = 0;
      {
        MutexLock lock(mu_);
        if (phase_ != Phase::kSwitchUpdate || msg.seq != epoch_) return;
        awaiting_.erase(msg.from);
        if (awaiting_.empty()) {
          // Every node now assigns vu_new to new roots; version vu_old can
          // only shrink. Move to phase 2.
          vu_view_ = NextVersion(vu_view_);
          phase_ = Phase::kPhaseOut;
          check_version_ = PrevVersion(vu_view_);
          quiesce = check_version_;
          proceed = true;
          SwitchPhaseSpanLocked(network_->Now(), /*ended=*/1, /*started=*/2);
        }
      }
      if (proceed) BeginRound(quiesce);
      break;
    }
    case MsgType::kCounterReadReply:
      OnCounterReply(msg);
      break;
    case MsgType::kReadVersionAdvanceAck: {
      bool proceed = false;
      Version quiesce = 0;
      {
        MutexLock lock(mu_);
        if (phase_ != Phase::kSwitchRead || msg.seq != epoch_) return;
        awaiting_.erase(msg.from);
        if (awaiting_.empty()) {
          vr_view_ = NextVersion(vr_view_);
          phase_ = Phase::kDrainReads;
          check_version_ = PrevVersion(vr_view_);
          quiesce = check_version_;
          proceed = true;
          SwitchPhaseSpanLocked(network_->Now(), /*ended=*/3, /*started=*/4);
        }
      }
      if (proceed) BeginRound(quiesce);
      break;
    }
    case MsgType::kGarbageCollectAck: {
      bool finished = false;
      {
        MutexLock lock(mu_);
        if (phase_ != Phase::kGarbageCollect || msg.seq != epoch_) return;
        awaiting_.erase(msg.from);
        if (awaiting_.empty()) finished = true;
      }
      if (finished) FinishAdvancement();
      break;
    }
    case MsgType::kAdminInspect:
      OnAdminInspect(msg);
      break;
    default:
      THREEV_LOG(kWarn) << "coordinator: unexpected " << msg.ToString();
  }
}

void AdvanceCoordinator::BeginRound(Version version) {
  {
    MutexLock lock(mu_);
    ++round_;
    std::fill(c_matrix_.begin(), c_matrix_.end(), 0);
    std::fill(r_matrix_.begin(), r_matrix_.end(), 0);
  }
  SendWave(version, /*r_wave=*/false);
}

void AdvanceCoordinator::SendWave(Version version, bool r_wave) {
  uint64_t seq;
  {
    MutexLock lock(mu_);
    r_wave_ = r_wave;
    seq = WaveSeq(r_wave);
  }
  BeginStage(MsgType::kCounterRead, version, r_wave, seq);
}

void AdvanceCoordinator::OnCounterReply(const Message& msg) {
  bool wave_done = false;
  bool was_r_wave = false;
  Version version = 0;
  {
    MutexLock lock(mu_);
    if (phase_ != Phase::kPhaseOut && phase_ != Phase::kDrainReads) return;
    if (msg.seq != WaveSeq(r_wave_) || msg.flag != r_wave_) return;
    if (awaiting_.erase(msg.from) == 0) return;  // duplicate reply
    size_t n = options_.num_nodes;
    if (r_wave_) {
      // msg.counters_r: R(version)[msg.from][q] for every q.
      for (const auto& [q, count] : msg.counters_r) {
        if (q < n) r_matrix_[msg.from * n + q] = count;
      }
    } else {
      // msg.counters_c: C(version)[o][msg.from] for every o.
      for (const auto& [o, count] : msg.counters_c) {
        if (o < n) c_matrix_[o * n + msg.from] = count;
      }
    }
    if (awaiting_.empty()) {
      wave_done = true;
      was_r_wave = r_wave_;
      version = check_version_;
    }
  }
  if (!wave_done) return;
  if (!was_r_wave) {
    // Wave 1 complete; only now may wave 2 start (the strict ordering the
    // soundness argument depends on).
    SendWave(version, /*r_wave=*/true);
    return;
  }
  EvaluateRound();
}

void AdvanceCoordinator::EvaluateRound() {
  bool quiescent = true;
  Version version;
  {
    MutexLock lock(mu_);
    size_t n = options_.num_nodes;
    for (size_t i = 0; i < n * n && quiescent; ++i) {
      if (r_matrix_[i] != c_matrix_[i]) quiescent = false;
    }
    version = check_version_;
    if (metrics_ != nullptr) {
      metrics_->quiescence_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant(network_->Now(), options_.id,
                       TraceOp::kQuiescenceWave, phase_trace_,
                       /*msg_type=*/0, static_cast<int64_t>(round_));
    }
  }
  if (quiescent) {
    AdvancePhase();
    return;
  }
  // Try again after a beat; user transactions keep flowing meanwhile.
  network_->ScheduleAfter(options_.poll_interval,
                          [this, version] { BeginRound(version); });
}

void AdvanceCoordinator::AdvancePhase() {
  Phase phase;
  Version vr_new = 0;
  uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    phase = phase_;
    epoch = epoch_;
    if (phase == Phase::kPhaseOut) {
      // Version vu_old is consistent across all nodes: expose it to reads.
      phase_ = Phase::kSwitchRead;
      vr_new = NextVersion(vr_view_);
      read_switch_time_ = network_->Now();
      SwitchPhaseSpanLocked(read_switch_time_, /*ended=*/2, /*started=*/3);
    } else if (phase == Phase::kDrainReads) {
      // All queries on vr_old have terminated: garbage-collect.
      phase_ = Phase::kGarbageCollect;
      vr_new = vr_view_;
    }
  }
  if (phase == Phase::kPhaseOut) {
    BeginStage(MsgType::kReadVersionAdvance, vr_new, /*flag=*/false, epoch);
  } else if (phase == Phase::kDrainReads) {
    BeginStage(MsgType::kGarbageCollect, vr_new, /*flag=*/false, epoch);
  }
}

void AdvanceCoordinator::FinishAdvancement() {
  DoneCallback done;
  Micros start, read_switch;
  Version vu_new;
  {
    MutexLock lock(mu_);
    phase_ = Phase::kIdle;
    ++completed_;
    awaiting_.clear();
    ++stage_token_;  // kill any retransmit timer still armed
    done = std::move(done_);
    done_ = nullptr;
    start = start_time_;
    read_switch = read_switch_time_;
    vu_new = vu_view_;
    Micros ts = network_->Now();
    SwitchPhaseSpanLocked(ts, /*ended=*/4, /*started=*/0);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->EndSpan(ts, options_.id, TraceOp::kAdvancement, adv_trace_,
                       static_cast<int64_t>(vu_view_));
    }
    adv_trace_ = TraceContext{};
  }
  Micros now = network_->Now();
  if (metrics_ != nullptr) {
    metrics_->advancements_completed.fetch_add(1, std::memory_order_relaxed);
    metrics_->advancement_latency.Record(now - start);
  }
  if (history_ != nullptr) {
    HistoryRecorder::AdvancementRecord rec;
    rec.new_update_version = vu_new;
    rec.start_time = start;
    rec.read_switch_time = read_switch;
    rec.end_time = now;
    history_->RecordAdvancement(rec);
  }
  if (done) done(Status::Ok());
}

void AdvanceCoordinator::OnAdminInspect(const Message& msg) {
  Message m = MakeInspectReply(msg, options_.id);
  const char* phase_name = "idle";
  {
    MutexLock lock(mu_);
    switch (phase_) {
      case Phase::kIdle:
        phase_name = "idle";
        break;
      case Phase::kSwitchUpdate:
        phase_name = "switch_update";
        break;
      case Phase::kPhaseOut:
        phase_name = "phase_out";
        break;
      case Phase::kSwitchRead:
        phase_name = "switch_read";
        break;
      case Phase::kDrainReads:
        phase_name = "drain_reads";
        break;
      case Phase::kGarbageCollect:
        phase_name = "garbage_collect";
        break;
    }
    InspectPutNum(&m, "epoch", static_cast<int64_t>(epoch_));
    InspectPutNum(&m, "phase", static_cast<int64_t>(phase_));
    InspectPutNum(&m, "round", static_cast<int64_t>(round_));
    InspectPutNum(&m, "vu_view", vu_view_);
    InspectPutNum(&m, "vr_view", vr_view_);
    InspectPutNum(&m, "advancements", static_cast<int64_t>(completed_));
    InspectPutNum(&m, "auto_advance", auto_enabled_ ? 1 : 0);
    InspectPutNum(&m, "counters_version", check_version_);
  }
  InspectPutStr(&m, "phase_name", phase_name);
  network_->Send(msg.from, std::move(m));
}

void AdvanceCoordinator::EnableAutoAdvance(Micros period) {
  {
    MutexLock lock(mu_);
    if (auto_enabled_) {
      auto_period_ = period;
      return;
    }
    auto_enabled_ = true;
    auto_period_ = period;
  }
  ScheduleAutoTick();
}

void AdvanceCoordinator::DisableAutoAdvance() {
  MutexLock lock(mu_);
  auto_enabled_ = false;
}

void AdvanceCoordinator::ScheduleAutoTick() {
  Micros period;
  {
    MutexLock lock(mu_);
    if (!auto_enabled_) return;
    period = auto_period_;
  }
  network_->ScheduleAfter(period, [this] {
    {
      MutexLock lock(mu_);
      if (!auto_enabled_) return;
    }
    StartAdvancement();  // no-op if one is already running
    ScheduleAutoTick();
  });
}

}  // namespace threev
