#ifndef THREEV_CORE_COUNTERS_H_
#define THREEV_CORE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"

namespace threev {

// Per-node request/completion counters (Section 2.2 / 4 of the paper).
//
// For each active version v, node p keeps:
//   R(v)[p][q] - subtransaction requests node p sent to node q on version v
//                (q == p counts locally submitted roots);
//   C(v)[o][p] - subtransactions invoked from node o that completed here.
//
// R counters for pair (p,q) live at p; C counters for pair (o,p) live at p.
// The advancement coordinator assembles the global matrices from per-node
// snapshots and declares version-v quiescence when R(v)[p][q] == C(v)[p][q]
// for every pair (see AdvanceCoordinator and DESIGN.md section 5).
//
// All increments are individually atomic (per the paper's only concurrency
// assumption about these variables); version rows are created lazily.
class CounterTable {
 public:
  explicit CounterTable(size_t num_nodes) : num_nodes_(num_nodes) {}

  CounterTable(const CounterTable&) = delete;
  CounterTable& operator=(const CounterTable&) = delete;

  // R(v)[me][to] += 1.
  void IncR(Version v, NodeId to) EXCLUDES(mu_);
  // C(v)[from][me] += 1.
  void IncC(Version v, NodeId from) EXCLUDES(mu_);

  int64_t R(Version v, NodeId to) const EXCLUDES(mu_);
  int64_t C(Version v, NodeId from) const EXCLUDES(mu_);

  // Snapshots for kCounterReadReply: (peer, count) for every peer.
  std::vector<std::pair<NodeId, int64_t>> SnapshotR(Version v) const
      EXCLUDES(mu_);
  std::vector<std::pair<NodeId, int64_t>> SnapshotC(Version v) const
      EXCLUDES(mu_);

  // Garbage-collects counters of versions < v (phase 4).
  void DropBelow(Version v) EXCLUDES(mu_);

  // Recovery: installs a checkpointed row wholesale (rows are truncated or
  // zero-padded to the table's node count). Subsequent WAL counter deltas
  // replay on top via IncR/IncC.
  void Restore(Version v, const std::vector<int64_t>& r,
               const std::vector<int64_t>& c) EXCLUDES(mu_);

  // Active version numbers with allocated counters (ascending).
  std::vector<Version> ActiveVersions() const EXCLUDES(mu_);

 private:
  struct Row {
    std::vector<int64_t> r;
    std::vector<int64_t> c;
  };

  Row& RowFor(Version v) REQUIRES(mu_);
  const Row* FindRow(Version v) const REQUIRES(mu_);

  size_t num_nodes_;
  mutable Mutex mu_;
  std::map<Version, Row> rows_ GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_CORE_COUNTERS_H_
