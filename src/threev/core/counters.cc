#include "threev/core/counters.h"

namespace threev {

CounterTable::Row& CounterTable::RowFor(Version v) {
  auto it = rows_.find(v);
  if (it == rows_.end()) {
    it = rows_.emplace(v, Row{std::vector<int64_t>(num_nodes_, 0),
                              std::vector<int64_t>(num_nodes_, 0)})
             .first;
  }
  return it->second;
}

const CounterTable::Row* CounterTable::FindRow(Version v) const {
  auto it = rows_.find(v);
  return it == rows_.end() ? nullptr : &it->second;
}

void CounterTable::IncR(Version v, NodeId to) {
  MutexLock lock(mu_);
  RowFor(v).r[to] += 1;
}

void CounterTable::IncC(Version v, NodeId from) {
  MutexLock lock(mu_);
  RowFor(v).c[from] += 1;
}

int64_t CounterTable::R(Version v, NodeId to) const {
  MutexLock lock(mu_);
  const Row* row = FindRow(v);
  return row == nullptr ? 0 : row->r[to];
}

int64_t CounterTable::C(Version v, NodeId from) const {
  MutexLock lock(mu_);
  const Row* row = FindRow(v);
  return row == nullptr ? 0 : row->c[from];
}

std::vector<std::pair<NodeId, int64_t>> CounterTable::SnapshotR(
    Version v) const {
  MutexLock lock(mu_);
  std::vector<std::pair<NodeId, int64_t>> out;
  const Row* row = FindRow(v);
  for (NodeId q = 0; q < num_nodes_; ++q) {
    out.emplace_back(q, row == nullptr ? 0 : row->r[q]);
  }
  return out;
}

std::vector<std::pair<NodeId, int64_t>> CounterTable::SnapshotC(
    Version v) const {
  MutexLock lock(mu_);
  std::vector<std::pair<NodeId, int64_t>> out;
  const Row* row = FindRow(v);
  for (NodeId o = 0; o < num_nodes_; ++o) {
    out.emplace_back(o, row == nullptr ? 0 : row->c[o]);
  }
  return out;
}

void CounterTable::Restore(Version v, const std::vector<int64_t>& r,
                           const std::vector<int64_t>& c) {
  MutexLock lock(mu_);
  Row& row = RowFor(v);
  for (size_t i = 0; i < num_nodes_; ++i) {
    row.r[i] = i < r.size() ? r[i] : 0;
    row.c[i] = i < c.size() ? c[i] : 0;
  }
}

void CounterTable::DropBelow(Version v) {
  MutexLock lock(mu_);
  rows_.erase(rows_.begin(), rows_.lower_bound(v));
}

std::vector<Version> CounterTable::ActiveVersions() const {
  MutexLock lock(mu_);
  std::vector<Version> out;
  for (const auto& [v, row] : rows_) out.push_back(v);
  return out;
}

}  // namespace threev
