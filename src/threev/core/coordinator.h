#ifndef THREEV_CORE_COORDINATOR_H_
#define THREEV_CORE_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/status.h"
#include "threev/common/thread_annotations.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/trace/trace.h"
#include "threev/verify/history.h"

namespace threev {

struct CoordinatorOptions {
  NodeId id = 0;          // endpoint id of the coordinator
  size_t num_nodes = 1;   // database nodes are endpoints 0..num_nodes-1
  // Delay between quiescence-check rounds in phases 2 and 4.
  Micros poll_interval = 2000;
  // Re-send the current stage's message to nodes that have not replied yet
  // (tolerates crashed-and-restarted nodes and the dropped messages that
  // come with them; node-side handlers are idempotent). 0 disables.
  Micros retry_interval = 10'000;
  // Stop re-sending after this many timer fires per stage: a node that
  // stays down longer than retry_interval * max_stage_retries stalls the
  // advancement (restart-based recovery is expected well within that
  // window), and a bounded timer chain keeps event-loop drains finite for
  // tests that hold messages manually.
  size_t max_stage_retries = 50;
  // Observability (DESIGN.md section 12): when set, each advancement runs
  // under a kAdvancement span with one kAdvancePhase child per phase, and
  // stage messages carry the phase's trace context. Unowned, may be null.
  Tracer* tracer = nullptr;
};

// The version advancement process (Section 4.3). A single instance runs at
// a time (the paper assumes distributed mutual exclusion; we designate one
// coordinator, which satisfies the same assumption).
//
// Phases:
//   1. Switch update version: broadcast start-advancement(vu_new); await
//      acks. After the last ack, no new root can be assigned the old
//      update version anywhere.
//   2. Updates phase-out: detect quiescence of version vu_old via the
//      two-wave asynchronous counter read (below).
//   3. Switch read version: broadcast read-version(vr_new); await acks.
//   4. Drain old reads (same quiescence check on vr_old), then broadcast
//      garbage-collect(vr_new); await acks.
//
// Quiescence check (see DESIGN.md section 5 for the soundness argument):
// wave 1 reads every completion counter C(v)[p][q]; only after all replies
// arrive does wave 2 read every request counter R(v)[p][q]. If R == C for
// every ordered pair the version is quiescent; otherwise the coordinator
// sleeps poll_interval and repeats. Neither wave blocks any user
// transaction - nodes answer from their local counters.
class AdvanceCoordinator {
 public:
  using DoneCallback = std::function<void(Status)>;

  AdvanceCoordinator(const CoordinatorOptions& options, Network* network,
                     Metrics* metrics, HistoryRecorder* history = nullptr);

  AdvanceCoordinator(const AdvanceCoordinator&) = delete;
  AdvanceCoordinator& operator=(const AdvanceCoordinator&) = delete;

  // Network entry point; register with Network::RegisterEndpoint.
  void HandleMessage(const Message& msg) EXCLUDES(mu_);

  // Kicks off one advancement. Returns false (and does nothing) if one is
  // already in flight. `done` fires after phase 4 completes.
  bool StartAdvancement(DoneCallback done = nullptr) EXCLUDES(mu_);

  // Repeatedly advances every `period` (skipping ticks that would overlap
  // a running advancement). Policy knob from the paper's "desired
  // solution": advance every hour / after N transactions / on demand.
  void EnableAutoAdvance(Micros period) EXCLUDES(mu_);
  void DisableAutoAdvance() EXCLUDES(mu_);

  bool running() const EXCLUDES(mu_);
  // Coordinator's view of the versions (authoritative between
  // advancements, since only the coordinator changes them).
  Version vu() const EXCLUDES(mu_);
  Version vr() const EXCLUDES(mu_);
  uint64_t completed_count() const EXCLUDES(mu_);

 private:
  enum class Phase {
    kIdle,
    kSwitchUpdate,   // phase 1
    kPhaseOut,       // phase 2
    kSwitchRead,     // phase 3
    kDrainReads,     // phase 4 (quiescence part)
    kGarbageCollect  // phase 4 (gc broadcast part)
  };

  // Opens a stage awaiting one reply per node: records the retransmit
  // template, marks every node as awaited, sends to all, arms the timer.
  void BeginStage(MsgType type, Version version, bool flag, uint64_t seq)
      EXCLUDES(mu_);
  void SendTo(const std::vector<NodeId>& targets, MsgType type,
              Version version, bool flag, uint64_t seq,
              const TraceContext& trace);
  void ArmRetransmit(uint64_t token) EXCLUDES(mu_);
  // Protocol introspection probe (see trace/introspect.h).
  void OnAdminInspect(const Message& msg);
  // Closes the current kAdvancePhase span and opens the next one
  // (phase_index 1..4; 0 closes without opening).
  void SwitchPhaseSpanLocked(Micros ts, int64_t ended, int64_t started)
      REQUIRES(mu_);
  // Starts a quiescence round for `version` (wave 1: completion counters).
  void BeginRound(Version version) EXCLUDES(mu_);
  void SendWave(Version version, bool r_wave) EXCLUDES(mu_);
  void OnCounterReply(const Message& msg) EXCLUDES(mu_);
  // All replies of the R wave arrived: compare matrices.
  void EvaluateRound() EXCLUDES(mu_);
  // Transition after a phase's condition is met.
  void AdvancePhase() EXCLUDES(mu_);
  void FinishAdvancement() EXCLUDES(mu_);
  void ScheduleAutoTick() EXCLUDES(mu_);
  uint64_t WaveSeq(bool r_wave) const REQUIRES(mu_);

  CoordinatorOptions options_;
  Network* network_;
  Metrics* metrics_;
  HistoryRecorder* history_;
  Tracer* tracer_;  // unowned, may be null (tracing disabled)

  mutable Mutex mu_;
  Phase phase_ GUARDED_BY(mu_) = Phase::kIdle;
  // One per advancement, tags all messages.
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  Version vu_view_ GUARDED_BY(mu_) = 1;
  Version vr_view_ GUARDED_BY(mu_) = 0;
  // Version being quiesced in phases 2/4.
  Version check_version_ GUARDED_BY(mu_) = 0;
  // Nodes whose reply for the current stage is still outstanding, plus the
  // template needed to re-send that stage to them. The token invalidates
  // retransmit timers armed for earlier stages.
  std::set<NodeId> awaiting_ GUARDED_BY(mu_);
  MsgType stage_type_ GUARDED_BY(mu_) = MsgType::kStartAdvancement;
  Version stage_version_ GUARDED_BY(mu_) = 0;
  bool stage_flag_ GUARDED_BY(mu_) = false;
  uint64_t stage_seq_ GUARDED_BY(mu_) = 0;
  uint64_t stage_token_ GUARDED_BY(mu_) = 0;
  size_t stage_retries_ GUARDED_BY(mu_) = 0;
  uint64_t round_ GUARDED_BY(mu_) = 0;
  bool r_wave_ GUARDED_BY(mu_) = false;
  // Collected matrices, num_nodes x num_nodes, [p][q].
  std::vector<int64_t> c_matrix_ GUARDED_BY(mu_);
  std::vector<int64_t> r_matrix_ GUARDED_BY(mu_);
  DoneCallback done_ GUARDED_BY(mu_);
  Micros start_time_ GUARDED_BY(mu_) = 0;
  Micros read_switch_time_ GUARDED_BY(mu_) = 0;
  uint64_t completed_ GUARDED_BY(mu_) = 0;
  bool auto_enabled_ GUARDED_BY(mu_) = false;
  Micros auto_period_ GUARDED_BY(mu_) = 0;
  // Spans of the running advancement / its current phase (invalid when
  // idle or tracing is off).
  TraceContext adv_trace_ GUARDED_BY(mu_);
  TraceContext phase_trace_ GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_CORE_COORDINATOR_H_
