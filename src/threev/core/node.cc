#include "threev/core/node.h"

#include <algorithm>
#include <atomic>

#include "threev/common/logging.h"
#include "threev/durability/checkpoint.h"
#include "threev/durability/recovery.h"
#include "threev/trace/introspect.h"

namespace threev {

namespace {
// Size of one kSeqReserve block: a restarted node resumes its id sequences
// at the reserved ceiling, so up to this many ids are skipped per restart.
constexpr uint64_t kSeqReserveBlock = 4096;
}  // namespace

Node::Node(const NodeOptions& options, Network* network, Metrics* metrics,
           HistoryRecorder* history)
    : options_(options),
      network_(network),
      metrics_(metrics),
      history_(history),
      tracer_(options.tracer),
      store_(metrics),
      counters_(options.num_nodes),
      vu_(1),
      vr_(0),
      rng_(options.seed + options.id * 0x9e3779b9ull) {
  // Version 0 (the initial read version) was never an update version; it is
  // "frozen" from the beginning of time for staleness accounting.
  frozen_time_[0] = 0;
  if (!options_.wal_dir.empty()) RecoverFromLog();
}

void Node::Halt() { halted_.store(true, std::memory_order_release); }

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

void Node::RecoverFromLog() {
  // Replay checkpoint + redo log into the (still fresh) store and counters.
  Result<RecoveredState> recovered =
      RecoverNodeState(options_.wal_dir, &store_, &counters_, metrics_);
  THREEV_CHECK(recovered.ok())
      << "node " << options_.id << ": recovery failed: "
      << recovered.status().ToString();

  vu_ = recovered->vu;
  vr_ = recovered->vr;
  if (vu_ > 1) frozen_time_[PrevVersion(vu_)] = 0;  // conservative staleness origin
  next_txn_seq_ = recovered->seq_floor;
  next_subtxn_seq_ = recovered->seq_floor;
  seq_reserved_until_ = recovered->seq_floor;

  // Appends continue in a fresh segment after the recovered tail.
  WalOptions wopts;
  wopts.dir = options_.wal_dir;
  wopts.fsync = options_.fsync;
  wopts.segment_bytes = options_.wal_segment_bytes;
  wopts.tracer = tracer_;
  wopts.node = options_.id;
  wopts.now = [this] { return network_->Now(); };
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(wopts, metrics_);
  THREEV_CHECK(wal.ok()) << "node " << options_.id << ": wal open failed: "
                         << wal.status().ToString();
  wal_ = std::move(*wal);

  // Re-enter 2PC for in-doubt non-commuting transactions: restore their
  // participant state and re-take the write locks their undo images prove
  // they held (the lock table is fresh, so every grant is immediate).
  for (const auto& [txn, in_doubt] : recovered->in_doubt) {
    std::set<std::string> locked;
    for (const auto& undo : in_doubt.undo) {
      if (locked.insert(undo.key).second) {
        locks_.Acquire(undo.key, LockMode::kNCWrite, txn, [](bool) {});
      }
    }
    NcTxnState st;
    st.undo = in_doubt.undo;
    st.completions = in_doubt.completions;
    st.failed = in_doubt.failed;
    nc_txns_.emplace(txn, std::move(st));
  }

  // Roots that logged a decision before crashing re-broadcast it to every
  // node: participants whose decision message died with us resolve, nodes
  // that already applied it (or never saw the txn) just ack, and the acks
  // land in an empty nc_roots_ and are dropped. In-doubt txns rooted here
  // WITHOUT a logged decision are presumed aborted - the forced
  // kNcRootDecision record is the only possible source of a delivered
  // commit, so no participant can have committed.
  std::map<TxnId, bool> decisions = recovered->root_decisions;
  for (const auto& [txn, in_doubt] : recovered->in_doubt) {
    if (GlobalIdEndpoint(txn) == options_.id && !decisions.count(txn)) {
      WalRecord rec;
      rec.type = WalRecordType::kNcRootDecision;
      rec.txn = txn;
      rec.flag = false;
      LogRecord(rec, /*force=*/true);
      decisions.emplace(txn, false);
    }
  }
  for (const auto& [txn, commit] : decisions) {
    std::set<NodeId> waiting;
    for (NodeId p = 0; p < options_.num_nodes; ++p) waiting.insert(p);
    recovered_decisions_.emplace(txn, std::make_pair(commit, waiting));
    for (NodeId p = 0; p < options_.num_nodes; ++p) {
      Message m;
      m.type = MsgType::kDecision;
      m.from = options_.id;
      m.txn = txn;
      m.flag = commit;
      network_->Send(p, std::move(m));
    }
  }
  // The broadcast alone is not enough: a single dropped kDecision here
  // would strand a prepared participant on its locks forever, because the
  // pre-crash root's in-memory retry watchdog died with it. Retry against
  // the ack set until every node has confirmed.
  if (!decisions.empty()) ArmRecoveryDecisionRetry();
}

void Node::ArmRecoveryDecisionRetry() {
  if (options_.twopc_retry_interval <= 0) return;
  network_->ScheduleAfter(options_.twopc_retry_interval, [this] {
    if (halted_.load(std::memory_order_acquire)) return;
    std::vector<std::pair<NodeId, Message>> resend;
    {
      MutexLock lock(mu_);
      if (recovered_decisions_.empty()) return;
      for (const auto& [txn, state] : recovered_decisions_) {
        for (NodeId p : state.second) {
          Message m;
          m.type = MsgType::kDecision;
          m.from = options_.id;
          m.txn = txn;
          m.flag = state.first;
          resend.emplace_back(p, std::move(m));
        }
      }
    }
    if (metrics_ != nullptr && !resend.empty()) {
      metrics_->twopc_retransmits.fetch_add(
          static_cast<int64_t>(resend.size()), std::memory_order_relaxed);
    }
    for (auto& [to, m] : resend) network_->Send(to, std::move(m));
    ArmRecoveryDecisionRetry();
  });
}

void Node::LogRecord(const WalRecord& rec, bool force) {
  if (wal_ == nullptr) return;
  MutexLock lock(wal_mu_);
  Status s = wal_->Append(rec, force);
  if (!s.ok()) {
    THREEV_LOG(kWarn) << "node " << options_.id
                      << ": wal append failed: " << s.ToString();
  }
}

void Node::LogCounter(Version v, bool is_r, NodeId peer) {
  if (wal_ == nullptr) return;
  WalRecord rec;
  rec.type = WalRecordType::kCounter;
  rec.version = v;
  rec.flag = is_r;
  rec.peer = peer;
  LogRecord(rec);
}

void Node::ReserveSeqsLocked() {
  if (wal_ == nullptr) return;
  uint64_t next = std::max(next_txn_seq_, next_subtxn_seq_);
  if (next < seq_reserved_until_) return;
  WalRecord rec;
  rec.type = WalRecordType::kSeqReserve;
  rec.seq = next + kSeqReserveBlock;
  LogRecord(rec, /*force=*/true);
  seq_reserved_until_ = rec.seq;
}

Status Node::WriteCheckpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability disabled");
  }
  CheckpointData ck;
  {
    MutexLock lock(mu_);
    if (!pending_.empty() || !nc_txns_.empty() || !gate_waiters_.empty()) {
      return Status::FailedPrecondition(
          "node " + std::to_string(options_.id) +
          " not quiescent: " + std::to_string(pending_.size()) +
          " pending, " + std::to_string(nc_txns_.size()) + " nc txns");
    }
    ck.vu = vu_;
    ck.vr = vr_;
    ck.seq_floor = seq_reserved_until_;
  }
  {
    // Rotate first: every record from here on lands in a segment the
    // checkpoint does not cover, so non-idempotent counter deltas are
    // replayed exactly once.
    MutexLock lock(wal_mu_);
    Status s = wal_->RotateSegment();
    if (!s.ok()) return s;
    ck.wal_segment = wal_->current_segment();
  }
  for (auto& [key, version, value] : store_.DumpAll()) {
    ck.store.push_back(WalImage{std::move(key), version, std::move(value)});
  }
  for (Version v : counters_.ActiveVersions()) {
    CheckpointData::CounterRow row;
    row.version = v;
    for (const auto& [q, count] : counters_.SnapshotR(v)) row.r.push_back(count);
    for (const auto& [o, count] : counters_.SnapshotC(v)) row.c.push_back(count);
    ck.counters.push_back(std::move(row));
  }
  Status s = WriteCheckpointFile(options_.wal_dir, ck);
  if (!s.ok()) return s;
  size_t bytes = 0;
  for (const auto& img : ck.store) {
    bytes += img.key.size() + img.value.ByteSize() + 12;
  }
  if (metrics_ != nullptr) {
    metrics_->checkpoints_written.fetch_add(1, std::memory_order_relaxed);
    metrics_->checkpoint_bytes.fetch_add(static_cast<int64_t>(bytes),
                                         std::memory_order_relaxed);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(network_->Now(), options_.id, TraceOp::kCheckpoint,
                     TraceContext{}, 0, static_cast<int64_t>(bytes));
  }
  MutexLock lock(wal_mu_);
  return wal_->TruncateBefore(ck.wal_segment);
}

void Node::ArmTwopcRetry(TxnId txn) {
  if (options_.twopc_retry_interval <= 0) return;
  network_->ScheduleAfter(options_.twopc_retry_interval, [this, txn] {
    if (halted_.load(std::memory_order_acquire)) return;
    std::vector<NodeId> targets;
    bool prepare = false;
    bool commit = true;
    TraceContext twopc_trace;
    {
      MutexLock lock(mu_);
      auto rit = nc_roots_.find(txn);
      if (rit == nc_roots_.end()) return;  // root resolved: watchdog dies
      auto pit = pending_.find(rit->second);
      if (pit == pending_.end()) return;
      const PendingSubtxn& rec = pit->second;
      twopc_trace = rec.twopc_trace;
      if (!rec.vote_waiting.empty()) {
        prepare = true;
        targets.assign(rec.vote_waiting.begin(), rec.vote_waiting.end());
      } else {
        targets.assign(rec.ack_waiting.begin(), rec.ack_waiting.end());
        commit = rec.commit;
      }
    }
    if (!targets.empty() && metrics_ != nullptr) {
      metrics_->twopc_retransmits.fetch_add(
          static_cast<int64_t>(targets.size()), std::memory_order_relaxed);
    }
    for (NodeId p : targets) {
      Message m;
      m.type = prepare ? MsgType::kPrepare : MsgType::kDecision;
      m.from = options_.id;
      m.txn = txn;
      m.flag = prepare ? false : commit;
      m.trace = twopc_trace;
      network_->Send(p, std::move(m));
    }
    ArmTwopcRetry(txn);
  });
}

Version Node::vu() const {
  MutexLock lock(mu_);
  return vu_;
}

Version Node::vr() const {
  MutexLock lock(mu_);
  return vr_;
}

size_t Node::PendingSubtxns() const {
  MutexLock lock(mu_);
  return pending_.size();
}

std::string Node::DebugString() const {
  MutexLock lock(mu_);
  std::string out = "node " + std::to_string(options_.id) +
                    ": vu=" + std::to_string(vu_) +
                    " vr=" + std::to_string(vr_) + "\n";
  for (const auto& [sid, rec] : pending_) {
    out += "  pending subtxn " + std::to_string(sid) + " txn " +
           std::to_string(rec.txn) + " v" + std::to_string(rec.version) +
           (rec.is_root ? " root" : "") + " outstanding=" +
           std::to_string(rec.outstanding) +
           " votes=" + std::to_string(rec.vote_waiting.size()) +
           " acks=" + std::to_string(rec.ack_waiting.size()) +
           " status=" + rec.status.ToString() + "\n";
  }
  for (const auto& [txn, st] : nc_txns_) {
    out += "  nc txn " + std::to_string(txn) +
           " completions=" + std::to_string(st.completions.size()) +
           (st.failed ? " FAILED" : "") + "\n";
  }
  for (const auto& [version, fn] : gate_waiters_) {
    out += "  gate waiter for v" + std::to_string(version) + "\n";
  }
  return out;
}

SubtxnId Node::NewSubtxnId() {
  MutexLock lock(mu_);
  ReserveSeqsLocked();
  return MakeGlobalId(options_.id, next_subtxn_seq_++);
}

bool Node::InjectAbort() {
  if (options_.inject_abort_probability <= 0) return false;
  MutexLock lock(mu_);
  return rng_.Bernoulli(options_.inject_abort_probability);
}

void Node::HandleMessage(const Message& msg) {
  // A halted node is crashed: messages already queued for it die here.
  if (halted_.load(std::memory_order_acquire)) return;
  switch (msg.type) {
    case MsgType::kClientSubmit:
      OnClientSubmit(msg);
      break;
    case MsgType::kSubtxnRequest:
      OnSubtxnRequest(msg);
      break;
    case MsgType::kCompletionNotice:
      OnCompletionNotice(msg);
      break;
    case MsgType::kStartAdvancement:
      OnStartAdvancement(msg);
      break;
    case MsgType::kCounterRead:
      OnCounterRead(msg);
      break;
    case MsgType::kReadVersionAdvance:
      OnReadVersionAdvance(msg);
      break;
    case MsgType::kGarbageCollect:
      OnGarbageCollect(msg);
      break;
    case MsgType::kPrepare:
      OnPrepare(msg);
      break;
    case MsgType::kVote:
      OnVote(msg);
      break;
    case MsgType::kDecision:
      OnDecision(msg);
      break;
    case MsgType::kDecisionAck:
      OnDecisionAck(msg);
      break;
    case MsgType::kLockCleanup:
      OnLockCleanup(msg);
      break;
    case MsgType::kAdminInspect:
      OnAdminInspect(msg);
      break;
    default:
      THREEV_LOG(kWarn) << "node " << options_.id << ": unexpected "
                        << msg.ToString();
  }
}

// ---------------------------------------------------------------------------
// Submission and subtransaction arrival
// ---------------------------------------------------------------------------

void Node::OnClientSubmit(const Message& msg) {
  // The root subtransaction executes here (the tree model's "submitted to
  // one server"); a plan rooted elsewhere is a client routing error, and
  // silently reading another node's keys here would corrupt results.
  if (msg.plan.node != options_.id) {
    Message m;
    m.type = MsgType::kClientResult;
    m.from = options_.id;
    m.seq = msg.seq;
    m.status_code = StatusCode::kInvalidArgument;
    m.status_msg = "plan rooted at node " + std::to_string(msg.plan.node) +
                   " submitted to node " + std::to_string(options_.id);
    m.trace = msg.trace;
    network_->Send(msg.from, std::move(m));
    return;
  }
  auto ctx = std::make_shared<ExecContext>();
  {
    MutexLock lock(mu_);
    ReserveSeqsLocked();
    ctx->txn = MakeGlobalId(options_.id, next_txn_seq_++);
    ctx->subtxn = MakeGlobalId(options_.id, next_subtxn_seq_++);
  }
  ctx->source = options_.id;
  ctx->is_root = true;
  ctx->read_only = msg.flag;
  ctx->klass = static_cast<TxnClass>(msg.klass);
  ctx->plan = msg.plan;
  ctx->client = msg.from;
  ctx->client_seq = msg.seq;
  ctx->submit_time = network_->Now();
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Root span of the whole transaction tree at this node, parented under
    // the client's request span (if the submit carried one).
    ctx->trace = tracer_->BeginSpan(ctx->submit_time, options_.id,
                                    TraceOp::kTxn, msg.trace,
                                    static_cast<int64_t>(ctx->txn));
  }
  if (history_ != nullptr) {
    TxnSpec spec;
    spec.root = msg.plan;
    spec.read_only = msg.flag;
    spec.klass = ctx->klass;
    history_->RecordSubmit(ctx->txn, spec, ctx->submit_time);
  }
  StartSubtxn(std::move(ctx));
}

void Node::OnSubtxnRequest(const Message& msg) {
  auto ctx = std::make_shared<ExecContext>();
  ctx->txn = msg.txn;
  ctx->subtxn = msg.subtxn;
  ctx->parent_subtxn = msg.parent_subtxn;
  ctx->source = msg.from;
  ctx->version = msg.version;
  ctx->is_root = false;
  ctx->read_only = msg.flag;
  ctx->compensation = msg.seq == 1;
  ctx->klass = static_cast<TxnClass>(msg.klass);
  ctx->plan = msg.plan;
  if (tracer_ != nullptr && tracer_->enabled()) {
    ctx->trace = tracer_->BeginSpan(network_->Now(), options_.id,
                                    TraceOp::kSubtxn, msg.trace,
                                    static_cast<int64_t>(ctx->subtxn));
  }
  StartSubtxn(std::move(ctx));
}

void Node::StartSubtxn(ExecPtr ctx) {
  {
    MutexLock lock(mu_);
    if (ctx->is_root) {
      // Section 4.1 step 1 / Section 4.2: a root subtransaction is assigned
      // the current update (or read) version and counts a local request.
      if (ctx->read_only && ctx->klass == TxnClass::kWellBehaved) {
        ctx->version = options_.read_policy == ReadPolicy::kCurrentVersion
                           ? vu_
                           : vr_;
      } else {
        // Updates - and non-commuting reads (GlobalSync baseline), which
        // must observe current data under locks - use the update version.
        ctx->version = vu_;
      }
      counters_.IncR(ctx->version, options_.id);
      LogCounter(ctx->version, /*is_r=*/true, options_.id);
    } else if (!ctx->read_only) {
      if (options_.version_assignment == VersionAssignment::kLocalPeriod) {
        // Manual-versioning baseline: the write lands in whatever period
        // this node is currently accumulating (see VersionAssignment).
        ctx->version = vu_;
      } else if (ctx->version > vu_) {
        // Section 4.1 step 2: a descendant carrying a newer version than
        // our current update version doubles as the start-advancement
        // notification (version inference).
        AdvanceUpdateVersionLocked(ctx->version, ctx->trace);
        if (metrics_ != nullptr) {
          metrics_->version_inferences.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
      }
    }
  }

  // Fast path: pure 3V mode never locks; well-behaved read-only
  // transactions never lock in any mode ("read-only transactions ... do
  // not need to obtain any locks", Section 8). Non-commuting reads exist
  // only in the GlobalSync baseline, which forces everything through the
  // locking path below.
  if (options_.mode == NodeMode::kPure3V ||
      (ctx->read_only && ctx->klass == TxnClass::kWellBehaved)) {
    ExecuteBody(std::move(ctx));
    return;
  }

  if (ctx->klass == TxnClass::kWellBehaved) {
    // NC3V mode: well-behaved updates take commuting locks (2PL; released
    // by the asynchronous clean-up after the whole tree commits).
    ctx->lock_needs = ComputeLockNeeds(ctx->plan, /*non_commuting=*/false);
    ExecPtr c = ctx;
    AcquireNextLock(ctx, [this, c](bool granted) {
      // Commuting lock requests are only ever cancelled at shutdown.
      if (granted) ExecuteBody(c);
    });
    return;
  }

  // Non-commuting transaction. A root must pass the version gate first
  // (Section 5 step 2): proceed only when V(K) == vr + 1, i.e. no version
  // advancement is in flight for its version.
  if (ctx->is_root) {
    bool pass;
    {
      MutexLock lock(mu_);
      pass = VersionGateOpen(ctx->version, vr_);
      if (!pass) {
        ExecPtr c = ctx;
        gate_waiters_.emplace_back(ctx->version,
                                   [this, c] { ProceedNonCommuting(c); });
      }
    }
    if (pass) {
      ProceedNonCommuting(std::move(ctx));
    } else if (metrics_ != nullptr) {
      metrics_->version_gate_waits.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  ProceedNonCommuting(std::move(ctx));
}

void Node::ProceedNonCommuting(ExecPtr ctx) {
  ctx->lock_needs = ComputeLockNeeds(ctx->plan, /*non_commuting=*/true);
  ctx->lock_wait_start = network_->Now();

  // Deadlocks among non-commuting transactions (and against held commute
  // locks) are resolved by timeout-abort. The timeout re-arms until the
  // lock phase resolves: a single-shot timer could fire in the window
  // between two acquisitions of the chain (nothing queued to cancel) and
  // leave the next wait unbounded - a deadlock enabler under heavy
  // message reordering.
  if (!ctx->lock_needs.empty()) {
    ArmLockTimeout(ctx);
  }

  ExecPtr c = ctx;
  AcquireNextLock(ctx, [this, c](bool granted) {
    if (granted) {
      ExecuteBodyNC(c);
      return;
    }
    // Lock timeout: this subtransaction aborts; the root will decide abort
    // for the whole transaction in 2PC. Locks already held stay until the
    // decision (strict 2PL).
    {
      MutexLock lock(mu_);
      NcTxnState& st = nc_txns_[c->txn];
      st.failed = true;
      st.completions.emplace_back(c->version, c->source);
    }
    FinishExecution(c, Status::Aborted("lock wait timeout"), {}, {});
  });
}

void Node::ArmLockTimeout(ExecPtr ctx) {
  ExecPtr c = std::move(ctx);
  network_->ScheduleAfter(options_.nc_lock_timeout, [this, c] {
    if (halted_.load(std::memory_order_acquire)) return;
    {
      MutexLock lock(mu_);
      if (c->lock_done) return;
    }
    locks_.CancelWaits(c->txn);
    // Keep watching until the lock phase resolves: the cancel may have hit
    // nothing (between acquisitions) or only a sibling subtransaction's
    // wait; the next fire exits once lock_done is set.
    ArmLockTimeout(c);
  });
}

void Node::AcquireNextLock(ExecPtr ctx, std::function<void(bool)> done) {
  size_t i;
  {
    MutexLock lock(mu_);
    if (ctx->lock_done) return;  // already failed (cancelled)
    i = ctx->next_lock;
  }
  if (i >= ctx->lock_needs.size()) {
    {
      MutexLock lock(mu_);
      ctx->lock_done = true;
    }
    done(true);
    return;
  }
  const auto& [key, mode] = ctx->lock_needs[i];
  Micros t0 = network_->Now();
  auto returned = std::make_shared<std::atomic<bool>>(false);
  ExecPtr c = ctx;
  locks_.Acquire(key, mode, ctx->txn,
                 [this, c, done, t0, returned](bool granted) {
                   if (returned->load(std::memory_order_acquire)) {
                     // Deferred grant: the subtransaction actually waited.
                     Micros waited = network_->Now() - t0;
                     if (metrics_ != nullptr) {
                       metrics_->lock_waits.fetch_add(
                           1, std::memory_order_relaxed);
                       metrics_->lock_wait_micros.fetch_add(
                           waited, std::memory_order_relaxed);
                     }
                     if (tracer_ != nullptr && tracer_->enabled()) {
                       tracer_->Instant(network_->Now(), options_.id,
                                        TraceOp::kLockWait, c->trace,
                                        /*msg_type=*/0, waited);
                     }
                   }
                   if (!granted) {
                     {
                       MutexLock lock(mu_);
                       c->lock_done = true;
                     }
                     done(false);
                     return;
                   }
                   {
                     MutexLock lock(mu_);
                     c->next_lock++;
                   }
                   AcquireNextLock(c, done);
                 });
  returned->store(true, std::memory_order_release);
}

std::vector<std::pair<std::string, LockMode>> Node::ComputeLockNeeds(
    const SubtxnPlan& plan, bool non_commuting) {
  std::map<std::string, LockMode> needs;
  for (const auto& op : plan.ops) {
    LockMode mode;
    if (OpWrites(op.kind)) {
      mode = non_commuting ? LockMode::kNCWrite : LockMode::kCommuteUpdate;
    } else {
      mode = non_commuting ? LockMode::kNCRead : LockMode::kCommuteRead;
    }
    auto it = needs.find(op.key);
    if (it == needs.end()) {
      needs.emplace(op.key, mode);
    } else if (LockSubsumes(mode, it->second)) {
      it->second = mode;
    }
  }
  // std::map iteration is key-sorted: deterministic acquisition order
  // avoids local deadlocks between subtransactions of the same node.
  return {needs.begin(), needs.end()};
}

// ---------------------------------------------------------------------------
// Execution bodies
// ---------------------------------------------------------------------------

void Node::ExecuteBody(ExecPtr ctx) {
  std::map<std::string, Value> reads;
  std::vector<WalImage> images;
  for (const auto& op : ctx->plan.ops) {
    if (op.kind == OpKind::kGet) {
      // Read the maximum existing version not exceeding V(T); a key that
      // does not exist yet reads as an empty record (recording semantics),
      // which is exactly ReadInto's leave-unchanged-on-NotFound contract.
      store_.ReadInto(op.key, ctx->version, &reads[op.key]);
    } else if (op.kind == OpKind::kScan) {
      for (auto& [key, value] : store_.ScanPrefix(op.key, ctx->version)) {
        reads[key] = std::move(value);
      }
    } else {
      std::vector<std::pair<Version, Value>> after;
      store_.Update(op.key, ctx->version, op,
                    wal_ != nullptr ? &after : nullptr);
      for (auto& [v, value] : after) {
        images.push_back(WalImage{op.key, v, std::move(value)});
      }
    }
  }

  // Log before externalizing: no child request or completion notice may
  // leave this node before the redo images it depends on are durable.
  if (!images.empty()) {
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.version = ctx->version;
    rec.txn = ctx->txn;
    rec.images = std::move(images);
    LogRecord(rec);
  }

  std::vector<SubtxnId> spawned;
  spawned.reserve(ctx->plan.children.size());
  for (const auto& child : ctx->plan.children) {
    spawned.push_back(SpawnChild(ctx, child, ctx->compensation));
  }

  // Failure injection (root update subtransactions only): abort after
  // executing and spawning, roll back local effects via inverse operations
  // and send compensating subtransactions down every child branch
  // (Section 3.2). Compensators are ordinary subtransactions: they bump
  // the same R/C counters, which is exactly what keeps the advancement
  // quiescence check honest while compensation traffic is in flight.
  if (ctx->is_root && !ctx->read_only && !ctx->compensation &&
      InjectAbort()) {
    std::vector<WalImage> inverse_images;
    for (auto it = ctx->plan.ops.rbegin(); it != ctx->plan.ops.rend(); ++it) {
      Operation inv;
      if (it->kind != OpKind::kGet && it->Invert(inv)) {
        std::vector<std::pair<Version, Value>> after;
        store_.Update(inv.key, ctx->version, inv,
                      wal_ != nullptr ? &after : nullptr);
        for (auto& [v, value] : after) {
          inverse_images.push_back(WalImage{inv.key, v, std::move(value)});
        }
      }
    }
    if (!inverse_images.empty()) {
      WalRecord rec;
      rec.type = WalRecordType::kUpdate;
      rec.version = ctx->version;
      rec.txn = ctx->txn;
      rec.images = std::move(inverse_images);
      LogRecord(rec);
    }
    for (const auto& child : ctx->plan.children) {
      Result<SubtxnPlan> comp = MakeCompensationPlan(child);
      if (comp.ok()) {
        spawned.push_back(SpawnChild(ctx, *comp, /*compensation=*/true));
        if (metrics_ != nullptr) {
          metrics_->compensations_sent.fetch_add(1,
                                                 std::memory_order_relaxed);
        }
      }
    }
    FinishExecution(ctx, Status::Aborted("injected abort"),
                    std::move(spawned), {});
    return;
  }

  FinishExecution(ctx, Status::Ok(), std::move(spawned), std::move(reads));
}

void Node::ExecuteBodyNC(ExecPtr ctx) {
  std::map<std::string, Value> reads;
  std::vector<UndoEntry> undo_local;
  std::vector<WalImage> nc_images;
  Status failure;
  for (const auto& op : ctx->plan.ops) {
    if (op.kind == OpKind::kGet) {
      store_.ReadInto(op.key, ctx->version, &reads[op.key]);
      continue;
    }
    if (op.kind == OpKind::kScan) {
      // Scans are rejected by TxnSpec::Validate for non-read-only
      // transactions; handle defensively as a plain read-out.
      for (auto& [key, value] : store_.ScanPrefix(op.key, ctx->version)) {
        reads[key] = std::move(value);
      }
      continue;
    }
    UndoEntry undo;
    Value after;
    Status s = store_.UpdateExact(op.key, ctx->version, op, &undo,
                                  wal_ != nullptr ? &after : nullptr);
    if (!s.ok()) {
      // Section 5 step 4: the item exists in a newer version - abort.
      failure = s;
      break;
    }
    if (wal_ != nullptr) {
      nc_images.push_back(WalImage{op.key, ctx->version, std::move(after)});
    }
    undo_local.push_back(std::move(undo));
  }

  // The full participant state - redo images, undo entries, the deferred
  // completion pair - goes to the log before any child request or
  // completion notice leaves this node: a restarted participant re-enters
  // 2PC with exactly this record.
  {
    WalRecord rec;
    rec.type = WalRecordType::kNcExecute;
    rec.version = ctx->version;
    rec.peer = ctx->source;
    rec.txn = ctx->txn;
    rec.failed = !failure.ok();
    rec.images = std::move(nc_images);
    rec.undo = undo_local;
    LogRecord(rec);
  }

  std::vector<SubtxnId> spawned;
  if (failure.ok()) {
    for (const auto& child : ctx->plan.children) {
      spawned.push_back(SpawnChild(ctx, child, /*compensation=*/false));
    }
  }

  {
    MutexLock lock(mu_);
    NcTxnState& st = nc_txns_[ctx->txn];
    for (auto& u : undo_local) st.undo.push_back(std::move(u));
    st.completions.emplace_back(ctx->version, ctx->source);
    if (!failure.ok()) st.failed = true;
  }

  FinishExecution(ctx, failure, std::move(spawned), std::move(reads));
}

SubtxnId Node::SpawnChild(const ExecPtr& ctx, const SubtxnPlan& child,
                          bool compensation) {
  SubtxnId sid = NewSubtxnId();
  // Section 4.1 step 5: increment R(v)[here][target] *before* sending.
  counters_.IncR(ctx->version, child.node);
  LogCounter(ctx->version, /*is_r=*/true, child.node);
  Message m;
  m.type = MsgType::kSubtxnRequest;
  m.from = options_.id;
  m.txn = ctx->txn;
  m.subtxn = sid;
  m.parent_subtxn = ctx->subtxn;
  m.version = ctx->version;
  m.flag = ctx->read_only;
  m.seq = compensation ? 1 : 0;
  m.klass = static_cast<uint8_t>(ctx->klass);
  m.plan = child;
  // Child requests carry this subtransaction's span so the remote
  // kSubtxn span parents under it.
  m.trace = ctx->trace;
  network_->Send(child.node, std::move(m));
  return sid;
}

void Node::FinishExecution(const ExecPtr& ctx, Status status,
                           std::vector<SubtxnId> spawned,
                           std::map<std::string, Value> reads) {
  if (metrics_ != nullptr) {
    metrics_->subtxns_executed.fetch_add(1, std::memory_order_relaxed);
  }
  PendingSubtxn rec;
  rec.txn = ctx->txn;
  rec.subtxn = ctx->subtxn;
  rec.parent_subtxn = ctx->parent_subtxn;
  rec.source = ctx->source;
  rec.version = ctx->version;
  rec.is_root = ctx->is_root;
  rec.read_only = ctx->read_only;
  rec.klass = ctx->klass;
  rec.outstanding = spawned.size();
  rec.reads = std::move(reads);
  rec.status = std::move(status);
  rec.participants.insert(options_.id);
  rec.client = ctx->client;
  rec.client_seq = ctx->client_seq;
  rec.submit_time = ctx->submit_time;
  rec.trace = ctx->trace;
  if (rec.outstanding == 0) {
    CompleteSubtxn(std::move(rec));
    return;
  }
  MutexLock lock(mu_);
  pending_.emplace(rec.subtxn, std::move(rec));
}

// ---------------------------------------------------------------------------
// Hierarchical completion
// ---------------------------------------------------------------------------

void Node::OnCompletionNotice(const Message& msg) {
  bool done = false;
  PendingSubtxn completed;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(msg.parent_subtxn);
    if (it == pending_.end()) {
      THREEV_LOG(kWarn) << "node " << options_.id
                        << ": completion notice for unknown parent subtxn "
                        << msg.parent_subtxn;
      return;
    }
    PendingSubtxn& rec = it->second;
    THREEV_CHECK(rec.outstanding > 0);
    rec.outstanding--;
    for (const auto& [key, value] : msg.reads) {
      rec.reads.emplace(key, value);
    }
    for (SubtxnId participant : msg.spawned) {
      rec.participants.insert(static_cast<NodeId>(participant));
    }
    if (msg.status_code != StatusCode::kOk && rec.status.ok()) {
      rec.status = Status(msg.status_code, msg.status_msg);
    }
    if (rec.outstanding == 0) {
      done = true;
      completed = std::move(rec);
      pending_.erase(it);
    }
  }
  if (done) CompleteSubtxn(std::move(completed));
}

void Node::CompleteSubtxn(PendingSubtxn rec) {
  // Section 4.1 step 6: the completion counter increments when the
  // subtransaction terminates - which, per the paper's Table 1, is when its
  // whole subtree has completed. For non-commuting transactions the
  // increment is deferred to the 2PC decision (Section 5 step 6).
  if (rec.klass != TxnClass::kNonCommuting) {
    if (options_.test_skip_first_completion &&
        !test_completion_skipped_.exchange(true)) {
      // Injected protocol bug (see NodeOptions): lose exactly one
      // completion-counter increment so the fuzz oracle battery has a
      // known-bad target to catch.
    } else {
      counters_.IncC(rec.version, rec.source);
      LogCounter(rec.version, /*is_r=*/false, rec.source);
    }
  }
  if (rec.is_root) {
    ResolveRoot(std::move(rec));
    return;
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The subtransaction terminates (paper's sense: whole subtree done).
    tracer_->EndSpan(network_->Now(), options_.id, TraceOp::kSubtxn,
                     rec.trace, static_cast<int64_t>(rec.subtxn));
  }
  Message m;
  m.type = MsgType::kCompletionNotice;
  m.from = options_.id;
  m.txn = rec.txn;
  m.subtxn = rec.subtxn;
  m.parent_subtxn = rec.parent_subtxn;
  m.version = rec.version;
  m.trace = rec.trace;
  for (const auto& [key, value] : rec.reads) m.reads.emplace_back(key, value);
  for (NodeId p : rec.participants) {
    m.spawned.push_back(static_cast<SubtxnId>(p));
  }
  m.status_code = rec.status.code();
  m.status_msg = rec.status.message();
  network_->Send(rec.source, std::move(m));
}

void Node::ResolveRoot(PendingSubtxn rec) {
  if (rec.klass == TxnClass::kWellBehaved) {
    // Asynchronous commute-lock clean-up (Section 5): only relevant in
    // NC3V mode and only for update transactions (reads take no locks).
    if (options_.mode == NodeMode::kNC3V && !rec.read_only) {
      for (NodeId p : rec.participants) {
        Message m;
        m.type = MsgType::kLockCleanup;
        m.from = options_.id;
        m.txn = rec.txn;
        m.trace = rec.trace;
        network_->Send(p, std::move(m));
      }
    }
    FinishRoot(rec, rec.status);
    return;
  }

  // Non-commuting root: run two-phase commit over the participants.
  // Presumed abort: if any subtransaction already failed, skip the vote
  // round and distribute the abort decision directly.
  std::vector<NodeId> participants(rec.participants.begin(),
                                   rec.participants.end());
  TxnId txn = rec.txn;
  bool prepare = rec.status.ok();
  if (!prepare) {
    // Presumed abort still logs the decision before distributing it: a
    // restarted root must re-drive the aborts, not forget the transaction.
    WalRecord wrec;
    wrec.type = WalRecordType::kNcRootDecision;
    wrec.txn = txn;
    wrec.flag = false;
    LogRecord(wrec, /*force=*/true);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The 2PC rounds get their own span under the transaction span; it
    // closes in FinishRoot once every ack is in.
    rec.twopc_trace =
        tracer_->BeginSpan(network_->Now(), options_.id, TraceOp::kTwopc,
                           rec.trace, static_cast<int64_t>(txn));
  }
  TraceContext twopc_trace = rec.twopc_trace;
  {
    MutexLock lock(mu_);
    nc_roots_[txn] = rec.subtxn;
    if (prepare) {
      rec.vote_waiting.insert(participants.begin(), participants.end());
    } else {
      rec.commit = false;
      rec.ack_waiting.insert(participants.begin(), participants.end());
    }
    pending_.emplace(rec.subtxn, std::move(rec));
  }
  for (NodeId p : participants) {
    Message m;
    m.type = prepare ? MsgType::kPrepare : MsgType::kDecision;
    m.from = options_.id;
    m.txn = txn;
    m.flag = false;  // only meaningful for kDecision: abort
    m.trace = twopc_trace;
    network_->Send(p, std::move(m));
  }
  ArmTwopcRetry(txn);
}

void Node::FinishRoot(PendingSubtxn& rec, Status status) {
  Micros now = network_->Now();
  bool committed = status.ok();
  if (metrics_ != nullptr) {
    if (committed) {
      metrics_->txns_committed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_->txns_aborted.fetch_add(1, std::memory_order_relaxed);
    }
    Micros latency = now - rec.submit_time;
    if (rec.read_only) {
      metrics_->read_latency.Record(latency);
      MutexLock lock(mu_);
      auto it = frozen_time_.find(rec.version);
      if (it != frozen_time_.end()) {
        metrics_->staleness.Record(now - it->second);
      }
    } else {
      metrics_->update_latency.Record(latency);
    }
  }
  if (history_ != nullptr) {
    history_->RecordComplete(rec.txn, committed, rec.version, rec.reads, now);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    if (rec.twopc_trace.valid()) {
      tracer_->EndSpan(now, options_.id, TraceOp::kTwopc, rec.twopc_trace,
                       committed ? 1 : 0);
    }
    tracer_->EndSpan(now, options_.id, TraceOp::kTxn, rec.trace,
                     committed ? 1 : 0);
  }
  Message m;
  m.type = MsgType::kClientResult;
  m.from = options_.id;
  m.txn = rec.txn;
  m.seq = rec.client_seq;
  m.version = rec.version;
  for (const auto& [key, value] : rec.reads) m.reads.emplace_back(key, value);
  m.status_code = status.code();
  m.status_msg = status.message();
  m.trace = rec.trace;
  network_->Send(rec.client, std::move(m));
}

// ---------------------------------------------------------------------------
// Two-phase commit (NC3V)
// ---------------------------------------------------------------------------

void Node::OnPrepare(const Message& msg) {
  bool vote = true;
  {
    MutexLock lock(mu_);
    auto it = nc_txns_.find(msg.txn);
    if (it == nc_txns_.end()) {
      // No participant state: either this node crashed before the
      // subtransaction's kNcExecute record was durable (its effects are
      // gone, so commit would be wrong) or the decision was already
      // applied here and this is a stale retransmitted prepare (the root
      // has decided, so the no-vote is ignored). Either way: vote no.
      vote = false;
    } else if (it->second.failed) {
      vote = false;
    }
  }
  if (vote) {
    // The yes-vote is a durable promise: after a reboot this node must
    // still be able to honor a commit decision, which requires the
    // prepared state (and its log records) to survive.
    WalRecord rec;
    rec.type = WalRecordType::kNcPrepared;
    rec.txn = msg.txn;
    LogRecord(rec, /*force=*/true);
  }
  Message m;
  m.type = MsgType::kVote;
  m.from = options_.id;
  m.txn = msg.txn;
  m.flag = vote;
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
}

void Node::OnVote(const Message& msg) {
  bool decide = false;
  bool commit = true;
  std::vector<NodeId> participants;
  TraceContext twopc_trace;
  {
    MutexLock lock(mu_);
    auto rit = nc_roots_.find(msg.txn);
    if (rit == nc_roots_.end()) return;
    auto pit = pending_.find(rit->second);
    if (pit == pending_.end()) return;
    PendingSubtxn& rec = pit->second;
    if (rec.vote_waiting.erase(msg.from) == 0) return;  // duplicate vote
    if (!msg.flag) rec.commit = false;
    if (rec.vote_waiting.empty() && rec.ack_waiting.empty()) {
      decide = true;
      commit = rec.commit;
      twopc_trace = rec.twopc_trace;
      rec.ack_waiting.insert(rec.participants.begin(),
                             rec.participants.end());
      participants.assign(rec.participants.begin(), rec.participants.end());
    }
  }
  if (!decide) return;
  // Force the decision record before the first decision message leaves:
  // presumed abort on recovery is sound only if a logged decision is the
  // sole possible source of a delivered commit.
  WalRecord rec;
  rec.type = WalRecordType::kNcRootDecision;
  rec.txn = msg.txn;
  rec.flag = commit;
  LogRecord(rec, /*force=*/true);
  for (NodeId p : participants) {
    Message m;
    m.type = MsgType::kDecision;
    m.from = options_.id;
    m.txn = msg.txn;
    m.flag = commit;
    m.trace = twopc_trace;
    network_->Send(p, std::move(m));
  }
}

void Node::OnDecision(const Message& msg) {
  NcTxnState st;
  bool known = false;
  {
    MutexLock lock(mu_);
    auto it = nc_txns_.find(msg.txn);
    if (it != nc_txns_.end()) {
      known = true;
      st = std::move(it->second);
      nc_txns_.erase(it);
    }
  }
  // Durable before applied: replay re-derives the undo application from
  // the still-logged kNcExecute state, and the completion increments
  // follow as their own kCounter records below.
  if (known) {
    WalRecord rec;
    rec.type = WalRecordType::kNcDecision;
    rec.txn = msg.txn;
    rec.flag = msg.flag;
    LogRecord(rec, /*force=*/true);
  }
  if (!msg.flag) {
    for (auto it = st.undo.rbegin(); it != st.undo.rend(); ++it) {
      store_.Undo(*it);
    }
  }
  // "The completion counter is incremented atomically together with
  // commitment" - and symmetrically with the abort, which also terminates
  // the transaction for quiescence-detection purposes.
  for (const auto& [version, source] : st.completions) {
    counters_.IncC(version, source);
    LogCounter(version, /*is_r=*/false, source);
  }
  locks_.CancelWaits(msg.txn);
  locks_.ReleaseAll(msg.txn);
  Message m;
  m.type = MsgType::kDecisionAck;
  m.from = options_.id;
  m.txn = msg.txn;
  m.flag = msg.flag;
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
}

void Node::OnDecisionAck(const Message& msg) {
  bool done = false;
  PendingSubtxn rec;
  {
    MutexLock lock(mu_);
    // Recovery re-broadcasts resolve against their own ack set: the txn
    // has no pending root record (it finished or died pre-crash), only a
    // durably logged decision being re-driven to completion.
    auto recovered = recovered_decisions_.find(msg.txn);
    if (recovered != recovered_decisions_.end()) {
      recovered->second.second.erase(msg.from);
      if (recovered->second.second.empty()) {
        recovered_decisions_.erase(recovered);
      }
      return;
    }
    auto rit = nc_roots_.find(msg.txn);
    if (rit == nc_roots_.end()) return;
    auto pit = pending_.find(rit->second);
    if (pit == pending_.end()) return;
    if (pit->second.ack_waiting.erase(msg.from) == 0) return;  // duplicate
    if (pit->second.ack_waiting.empty()) {
      done = true;
      rec = std::move(pit->second);
      pending_.erase(pit);
      nc_roots_.erase(rit);
    }
  }
  if (!done) return;
  Status status = rec.commit
                      ? Status::Ok()
                      : (rec.status.ok() ? Status::Aborted("2pc abort")
                                         : rec.status);
  FinishRoot(rec, status);
}

void Node::OnLockCleanup(const Message& msg) {
  locks_.ReleaseAll(msg.txn);
}

// ---------------------------------------------------------------------------
// Version advancement participation (Section 4.3)
// ---------------------------------------------------------------------------

void Node::AdvanceUpdateVersionLocked(Version v, const TraceContext& trace) {
  Micros now = network_->Now();
  frozen_time_[vu_] = now;
  vu_ = v;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(now, options_.id, TraceOp::kVersionSwitch, trace,
                     /*msg_type=*/0, static_cast<int64_t>(v));
  }
  // Counter rows for the new version are created lazily on first touch.
  WalRecord rec;
  rec.type = WalRecordType::kVersionSwitch;
  rec.version = v;
  rec.flag = true;  // vu
  LogRecord(rec);
}

void Node::OnStartAdvancement(const Message& msg) {
  {
    MutexLock lock(mu_);
    if (msg.version > vu_) AdvanceUpdateVersionLocked(msg.version, msg.trace);
  }
  Message m;
  m.type = MsgType::kStartAdvancementAck;
  m.from = options_.id;
  m.version = msg.version;
  m.seq = msg.seq;
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
}

void Node::OnCounterRead(const Message& msg) {
  Message m;
  m.type = MsgType::kCounterReadReply;
  m.from = options_.id;
  m.version = msg.version;
  m.seq = msg.seq;
  m.flag = msg.flag;
  if (msg.flag) {
    m.counters_r = counters_.SnapshotR(msg.version);
  } else {
    m.counters_c = counters_.SnapshotC(msg.version);
  }
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
}

void Node::OnReadVersionAdvance(const Message& msg) {
  {
    MutexLock lock(mu_);
    if (msg.version > vr_) {
      vr_ = msg.version;
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Instant(network_->Now(), options_.id,
                         TraceOp::kReadVersionSwitch, msg.trace,
                         /*msg_type=*/0, static_cast<int64_t>(msg.version));
      }
      WalRecord rec;
      rec.type = WalRecordType::kVersionSwitch;
      rec.version = msg.version;
      rec.flag = false;  // vr
      LogRecord(rec);
    }
  }
  Message m;
  m.type = MsgType::kReadVersionAdvanceAck;
  m.from = options_.id;
  m.version = msg.version;
  m.seq = msg.seq;
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
  WakeVersionGateWaiters();
}

void Node::WakeVersionGateWaiters() {
  std::vector<std::function<void()>> runnable;
  {
    MutexLock lock(mu_);
    for (auto it = gate_waiters_.begin(); it != gate_waiters_.end();) {
      if (VersionGateOpen(it->first, vr_)) {
        runnable.push_back(std::move(it->second));
        it = gate_waiters_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& fn : runnable) fn();
}

void Node::OnGarbageCollect(const Message& msg) {
  // Durable before applied (and before the ack): replay re-runs the same
  // GC over the reconstructed store, which is idempotent.
  WalRecord rec;
  rec.type = WalRecordType::kGarbageCollect;
  rec.version = msg.version;
  LogRecord(rec);
  store_.GarbageCollect(msg.version);
  counters_.DropBelow(msg.version);
  {
    MutexLock lock(mu_);
    frozen_time_.erase(frozen_time_.begin(),
                       frozen_time_.lower_bound(msg.version));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant(network_->Now(), options_.id, TraceOp::kGarbageCollect,
                     msg.trace, /*msg_type=*/0,
                     static_cast<int64_t>(msg.version));
  }
  Message m;
  m.type = MsgType::kGarbageCollectAck;
  m.from = options_.id;
  m.version = msg.version;
  m.seq = msg.seq;
  m.trace = msg.trace;
  network_->Send(msg.from, std::move(m));
}

// ---------------------------------------------------------------------------
// Protocol introspection (DESIGN.md section 12)
// ---------------------------------------------------------------------------

void Node::OnAdminInspect(const Message& msg) {
  Message m = MakeInspectReply(msg, options_.id);
  Version counter_version;
  {
    MutexLock lock(mu_);
    InspectPutNum(&m, "vu", vu_);
    InspectPutNum(&m, "vr", vr_);
    InspectPutNum(&m, "pending_subtxns",
                  static_cast<int64_t>(pending_.size()));
    InspectPutNum(&m, "nc_txns", static_cast<int64_t>(nc_txns_.size()));
    InspectPutNum(&m, "gate_waiters",
                  static_cast<int64_t>(gate_waiters_.size()));
    // Counter rows for the probed version. flag=true marks the version
    // field as explicit even when it is 0 (version 0 carries real read
    // traffic before the first advancement); otherwise 0 defaults to the
    // current update version.
    counter_version = msg.flag || msg.version != 0 ? msg.version : vu_;
  }
  InspectPutStr(&m, "mode",
                options_.mode == NodeMode::kPure3V ? "pure3v" : "nc3v");
  InspectPutNum(&m, "locks_held",
                static_cast<int64_t>(locks_.HeldCount()));
  InspectPutNum(&m, "lock_waiters",
                static_cast<int64_t>(locks_.WaiterCount()));
  InspectPutNum(&m, "store_keys", static_cast<int64_t>(store_.KeyCount()));
  // Fuzz-oracle surface (DESIGN.md section 13): the paper's <=3-versions
  // bound as this store observed it, and which counter-matrix rows are
  // still live (comma-separated versions) so an external prober knows the
  // exact set of versions to re-probe for conservation - all without
  // touching node internals.
  InspectPutNum(&m, "max_versions_observed",
                static_cast<int64_t>(store_.MaxVersionsObserved()));
  {
    std::string active;
    for (Version v : counters_.ActiveVersions()) {
      if (!active.empty()) active.push_back(',');
      active += std::to_string(v);
    }
    InspectPutStr(&m, "active_versions", active);
  }
  {
    MutexLock lock(wal_mu_);
    if (wal_ != nullptr) {
      InspectPutNum(&m, "wal_segment",
                    static_cast<int64_t>(wal_->current_segment()));
      InspectPutNum(&m, "wal_bytes",
                    static_cast<int64_t>(wal_->bytes_appended()));
    }
  }
  InspectPutNum(&m, "counters_version", counter_version);
  m.counters_r = counters_.SnapshotR(counter_version);
  m.counters_c = counters_.SnapshotC(counter_version);
  network_->Send(msg.from, std::move(m));
}

}  // namespace threev
