#include "threev/core/cluster.h"

#include <string>

namespace threev {

void Client::HandleMessage(const Message& msg) {
  if (msg.type != MsgType::kClientResult) return;
  ResultCallback cb;
  Micros submit_time = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(msg.seq);
    if (it == inflight_.end()) return;
    cb = std::move(it->second.first);
    submit_time = it->second.second;
    inflight_.erase(it);
  }
  TxnResult result;
  result.id = msg.txn;
  result.status = Status(msg.status_code, msg.status_msg);
  result.version = msg.version;
  for (const auto& [key, value] : msg.reads) result.reads[key] = value;
  result.submit_time = submit_time;
  result.complete_time = network_->Now();
  if (cb) cb(result);
}

uint64_t Client::Submit(NodeId origin, const TxnSpec& spec,
                        ResultCallback cb) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    inflight_.emplace(seq, std::make_pair(std::move(cb), network_->Now()));
  }
  Message m;
  m.type = MsgType::kClientSubmit;
  m.from = id_;
  m.seq = seq;
  m.flag = spec.read_only;
  m.klass = static_cast<uint8_t>(spec.klass);
  m.plan = spec.root;
  network_->Send(origin, std::move(m));
  return seq;
}

size_t Client::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

Cluster::Cluster(const ClusterOptions& options, Network* network,
                 Metrics* metrics, HistoryRecorder* history) {
  for (size_t i = 0; i < options.num_nodes; ++i) {
    NodeOptions node_options;
    node_options.id = static_cast<NodeId>(i);
    node_options.num_nodes = options.num_nodes;
    node_options.mode = options.mode;
    node_options.read_policy = options.read_policy;
    node_options.nc_lock_timeout = options.nc_lock_timeout;
    node_options.inject_abort_probability = options.inject_abort_probability;
    node_options.seed = options.seed;
    nodes_.push_back(
        std::make_unique<Node>(node_options, network, metrics, history));
    Node* node = nodes_.back().get();
    network->RegisterEndpoint(node->id(),
                              [node](const Message& m) { node->HandleMessage(m); });
  }

  CoordinatorOptions coord_options;
  coord_options.id = coordinator_id();
  coord_options.num_nodes = options.num_nodes;
  coord_options.poll_interval = options.coordinator_poll_interval;
  coordinator_ = std::make_unique<AdvanceCoordinator>(coord_options, network,
                                                      metrics, history);
  AdvanceCoordinator* coord = coordinator_.get();
  network->RegisterEndpoint(
      coordinator_id(), [coord](const Message& m) { coord->HandleMessage(m); });

  client_ = std::make_unique<Client>(client_id(), network);
  Client* client = client_.get();
  network->RegisterEndpoint(
      client_id(), [client](const Message& m) { client->HandleMessage(m); });
}

uint64_t Cluster::Submit(NodeId origin, const TxnSpec& spec,
                         Client::ResultCallback cb) {
  return client_->Submit(origin, spec, std::move(cb));
}

Status Cluster::CheckInvariants() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Version vu = nodes_[i]->vu();
    Version vr = nodes_[i]->vr();
    if (!(vr < vu && vu <= vr + 2)) {
      return Status::Internal("node " + std::to_string(i) +
                              " violates vr < vu <= vr+2: vr=" +
                              std::to_string(vr) + " vu=" +
                              std::to_string(vu));
    }
    size_t max_versions = nodes_[i]->store().MaxVersionsObserved();
    if (max_versions > 3) {
      return Status::Internal("node " + std::to_string(i) + " held " +
                              std::to_string(max_versions) +
                              " simultaneous versions of an item");
    }
  }
  // Property 2(b): nodes differing in one version number agree on the
  // other. (Sampled pairwise; exact under SimNet where nothing moves
  // between the reads.)
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      Version vui = nodes_[i]->vu(), vuj = nodes_[j]->vu();
      Version vri = nodes_[i]->vr(), vrj = nodes_[j]->vr();
      if (vui != vuj && vri != vrj) {
        return Status::Internal(
            "nodes " + std::to_string(i) + "," + std::to_string(j) +
            " differ in both vu and vr (property 2b violated)");
      }
    }
  }
  return Status::Ok();
}

size_t Cluster::TotalPendingSubtxns() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->PendingSubtxns();
  return n;
}

}  // namespace threev
