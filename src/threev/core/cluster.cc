#include "threev/core/cluster.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "threev/common/logging.h"

namespace threev {

void Client::HandleMessage(const Message& msg) {
  if (msg.type == MsgType::kAdminInspectReply) {
    InspectCallback cb;
    {
      MutexLock lock(mu_);
      auto it = inspect_inflight_.find(msg.seq);
      if (it == inspect_inflight_.end()) return;
      cb = std::move(it->second);
      inspect_inflight_.erase(it);
    }
    if (cb) cb(InspectionFromReply(msg));
    return;
  }
  if (msg.type != MsgType::kClientResult) return;
  PendingResult pending;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(msg.seq);
    if (it == inflight_.end()) return;
    pending = std::move(it->second);
    inflight_.erase(it);
  }
  TxnResult result;
  result.id = msg.txn;
  result.status = Status(msg.status_code, msg.status_msg);
  result.version = msg.version;
  for (const auto& [key, value] : msg.reads) result.reads[key] = value;
  result.submit_time = pending.submit_time;
  result.complete_time = network_->Now();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->EndSpan(result.complete_time, id_, TraceOp::kClientRequest,
                     pending.trace, result.status.ok() ? 1 : 0);
  }
  if (pending.cb) pending.cb(result);
}

uint64_t Client::Submit(NodeId origin, const TxnSpec& spec,
                        ResultCallback cb) {
  uint64_t seq;
  Micros now = network_->Now();
  TraceContext trace;
  if (tracer_ != nullptr && tracer_->enabled()) {
    trace = tracer_->BeginSpan(now, id_, TraceOp::kClientRequest,
                               TraceContext{});
  }
  {
    MutexLock lock(mu_);
    seq = next_seq_++;
    PendingResult pending;
    pending.cb = std::move(cb);
    pending.submit_time = now;
    pending.trace = trace;
    inflight_.emplace(seq, std::move(pending));
  }
  Message m;
  m.type = MsgType::kClientSubmit;
  m.from = id_;
  m.seq = seq;
  m.flag = spec.read_only;
  m.klass = static_cast<uint8_t>(spec.klass);
  m.plan = spec.root;
  m.trace = trace;
  network_->Send(origin, std::move(m));
  return seq;
}

uint64_t Client::Inspect(NodeId target, Version counters_version,
                         InspectCallback cb) {
  uint64_t seq;
  {
    MutexLock lock(mu_);
    seq = next_seq_++;
    inspect_inflight_.emplace(seq, std::move(cb));
  }
  Message m;
  m.type = MsgType::kAdminInspect;
  m.from = id_;
  m.seq = seq;
  m.version = counters_version;
  // Marks the version as explicit: version 0 is a real (pre-advancement)
  // version, distinct from the "use current vu" default of plain probes.
  m.flag = counters_version != 0;
  network_->Send(target, std::move(m));
  return seq;
}

size_t Client::InFlight() const {
  MutexLock lock(mu_);
  return inflight_.size() + inspect_inflight_.size();
}

Cluster::Cluster(const ClusterOptions& options, Network* network,
                 Metrics* metrics, HistoryRecorder* history)
    : options_(options),
      network_(network),
      metrics_(metrics),
      history_(history),
      num_nodes_(options.num_nodes) {
  {
    MutexLock lock(mu_);
    nodes_.resize(options.num_nodes);
    for (size_t i = 0; i < options.num_nodes; ++i) {
      InstallNode(i, std::make_unique<Node>(MakeNodeOptions(i), network,
                                            metrics, history));
    }
  }

  CoordinatorOptions coord_options;
  coord_options.id = coordinator_id();
  coord_options.num_nodes = options.num_nodes;
  coord_options.poll_interval = options.coordinator_poll_interval;
  coord_options.retry_interval = options.coordinator_retry_interval;
  coord_options.tracer = options.tracer;
  coordinator_ = std::make_unique<AdvanceCoordinator>(coord_options, network,
                                                      metrics, history);
  AdvanceCoordinator* coord = coordinator_.get();
  network->RegisterEndpoint(
      coordinator_id(), [coord](const Message& m) { coord->HandleMessage(m); });

  client_ = std::make_unique<Client>(client_id(), network, options.tracer);
  Client* client = client_.get();
  network->RegisterEndpoint(
      client_id(), [client](const Message& m) { client->HandleMessage(m); });

  if (options.tracer != nullptr) {
    for (size_t i = 0; i < options.num_nodes; ++i) {
      options.tracer->SetTrackName(static_cast<NodeId>(i),
                                   "node-" + std::to_string(i));
    }
    options.tracer->SetTrackName(coordinator_id(), "coordinator");
    options.tracer->SetTrackName(client_id(), "client");
  }
}

NodeOptions Cluster::MakeNodeOptions(size_t i) const {
  NodeOptions node_options;
  node_options.id = static_cast<NodeId>(i);
  node_options.num_nodes = options_.num_nodes;
  node_options.mode = options_.mode;
  node_options.read_policy = options_.read_policy;
  node_options.nc_lock_timeout = options_.nc_lock_timeout;
  node_options.inject_abort_probability = options_.inject_abort_probability;
  node_options.seed = options_.seed;
  if (!options_.wal_dir.empty()) {
    node_options.wal_dir = options_.wal_dir + "/node-" + std::to_string(i);
    node_options.fsync = options_.fsync;
    node_options.wal_segment_bytes = options_.wal_segment_bytes;
  }
  node_options.twopc_retry_interval = options_.twopc_retry_interval;
  node_options.tracer = options_.tracer;
  node_options.test_skip_first_completion =
      options_.test_skip_completion_node >= 0 &&
      static_cast<size_t>(options_.test_skip_completion_node) == i;
  return node_options;
}

void Cluster::InstallNode(size_t i, std::unique_ptr<Node> node) {
  nodes_[i] = std::move(node);
  Node* raw = nodes_[i].get();
  network_->RegisterEndpoint(
      raw->id(), [raw](const Message& m) { raw->HandleMessage(m); });
  network_->SetEndpointUp(raw->id(), true);
}

Node& Cluster::node(size_t i) {
  MutexLock lock(mu_);
  return *nodes_[i];
}

const Node& Cluster::node(size_t i) const {
  MutexLock lock(mu_);
  return *nodes_[i];
}

bool Cluster::node_alive(size_t i) const {
  MutexLock lock(mu_);
  return nodes_[i] != nullptr;
}

void Cluster::KillNode(size_t i) {
  MutexLock lock(mu_);
  if (nodes_[i] == nullptr) return;
  nodes_[i]->Halt();
  network_->SetEndpointUp(static_cast<NodeId>(i), false);
  graveyard_.push_back(std::move(nodes_[i]));
  if (metrics_ != nullptr) {
    metrics_->node_crashes.fetch_add(1, std::memory_order_relaxed);
  }
}

void Cluster::RestartNode(size_t i) {
  {
    MutexLock lock(mu_);
    THREEV_CHECK(nodes_[i] == nullptr)
        << "restart of node " << i << " which is still alive";
  }
  THREEV_CHECK(!options_.wal_dir.empty())
      << "restart without durability: node " << i << " has no state to recover";
  // The node is live from the moment its constructor runs: recovery
  // re-broadcasts logged 2PC decisions to every node *including itself*
  // (it may be a participant in a tree it rooted), and a self-addressed
  // decision sent before InstallNode flips liveness must not be dropped
  // as a crash casualty. Delivery still waits for the event loop, by which
  // time the new handler is registered.
  network_->SetEndpointUp(static_cast<NodeId>(i), true);
  // Construct (and run crash recovery) outside the slot lock: recovery does
  // file I/O and re-broadcasts decisions, neither of which should stall
  // concurrent slot readers.
  auto fresh = std::make_unique<Node>(MakeNodeOptions(i), network_,
                                      metrics_, history_);
  MutexLock lock(mu_);
  InstallNode(i, std::move(fresh));
}

std::vector<Node*> Cluster::LiveNodes() const {
  MutexLock lock(mu_);
  std::vector<Node*> live;
  for (const auto& node : nodes_) {
    if (node != nullptr) live.push_back(node.get());
  }
  return live;
}

Status Cluster::CheckpointAll() {
  // Snapshot the live set, then checkpoint unlocked: parked incarnations
  // outlive the cluster, so the pointers stay valid even if a node is
  // killed mid-sweep (its checkpoint attempt just observes a halted node).
  for (Node* node : LiveNodes()) {
    Status s = node->WriteCheckpoint();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

uint64_t Cluster::Submit(NodeId origin, const TxnSpec& spec,
                         Client::ResultCallback cb) {
  return client_->Submit(origin, spec, std::move(cb));
}

void Cluster::InspectAll(
    std::function<void(std::vector<NodeInspection>)> done) {
  std::vector<NodeId> targets;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] != nullptr) targets.push_back(static_cast<NodeId>(i));
    }
  }
  targets.push_back(coordinator_id());

  // Shared aggregation state; the last reply fires `done`. Replies arrive
  // on whatever thread drives the network, hence the mutex.
  struct Gather {
    Mutex mu;
    std::vector<NodeInspection> replies;
    size_t remaining = 0;
  };
  auto gather = std::make_shared<Gather>();
  gather->remaining = targets.size();
  auto finish = std::move(done);
  for (NodeId target : targets) {
    client_->Inspect(target, [gather, finish](const NodeInspection& insp) {
      bool last = false;
      {
        MutexLock lock(gather->mu);
        gather->replies.push_back(insp);
        last = --gather->remaining == 0;
        if (last) {
          std::sort(gather->replies.begin(), gather->replies.end(),
                    [](const NodeInspection& a, const NodeInspection& b) {
                      return a.node < b.node;
                    });
        }
      }
      if (last && finish) finish(std::move(gather->replies));
    });
  }
}

Status Cluster::CheckInvariants() const {
  std::vector<Node*> alive(num_nodes_, nullptr);
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < nodes_.size(); ++i) alive[i] = nodes_[i].get();
  }
  for (size_t i = 0; i < alive.size(); ++i) {
    if (alive[i] == nullptr) continue;  // killed: no state to check
    Version vu = alive[i]->vu();
    Version vr = alive[i]->vr();
    if (!(vr < vu && vu <= MaxUpdateVersionFor(vr))) {
      return Status::Internal("node " + std::to_string(i) +
                              " violates vr < vu <= vr+2: vr=" +
                              std::to_string(vr) + " vu=" +
                              std::to_string(vu));
    }
    size_t max_versions = alive[i]->store().MaxVersionsObserved();
    if (max_versions > kMaxSimultaneousVersions) {
      return Status::Internal("node " + std::to_string(i) + " held " +
                              std::to_string(max_versions) +
                              " simultaneous versions of an item");
    }
  }
  // Property 2(b): nodes differing in one version number agree on the
  // other. (Sampled pairwise; exact under SimNet where nothing moves
  // between the reads.)
  for (size_t i = 0; i < alive.size(); ++i) {
    if (alive[i] == nullptr) continue;
    for (size_t j = i + 1; j < alive.size(); ++j) {
      if (alive[j] == nullptr) continue;
      Version vui = alive[i]->vu(), vuj = alive[j]->vu();
      Version vri = alive[i]->vr(), vrj = alive[j]->vr();
      if (vui != vuj && vri != vrj) {
        return Status::Internal(
            "nodes " + std::to_string(i) + "," + std::to_string(j) +
            " differ in both vu and vr (property 2b violated)");
      }
    }
  }
  return Status::Ok();
}

size_t Cluster::TotalPendingSubtxns() const {
  size_t n = 0;
  for (Node* node : LiveNodes()) n += node->PendingSubtxns();
  return n;
}

}  // namespace threev
