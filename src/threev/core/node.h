#ifndef THREEV_CORE_NODE_H_
#define THREEV_CORE_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/common/ids.h"
#include "threev/common/random.h"
#include "threev/common/status.h"
#include "threev/core/counters.h"
#include "threev/durability/wal.h"
#include "threev/lock/lock_manager.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/storage/versioned_store.h"
#include "threev/trace/trace.h"
#include "threev/txn/plan.h"
#include "threev/verify/history.h"

namespace threev {

// Which version read-only transactions are assigned.
enum class ReadPolicy : uint8_t {
  // The paper's rule: reads run against the stable read version vr.
  kReadVersion = 0,
  // "No Coordination" baseline: reads run against the current update
  // version, observing in-flight transactions (incorrect but fast).
  kCurrentVersion = 1,
};

enum class NodeMode : uint8_t {
  // All update transactions are well-behaved: no locks at all (Section 4).
  kPure3V = 0,
  // NC3V (Section 5): well-behaved transactions take commuting locks;
  // non-commuting transactions take NC locks, gate on vu == vr + 1 and run
  // two-phase commit.
  kNC3V = 1,
};

// How a descendant update subtransaction picks the version it writes.
enum class VersionAssignment : uint8_t {
  // The 3V rule: use the version carried from the root (with version
  // inference when it is newer than the local update version).
  kCarried = 0,
  // The "Manual Versioning" baseline's flaw: writes land in whatever
  // period the executing node is currently in, so a transaction that
  // straddles an unsynchronized period switch splits across versions.
  kLocalPeriod = 1,
};

struct NodeOptions {
  NodeId id = 0;
  size_t num_nodes = 1;
  NodeMode mode = NodeMode::kPure3V;
  ReadPolicy read_policy = ReadPolicy::kReadVersion;
  VersionAssignment version_assignment = VersionAssignment::kCarried;
  // How long a non-commuting subtransaction waits for locks before
  // aborting (deadlock resolution is timeout-based, as in most real
  // distributed lock managers).
  Micros nc_lock_timeout = 100'000;
  // Failure injection: probability that a well-behaved update ROOT
  // subtransaction aborts after executing and spawning children,
  // exercising the compensation machinery of Section 3.2 (the root rolls
  // back locally and sends compensating subtransactions down the tree;
  // see DESIGN.md for the scoping of this simplification).
  double inject_abort_probability = 0.0;
  uint64_t seed = 1;
  // Durability. Empty `wal_dir` disables logging entirely (the seed's
  // in-memory behavior). With a directory set, the node recovers from
  // checkpoint + WAL at construction and appends redo records as it runs.
  std::string wal_dir;
  FsyncPolicy fsync = FsyncPolicy::kNone;
  size_t wal_segment_bytes = 4u << 20;
  // Root-side 2PC retransmission: re-send kPrepare / kDecision to
  // participants that have not answered (their reply - or the original
  // message - died with a crashed node). 0 disables.
  Micros twopc_retry_interval = 50'000;
  // Observability (DESIGN.md section 12). Null disables tracing; when set,
  // the node records spans/instants into this shared flight recorder and
  // answers kAdminInspect probes with richer detail. Unowned.
  Tracer* tracer = nullptr;
  // Test-only protocol-bug injection (DESIGN.md section 13): silently skip
  // this node's first completion-counter increment. Breaks counter-matrix
  // conservation, so quiescence over the affected version can never be
  // detected - exists solely to prove the fuzz oracles catch exactly this
  // class of bug. Never set outside tests.
  bool test_skip_first_completion = false;
};

// One database node (site) running the 3V protocol.
//
// The node is a passive event-driven state machine: HandleMessage() is its
// only input (register it with a Network). It never blocks on remote
// activity - waits (NC lock conflicts, the NC3V version gate) are queued
// continuations, exactly the property Theorem 4.2 promises; on the
// well-behaved fast path no continuation is ever queued.
//
// Completion tracking is hierarchical, following the paper's Table 1: a
// subtransaction's completion counter C(v)[source][here] is incremented -
// and a completion notice sent to its parent's node - only once all of its
// children have reported completion. The root's completion resolves the
// client's transaction. (Its local database effects commit immediately
// after execution; only the *accounting* is hierarchical, so user
// transactions are still never delayed.)
//
// Thread safety: HandleMessage may be called from any thread; internal
// state is guarded by one node mutex, the store / counters / lock table by
// their own. The node mutex is never held across a Send or a lock-manager
// call, so callback re-entry cannot deadlock.
class Node {
 public:
  Node(const NodeOptions& options, Network* network, Metrics* metrics,
       HistoryRecorder* history = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Network entry point; register with Network::RegisterEndpoint.
  void HandleMessage(const Message& msg) EXCLUDES(mu_);

  // Crash simulation: a halted node ignores every subsequent message and
  // timer callback. Irreversible - "restarting" means constructing a fresh
  // Node over the same wal_dir (see Cluster::RestartNode).
  void Halt();
  bool halted() const { return halted_.load(std::memory_order_acquire); }

  // Snapshots the store + counters + version variables to a checkpoint file
  // paired with a WAL rotation, then truncates covered segments. Refuses
  // (kFailedPrecondition) while any subtransaction tree or non-commuting
  // transaction is open here: checkpoints are quiescent by construction, so
  // in-doubt 2PC state never needs to be serialized into them.
  Status WriteCheckpoint() EXCLUDES(mu_, wal_mu_);

  // --- introspection --------------------------------------------------
  NodeId id() const { return options_.id; }
  Version vu() const EXCLUDES(mu_);
  Version vr() const EXCLUDES(mu_);
  VersionedStore& store() { return store_; }
  const VersionedStore& store() const { return store_; }
  CounterTable& counters() { return counters_; }
  LockManager& locks() { return locks_; }
  // Subtransactions whose subtrees have not completed yet at this node.
  size_t PendingSubtxns() const EXCLUDES(mu_);
  // Null when durability is disabled.
  WriteAheadLog* wal() { return wal_.get(); }

  // Multi-line diagnostic snapshot: versions, pending subtransactions,
  // open non-commuting transactions, queued version-gate waiters.
  std::string DebugString() const EXCLUDES(mu_);

 private:
  static constexpr Version kUnassigned = 0xffffffff;

  // Execution context of one subtransaction, kept alive across async lock
  // acquisition by shared_ptr.
  struct ExecContext {
    TxnId txn = 0;
    SubtxnId subtxn = 0;
    SubtxnId parent_subtxn = 0;
    NodeId source = 0;  // node that invoked this subtransaction
    Version version = kUnassigned;
    bool is_root = false;
    bool read_only = false;
    bool compensation = false;
    TxnClass klass = TxnClass::kWellBehaved;
    SubtxnPlan plan;
    // Root only: who to answer when the tree resolves.
    NodeId client = 0;
    uint64_t client_seq = 0;
    Micros submit_time = 0;
    // Span of this subtransaction's execution (invalid when tracing off);
    // child requests carry ctx.trace so remote spans parent under it.
    TraceContext trace;
    // Async lock acquisition state (guarded by the node mutex).
    std::vector<std::pair<std::string, LockMode>> lock_needs;
    size_t next_lock = 0;
    bool lock_done = false;
    Micros lock_wait_start = 0;
  };
  using ExecPtr = std::shared_ptr<ExecContext>;

  // A subtransaction that executed here and is waiting for its children's
  // completion notices (hierarchical completion accounting).
  struct PendingSubtxn {
    TxnId txn = 0;
    SubtxnId subtxn = 0;
    SubtxnId parent_subtxn = 0;
    NodeId source = 0;
    Version version = 0;
    bool is_root = false;
    bool read_only = false;
    TxnClass klass = TxnClass::kWellBehaved;
    size_t outstanding = 0;  // children not yet reported
    std::map<std::string, Value> reads;  // own + subtree reads
    Status status;                       // first failure in the subtree
    std::set<NodeId> participants;       // nodes in the subtree
    // Root only.
    NodeId client = 0;
    uint64_t client_seq = 0;
    Micros submit_time = 0;
    // Span carried over from execution; completion notices / 2PC traffic /
    // the client result are stamped with it.
    TraceContext trace;
    // Root of a non-commuting transaction: the kTwopc span opened by
    // ResolveRoot and closed by FinishRoot.
    TraceContext twopc_trace;
    // Two-phase commit state (root of a non-commuting transaction).
    // Sets rather than counts: retransmitted prepares/decisions produce
    // duplicate votes/acks, which must deduplicate, not underflow.
    std::set<NodeId> vote_waiting;
    bool commit = true;
    std::set<NodeId> ack_waiting;
  };

  // Per-node state of a non-commuting transaction (participant side).
  struct NcTxnState {
    std::vector<UndoEntry> undo;  // rollback log, applied in reverse
    // Deferred completion-counter increments, applied at decision time
    // ("the completion counter is incremented atomically together with
    // commitment", Section 5 step 6).
    std::vector<std::pair<Version, NodeId>> completions;
    bool failed = false;
  };

  // --- message handlers ---
  void OnClientSubmit(const Message& msg);
  void OnSubtxnRequest(const Message& msg);
  void OnCompletionNotice(const Message& msg);
  void OnStartAdvancement(const Message& msg);
  void OnCounterRead(const Message& msg);
  void OnReadVersionAdvance(const Message& msg);
  void OnGarbageCollect(const Message& msg);
  void OnPrepare(const Message& msg);
  void OnVote(const Message& msg);
  void OnDecision(const Message& msg);
  void OnDecisionAck(const Message& msg);
  void OnLockCleanup(const Message& msg);
  // Protocol introspection probe: replies with a kAdminInspectReply whose
  // stat map / counter rows describe this node (see trace/introspect.h).
  void OnAdminInspect(const Message& msg);

  // --- execution ---
  // Assigns the root version / applies version inference, then routes to
  // the mode-appropriate execution path.
  void StartSubtxn(ExecPtr ctx);
  // After the NC3V version gate has passed: locks, then body.
  void ProceedNonCommuting(ExecPtr ctx);
  // Sequential async acquisition of ctx->lock_needs, then done(granted).
  void AcquireNextLock(ExecPtr ctx, std::function<void(bool)> done);
  // Re-arming lock-wait watchdog for non-commuting subtransactions.
  void ArmLockTimeout(ExecPtr ctx);
  // Fast-path body: Sections 4.1 / 4.2 (well-behaved and read-only).
  void ExecuteBody(ExecPtr ctx);
  // NC3V body: Section 5 steps 3-6.
  void ExecuteBodyNC(ExecPtr ctx);
  // Spawns one child subtransaction (R increment + request message).
  SubtxnId SpawnChild(const ExecPtr& ctx, const SubtxnPlan& child,
                      bool compensation);
  // Registers the pending record; if no children are outstanding,
  // completes immediately.
  void FinishExecution(const ExecPtr& ctx, Status status,
                       std::vector<SubtxnId> spawned,
                       std::map<std::string, Value> reads);

  // --- hierarchical completion ---
  // Called when rec's subtree has fully completed at this node.
  void CompleteSubtxn(PendingSubtxn rec);
  // Root resolution: reply to client / kick off 2PC / lock cleanup.
  void ResolveRoot(PendingSubtxn rec);
  void FinishRoot(PendingSubtxn& rec, Status status);

  // --- durability ---
  // Rebuilds state from checkpoint + WAL and re-enters in-doubt 2PC.
  // SAFETY: runs from the constructor, before the node is published to any
  // network thread, so it touches guarded members lock-free by construction
  // - the one deliberate analysis opt-out in this class.
  void RecoverFromLog() NO_THREAD_SAFETY_ANALYSIS;
  // Appends one redo record (no-op when durability is off).
  void LogRecord(const WalRecord& rec, bool force = false)
      EXCLUDES(wal_mu_);
  // Counter-delta record for IncR/IncC (the only non-idempotent records).
  void LogCounter(Version v, bool is_r, NodeId peer) EXCLUDES(wal_mu_);
  // Reserves a block of id sequence numbers ahead of use (kSeqReserve).
  void ReserveSeqsLocked() REQUIRES(mu_);
  // Root-side 2PC retransmission watchdog; re-arms until the root resolves.
  void ArmTwopcRetry(TxnId txn);
  // Recovery-side decision retransmission: a restarted root's re-broadcast
  // decisions are retried until every node acked (a fire-once broadcast
  // plus one lost message would wedge a prepared participant forever).
  void ArmRecoveryDecisionRetry() EXCLUDES(mu_);

  // --- helpers ---
  // `trace` attributes the switch instant to whoever caused it (the
  // coordinator's advancement span, or the inferring subtransaction).
  void AdvanceUpdateVersionLocked(Version v, const TraceContext& trace)
      REQUIRES(mu_);
  void WakeVersionGateWaiters() EXCLUDES(mu_);
  bool InjectAbort() EXCLUDES(mu_);
  SubtxnId NewSubtxnId() EXCLUDES(mu_);
  static std::vector<std::pair<std::string, LockMode>> ComputeLockNeeds(
      const SubtxnPlan& plan, bool non_commuting);

  NodeOptions options_;
  Network* network_;          // unowned
  Metrics* metrics_;          // unowned
  HistoryRecorder* history_;  // unowned, may be null
  Tracer* tracer_;            // unowned, may be null (tracing disabled)

  VersionedStore store_;
  CounterTable counters_;
  LockManager locks_;

  // Guards WAL appends (lock order: mu_ may be held when taking wal_mu_,
  // never the reverse). The wal_ pointer itself is set once during
  // construction and never reassigned, so only the pointed-to log - whose
  // appends wal_mu_ serializes - needs a capability.
  Mutex wal_mu_;
  std::unique_ptr<WriteAheadLog> wal_ PT_GUARDED_BY(wal_mu_);
  std::atomic<bool> halted_{false};
  // Arms NodeOptions::test_skip_first_completion exactly once.
  std::atomic<bool> test_completion_skipped_{false};

  mutable Mutex mu_;
  Version vu_ GUARDED_BY(mu_);
  Version vr_ GUARDED_BY(mu_);
  // When each version stopped being the update version (for staleness
  // accounting). Version 0 is frozen at time 0 by construction.
  std::map<Version, Micros> frozen_time_ GUARDED_BY(mu_);
  uint64_t next_txn_seq_ GUARDED_BY(mu_) = 1;
  uint64_t next_subtxn_seq_ GUARDED_BY(mu_) = 1;
  // Ids below this are WAL-reserved.
  uint64_t seq_reserved_until_ GUARDED_BY(mu_) = 0;
  Rng rng_ GUARDED_BY(mu_);
  std::map<SubtxnId, PendingSubtxn> pending_ GUARDED_BY(mu_);
  // Routes kVote / kDecisionAck.
  std::map<TxnId, SubtxnId> nc_roots_ GUARDED_BY(mu_);
  // Recovery re-broadcast decisions still awaiting per-node acks. Keyed by
  // txn; value = (commit flag, nodes that have not acked yet). Liveness
  // only - the decision itself is already durably logged.
  std::map<TxnId, std::pair<bool, std::set<NodeId>>> recovered_decisions_
      GUARDED_BY(mu_);
  std::unordered_map<TxnId, NcTxnState> nc_txns_ GUARDED_BY(mu_);
  // NC3V version gate: continuations waiting for vr == version - 1.
  std::vector<std::pair<Version, std::function<void()>>> gate_waiters_
      GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_CORE_NODE_H_
