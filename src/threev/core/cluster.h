#ifndef THREEV_CORE_CLUSTER_H_
#define THREEV_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "threev/common/mutex.h"
#include "threev/common/status.h"
#include "threev/common/thread_annotations.h"
#include "threev/core/coordinator.h"
#include "threev/core/node.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/trace/introspect.h"
#include "threev/txn/plan.h"
#include "threev/verify/history.h"

namespace threev {

// Client endpoint: submits transactions to any node and routes results back
// to per-request callbacks. Thread-safe; usable from multiple submitter
// threads under ThreadNet.
class Client {
 public:
  using ResultCallback = std::function<void(const TxnResult&)>;
  using InspectCallback = std::function<void(const NodeInspection&)>;

  Client(NodeId id, Network* network, Tracer* tracer = nullptr)
      : id_(id), network_(network), tracer_(tracer) {}

  NodeId id() const { return id_; }

  // Network entry point; register with Network::RegisterEndpoint.
  void HandleMessage(const Message& msg) EXCLUDES(mu_);

  // Sends `spec` to `origin` for execution; `cb` fires when the system
  // reports the transaction's outcome. Returns the request id. `origin`
  // must equal spec.root.node (the root subtransaction executes at the
  // node it is submitted to); the node rejects mismatches. With tracing
  // enabled, the request runs under a fresh kClientRequest root span.
  uint64_t Submit(NodeId origin, const TxnSpec& spec, ResultCallback cb)
      EXCLUDES(mu_);

  // Routes to spec.root.node.
  uint64_t Submit(const TxnSpec& spec, ResultCallback cb) {
    return Submit(spec.root.node, spec, std::move(cb));
  }

  // Sends a kAdminInspect probe to any endpoint (node or coordinator);
  // `cb` fires with the decoded reply. Returns the request id.
  // `counters_version` selects which version's counter row/column the
  // reply carries (0 = the replier's current update version), letting the
  // fuzz invariant probe walk every live version without node internals.
  uint64_t Inspect(NodeId target, Version counters_version, InspectCallback cb)
      EXCLUDES(mu_);
  uint64_t Inspect(NodeId target, InspectCallback cb) {
    return Inspect(target, /*counters_version=*/0, std::move(cb));
  }

  // Requests whose results have not arrived yet.
  size_t InFlight() const EXCLUDES(mu_);

 private:
  struct PendingResult {
    ResultCallback cb;
    Micros submit_time = 0;
    TraceContext trace;
  };

  NodeId id_;
  Network* network_;
  Tracer* tracer_;  // unowned, may be null
  mutable Mutex mu_;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, PendingResult> inflight_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, InspectCallback> inspect_inflight_
      GUARDED_BY(mu_);
};

struct ClusterOptions {
  size_t num_nodes = 3;
  NodeMode mode = NodeMode::kPure3V;
  ReadPolicy read_policy = ReadPolicy::kReadVersion;
  Micros nc_lock_timeout = 100'000;
  double inject_abort_probability = 0.0;
  Micros coordinator_poll_interval = 2000;
  uint64_t seed = 1;
  // Durability: node i logs under "<wal_dir>/node-<i>". Empty disables
  // logging (and with it KillNode/RestartNode recovery).
  std::string wal_dir;
  FsyncPolicy fsync = FsyncPolicy::kNone;
  size_t wal_segment_bytes = 4u << 20;
  // Crash-tolerance retransmission knobs (see NodeOptions /
  // CoordinatorOptions).
  Micros twopc_retry_interval = 50'000;
  Micros coordinator_retry_interval = 10'000;
  // Observability: shared flight recorder wired into every node, the
  // coordinator, the client and (via the owner) the transport. Unowned,
  // may be null.
  Tracer* tracer = nullptr;
  // Test-only (fuzz-oracle validation): the node that silently skips its
  // first completion-counter increment (NodeOptions::
  // test_skip_first_completion). -1 disables. Never set outside tests.
  int test_skip_completion_node = -1;
};

// Owns and wires a full 3V deployment on one Network: `num_nodes` database
// nodes (endpoints 0..n-1), the advancement coordinator (endpoint n) and a
// default client (endpoint n+1).
class Cluster {
 public:
  Cluster(const ClusterOptions& options, Network* network, Metrics* metrics,
          HistoryRecorder* history = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  size_t num_nodes() const { return num_nodes_; }
  // The returned reference stays valid across KillNode (dead nodes are
  // parked, not destroyed), but callers racing a kill should re-check
  // node_alive.
  Node& node(size_t i) EXCLUDES(mu_);
  const Node& node(size_t i) const EXCLUDES(mu_);
  // False while node i is killed (its slot holds no live Node).
  bool node_alive(size_t i) const EXCLUDES(mu_);
  AdvanceCoordinator& coordinator() { return *coordinator_; }
  Client& client() { return *client_; }

  // --- crash/restart orchestration -----------------------------------
  // Halts node i and takes it off the network: queued timers go dead,
  // in-flight messages to it are dropped. The dead Node object is parked
  // in a graveyard (not destroyed) so callbacks it captured stay valid.
  // No-op if already dead.
  void KillNode(size_t i) EXCLUDES(mu_);
  // Constructs a fresh Node over the same wal_dir - running crash
  // recovery in its constructor - and re-registers the endpoint (a new
  // incarnation; pre-crash in-flight messages stay dead). Requires
  // wal_dir to have been set and node i to be dead.
  void RestartNode(size_t i) EXCLUDES(mu_);

  // Checkpoints every live node; returns the first error (nodes that are
  // not quiescent refuse, see Node::WriteCheckpoint).
  Status CheckpointAll() EXCLUDES(mu_);

  NodeId coordinator_id() const { return static_cast<NodeId>(num_nodes_); }
  NodeId client_id() const { return static_cast<NodeId>(num_nodes_) + 1; }

  // Convenience: submit via the default client.
  uint64_t Submit(NodeId origin, const TxnSpec& spec,
                  Client::ResultCallback cb);

  // Probes every live node plus the coordinator with kAdminInspect and
  // fires `done` once every reply arrived, in endpoint order. Asynchronous
  // (the reply needs the event loop to turn); under SimNet call Run() after.
  // A node killed between the liveness snapshot and its reply leaves the
  // aggregation waiting forever - probe healthy clusters.
  void InspectAll(std::function<void(std::vector<NodeInspection>)> done)
      EXCLUDES(mu_);

  // Verifies the paper's structural invariants (Section 4.4):
  //   * vr < vu <= vr + 2 on every node;
  //   * at most 3 simultaneous versions of any item were ever observed;
  //   * property 2(b): two nodes differing in vu agree on vr & vice versa.
  Status CheckInvariants() const EXCLUDES(mu_);

  // Subtransactions whose subtrees are still incomplete, across all nodes.
  size_t TotalPendingSubtxns() const EXCLUDES(mu_);

 private:
  NodeOptions MakeNodeOptions(size_t i) const;
  void InstallNode(size_t i, std::unique_ptr<Node> node) REQUIRES(mu_);
  // Pointers to the currently-live nodes (parked incarnations excluded).
  std::vector<Node*> LiveNodes() const EXCLUDES(mu_);

  ClusterOptions options_;
  Network* network_;          // unowned
  Metrics* metrics_;          // unowned
  HistoryRecorder* history_;  // unowned, may be null
  const size_t num_nodes_;    // == options_.num_nodes; fixed at construction
  // Guards the node slots: KillNode / RestartNode run on test-orchestration
  // threads concurrently with accessors reading the slots.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Node>> nodes_ GUARDED_BY(mu_);
  // Killed incarnations, kept alive so timer callbacks capturing them
  // remain safe to invoke (they check halted() and return).
  std::vector<std::unique_ptr<Node>> graveyard_ GUARDED_BY(mu_);
  std::unique_ptr<AdvanceCoordinator> coordinator_;
  std::unique_ptr<Client> client_;
};

}  // namespace threev

#endif  // THREEV_CORE_CLUSTER_H_
