#ifndef THREEV_CORE_CLUSTER_H_
#define THREEV_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "threev/common/status.h"
#include "threev/core/coordinator.h"
#include "threev/core/node.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/txn/plan.h"
#include "threev/verify/history.h"

namespace threev {

// Client endpoint: submits transactions to any node and routes results back
// to per-request callbacks. Thread-safe; usable from multiple submitter
// threads under ThreadNet.
class Client {
 public:
  using ResultCallback = std::function<void(const TxnResult&)>;

  Client(NodeId id, Network* network) : id_(id), network_(network) {}

  NodeId id() const { return id_; }

  // Network entry point; register with Network::RegisterEndpoint.
  void HandleMessage(const Message& msg);

  // Sends `spec` to `origin` for execution; `cb` fires when the system
  // reports the transaction's outcome. Returns the request id. `origin`
  // must equal spec.root.node (the root subtransaction executes at the
  // node it is submitted to); the node rejects mismatches.
  uint64_t Submit(NodeId origin, const TxnSpec& spec, ResultCallback cb);

  // Routes to spec.root.node.
  uint64_t Submit(const TxnSpec& spec, ResultCallback cb) {
    return Submit(spec.root.node, spec, std::move(cb));
  }

  // Requests whose results have not arrived yet.
  size_t InFlight() const;

 private:
  NodeId id_;
  Network* network_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, std::pair<ResultCallback, Micros>> inflight_;
};

struct ClusterOptions {
  size_t num_nodes = 3;
  NodeMode mode = NodeMode::kPure3V;
  ReadPolicy read_policy = ReadPolicy::kReadVersion;
  Micros nc_lock_timeout = 100'000;
  double inject_abort_probability = 0.0;
  Micros coordinator_poll_interval = 2000;
  uint64_t seed = 1;
};

// Owns and wires a full 3V deployment on one Network: `num_nodes` database
// nodes (endpoints 0..n-1), the advancement coordinator (endpoint n) and a
// default client (endpoint n+1).
class Cluster {
 public:
  Cluster(const ClusterOptions& options, Network* network, Metrics* metrics,
          HistoryRecorder* history = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  size_t num_nodes() const { return nodes_.size(); }
  Node& node(size_t i) { return *nodes_[i]; }
  const Node& node(size_t i) const { return *nodes_[i]; }
  AdvanceCoordinator& coordinator() { return *coordinator_; }
  Client& client() { return *client_; }

  NodeId coordinator_id() const {
    return static_cast<NodeId>(nodes_.size());
  }
  NodeId client_id() const { return static_cast<NodeId>(nodes_.size()) + 1; }

  // Convenience: submit via the default client.
  uint64_t Submit(NodeId origin, const TxnSpec& spec,
                  Client::ResultCallback cb);

  // Verifies the paper's structural invariants (Section 4.4):
  //   * vr < vu <= vr + 2 on every node;
  //   * at most 3 simultaneous versions of any item were ever observed;
  //   * property 2(b): two nodes differing in vu agree on vr & vice versa.
  Status CheckInvariants() const;

  // Subtransactions whose subtrees are still incomplete, across all nodes.
  size_t TotalPendingSubtxns() const;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<AdvanceCoordinator> coordinator_;
  std::unique_ptr<Client> client_;
};

}  // namespace threev

#endif  // THREEV_CORE_CLUSTER_H_
