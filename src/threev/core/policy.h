#ifndef THREEV_CORE_POLICY_H_
#define THREEV_CORE_POLICY_H_

#include <cstdint>
#include <functional>

#include "threev/common/clock.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/core/coordinator.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"

namespace threev {

// Version advancement triggers from the paper's "Desired Solution"
// (Section 1): "we may want to advance versions every hour, or once a
// certain number of update transactions have accumulated, or when the
// difference in value of data items in different versions exceeds some
// threshold, or after a particular update transaction commits."
//
//  * every hour            -> AdvanceCoordinator::EnableAutoAdvance.
//  * after N transactions  -> txn_threshold below.
//  * value-drift threshold -> custom `trigger` predicate (e.g. compare the
//                             read- and update-version copies of a summary).
//  * after a specific txn  -> call RequestOnce() from that txn's callback.
struct AdvancePolicyOptions {
  // Advance once this many transactions committed since the last
  // advancement (0 = disabled).
  int64_t txn_threshold = 0;
  // Custom predicate, evaluated every check_interval (null = disabled).
  std::function<bool()> trigger;
  // How often the driver evaluates its conditions.
  Micros check_interval = 5'000;
  // Rate limit: never start advancements closer together than this.
  Micros min_period = 0;
};

// Watches the metrics / predicate and asks the coordinator to advance when
// a condition fires. Runs on the Network's timer; Start() arms it, Stop()
// disarms (the in-flight check completes harmlessly).
class AdvancePolicyDriver {
 public:
  AdvancePolicyDriver(const AdvancePolicyOptions& options,
                      AdvanceCoordinator* coordinator, const Metrics* metrics,
                      Network* network);

  AdvancePolicyDriver(const AdvancePolicyDriver&) = delete;
  AdvancePolicyDriver& operator=(const AdvancePolicyDriver&) = delete;

  void Start() EXCLUDES(mu_);
  void Stop() EXCLUDES(mu_);

  // "After a particular update transaction commits": requests one
  // advancement now (subject to min_period and the one-at-a-time rule).
  // Returns true if an advancement was started.
  bool RequestOnce() EXCLUDES(mu_);

  // Advancements this driver initiated.
  uint64_t triggered_count() const EXCLUDES(mu_);

 private:
  void ScheduleCheck() EXCLUDES(mu_);
  void Check() EXCLUDES(mu_);
  bool StartIfAllowed() EXCLUDES(mu_);

  AdvancePolicyOptions options_;
  AdvanceCoordinator* coordinator_;
  const Metrics* metrics_;
  Network* network_;

  mutable Mutex mu_;
  bool running_ GUARDED_BY(mu_) = false;
  int64_t committed_baseline_ GUARDED_BY(mu_) = 0;
  Micros last_advance_time_ GUARDED_BY(mu_) = 0;
  uint64_t triggered_ GUARDED_BY(mu_) = 0;
};

}  // namespace threev

#endif  // THREEV_CORE_POLICY_H_
