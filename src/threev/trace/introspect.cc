#include "threev/trace/introspect.h"

#include <sstream>

namespace threev {

int64_t NodeInspection::Stat(const std::string& key, int64_t fallback) const {
  for (const auto& [k, v] : stats) {
    if (k == key) return v.num;
  }
  return fallback;
}

std::string NodeInspection::StatStr(const std::string& key) const {
  for (const auto& [k, v] : stats) {
    if (k == key) return v.str;
  }
  return "";
}

bool NodeInspection::HasStat(const std::string& key) const {
  for (const auto& [k, v] : stats) {
    if (k == key) return true;
  }
  return false;
}

std::string NodeInspection::ToString() const {
  std::ostringstream os;
  os << "node=" << node;
  for (const auto& [k, v] : stats) {
    os << " " << k << "=";
    if (!v.str.empty()) {
      os << v.str;
    } else {
      os << v.num;
    }
  }
  if (!counters_r.empty()) {
    os << " R={";
    for (size_t i = 0; i < counters_r.size(); ++i) {
      if (i) os << ",";
      os << counters_r[i].first << ":" << counters_r[i].second;
    }
    os << "}";
  }
  if (!counters_c.empty()) {
    os << " C={";
    for (size_t i = 0; i < counters_c.size(); ++i) {
      if (i) os << ",";
      os << counters_c[i].first << ":" << counters_c[i].second;
    }
    os << "}";
  }
  return os.str();
}

void InspectPutNum(Message* reply, const std::string& key, int64_t value) {
  Value v;
  v.num = value;
  reply->reads.emplace_back(key, std::move(v));
}

void InspectPutStr(Message* reply, const std::string& key,
                   const std::string& value) {
  Value v;
  v.str = value;
  reply->reads.emplace_back(key, std::move(v));
}

NodeInspection InspectionFromReply(const Message& reply) {
  NodeInspection in;
  in.node = reply.from;
  in.stats = reply.reads;
  in.counters_r = reply.counters_r;
  in.counters_c = reply.counters_c;
  return in;
}

Message MakeInspectReply(const Message& req, NodeId self) {
  Message reply;
  reply.type = MsgType::kAdminInspectReply;
  reply.from = self;
  reply.seq = req.seq;
  reply.version = req.version;
  reply.trace = req.trace;
  return reply;
}

}  // namespace threev
