#include "threev/trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "threev/common/logging.h"
#include "threev/net/message.h"

namespace threev {

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kClientRequest:
      return "client_request";
    case TraceOp::kTxn:
      return "txn";
    case TraceOp::kSubtxn:
      return "subtxn";
    case TraceOp::kTwopc:
      return "twopc";
    case TraceOp::kAdvancement:
      return "advancement";
    case TraceOp::kAdvancePhase:
      return "advance_phase";
    case TraceOp::kQuiescenceWave:
      return "quiescence_wave";
    case TraceOp::kVersionSwitch:
      return "version_switch";
    case TraceOp::kReadVersionSwitch:
      return "read_version_switch";
    case TraceOp::kGarbageCollect:
      return "garbage_collect";
    case TraceOp::kMsgSend:
      return "msg_send";
    case TraceOp::kMsgRecv:
      return "msg_recv";
    case TraceOp::kWalFsync:
      return "wal_fsync";
    case TraceOp::kCheckpoint:
      return "checkpoint";
    case TraceOp::kLockWait:
      return "lock_wait";
    case TraceOp::kCompensation:
      return "compensation";
    case TraceOp::kTask:
      return "task";
  }
  return "?";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// The four advancement phases get their protocol names in the dump so a
// trace reads like Section 4.3 (arg = AdvanceCoordinator phase index).
const char* AdvancePhaseName(int64_t phase) {
  switch (phase) {
    case 1:
      return "phase1_switch_update";
    case 2:
      return "phase2_phase_out";
    case 3:
      return "phase3_switch_read";
    case 4:
      return "phase4_drain_gc";
    default:
      return "advance_phase";
  }
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 64)) - 1),
      slots_(new Slot[mask_ + 1]) {}

Tracer::~Tracer() { delete[] slots_; }

void Tracer::Record(Micros ts, NodeId node, TraceOp op, TraceKind kind,
                    const TraceContext& ctx, uint8_t msg_type, int64_t arg) {
  if (!enabled()) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock publish (the FastSlot protocol, DESIGN.md section 11): odd marks
  // the overwrite in progress, the release fence orders it before the
  // payload, the final release store publishes. Snapshot() skips any slot
  // whose seq is odd or moved - a lapped writer tears only the record being
  // replaced, which was already the oldest in the ring.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ts.store(ts, std::memory_order_relaxed);
  slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  slot.span_id.store(ctx.span_id, std::memory_order_relaxed);
  slot.parent_span_id.store(ctx.parent_span_id, std::memory_order_relaxed);
  slot.meta.store(static_cast<uint64_t>(node) |
                      static_cast<uint64_t>(static_cast<uint8_t>(op)) << 32 |
                      static_cast<uint64_t>(static_cast<uint8_t>(kind)) << 40 |
                      static_cast<uint64_t>(msg_type) << 48,
                  std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

TraceContext Tracer::BeginSpan(Micros ts, NodeId node, TraceOp op,
                               const TraceContext& parent, int64_t arg) {
  if (!enabled()) return TraceContext{};
  TraceContext ctx = parent.valid() ? parent.Child(NewId()) : StartTrace();
  Record(ts, node, op, TraceKind::kBegin, ctx, 0, arg);
  return ctx;
}

void Tracer::EndSpan(Micros ts, NodeId node, TraceOp op,
                     const TraceContext& ctx, int64_t arg) {
  if (!ctx.valid()) return;
  Record(ts, node, op, TraceKind::kEnd, ctx, 0, arg);
}

void Tracer::Instant(Micros ts, NodeId node, TraceOp op,
                     const TraceContext& ctx, uint8_t msg_type, int64_t arg) {
  Record(ts, node, op, TraceKind::kInstant, ctx, msg_type, arg);
}

void Tracer::SetTrackName(NodeId node, const std::string& name) {
  MutexLock lock(mu_);
  track_names_[node] = name;
}

std::vector<TraceRecord> Tracer::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const size_t live = std::min<uint64_t>(head, mask_ + 1);
  std::vector<TraceRecord> out;
  out.reserve(live);
  for (size_t i = 0; i < mask_ + 1; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1)) continue;  // never written, or mid-overwrite
    TraceRecord rec;
    rec.ticket = s1 / 2 - 1;
    rec.ts = slot.ts.load(std::memory_order_relaxed);
    rec.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    rec.span_id = slot.span_id.load(std::memory_order_relaxed);
    rec.parent_span_id = slot.parent_span_id.load(std::memory_order_relaxed);
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    rec.node = static_cast<NodeId>(meta & 0xffffffffu);
    rec.op = static_cast<TraceOp>((meta >> 32) & 0xffu);
    rec.kind = static_cast<TraceKind>((meta >> 40) & 0xffu);
    rec.msg_type = static_cast<uint8_t>((meta >> 48) & 0xffu);
    rec.arg = slot.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    out.push_back(rec);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > mask_ + 1 ? head - (mask_ + 1) : 0;
}

namespace {

std::string Hex(uint64_t v) {
  char buf[19];
  int n = std::snprintf(buf, sizeof(buf), "0x%llx",
                        static_cast<unsigned long long>(v));
  return std::string(buf, n);
}

// One pre-sorted dump event; serialization is a straight walk afterwards.
struct DumpEvent {
  Micros ts;
  uint64_t order;  // ticket, for a stable sort under equal timestamps
  char ph;         // 'b' / 'e' / 'i'
  NodeId tid;
  std::string name;
  uint64_t id;  // span id for b/e, 0 for instants
  uint64_t trace_id;
  uint64_t parent;
  uint8_t msg_type;
  int64_t arg;
  bool has_arg;
};

void AppendEventJson(std::ostringstream& os, const DumpEvent& e) {
  os << "{\"ph\":\"" << e.ph << "\",\"cat\":\"threev\",\"name\":\"" << e.name
     << "\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":" << e.ts;
  if (e.ph == 'b' || e.ph == 'e') os << ",\"id\":\"" << Hex(e.id) << "\"";
  if (e.ph == 'i') os << ",\"s\":\"t\"";
  os << ",\"args\":{";
  bool first = true;
  auto field = [&](const char* k, const std::string& v) {
    if (!first) os << ",";
    first = false;
    os << "\"" << k << "\":" << v;
  };
  if (e.trace_id) field("trace", "\"" + Hex(e.trace_id) + "\"");
  if (e.parent) field("parent", "\"" + Hex(e.parent) + "\"");
  if (e.msg_type) {
    field("msg", "\"" + std::string(MsgTypeName(
                            static_cast<MsgType>(e.msg_type))) + "\"");
  }
  if (e.has_arg) field("arg", std::to_string(e.arg));
  os << "}}";
}

}  // namespace

std::string Tracer::ChromeJson() const {
  std::vector<TraceRecord> records = Snapshot();
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.ticket < b.ticket;
            });

  Micros min_ts = 0, max_ts = 0;
  if (!records.empty()) {
    min_ts = records.front().ts;
    max_ts = records.back().ts;
  }

  // Span bookkeeping so the emitted file always balances: a begin whose end
  // fell out of the ring (or has not happened yet) gets a synthetic end at
  // the dump horizon; an end whose begin was overwritten gets a synthetic
  // begin at the dump's start. check_trace_json.py enforces this shape.
  struct SpanEdges {
    bool has_begin = false;
    bool has_end = false;
  };
  std::unordered_map<uint64_t, SpanEdges> spans;
  for (const TraceRecord& r : records) {
    if (r.kind == TraceKind::kBegin) spans[r.span_id].has_begin = true;
    if (r.kind == TraceKind::kEnd) spans[r.span_id].has_end = true;
  }

  std::vector<DumpEvent> events;
  events.reserve(records.size() + 16);
  uint64_t synth_order = 0;  // orders synthetic edges around real ones
  for (const TraceRecord& r : records) {
    DumpEvent e;
    e.ts = r.ts;
    e.order = (r.ticket + 1) * 2;
    e.tid = r.node;
    e.id = r.span_id;
    e.trace_id = r.trace_id;
    e.parent = r.parent_span_id;
    e.msg_type = r.msg_type;
    e.arg = r.arg;
    e.has_arg = r.arg != 0;
    e.name = r.op == TraceOp::kAdvancePhase ? AdvancePhaseName(r.arg)
                                            : TraceOpName(r.op);
    switch (r.kind) {
      case TraceKind::kInstant:
        e.ph = 'i';
        e.id = 0;
        break;
      case TraceKind::kBegin:
        e.ph = 'b';
        break;
      case TraceKind::kEnd:
        e.ph = 'e';
        if (!spans[r.span_id].has_begin) {
          DumpEvent synth = e;
          synth.ph = 'b';
          synth.ts = min_ts;
          synth.order = 0;  // before every real event (real orders are >= 2)
          events.push_back(synth);
        }
        break;
    }
    events.push_back(e);
    if (r.kind == TraceKind::kBegin && !spans[r.span_id].has_end) {
      DumpEvent synth = e;
      synth.ph = 'e';
      synth.ts = max_ts;
      synth.order = (records.empty() ? 0 : (records.back().ticket + 2) * 2) +
                    ++synth_order;  // after every real event
      events.push_back(synth);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const DumpEvent& a, const DumpEvent& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
            });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  {
    MutexLock lock(mu_);
    for (const auto& [tid, name] : track_names_) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
         << "\"}}";
    }
  }
  for (const DumpEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    AppendEventJson(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << dropped() << "}}";
  return os.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    THREEV_LOG(kError) << "trace: cannot open " << path;
    return false;
  }
  out << ChromeJson();
  out.flush();
  if (!out) {
    THREEV_LOG(kError) << "trace: write failed for " << path;
    return false;
  }
  return true;
}

}  // namespace threev
