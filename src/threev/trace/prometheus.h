#ifndef THREEV_TRACE_PROMETHEUS_H_
#define THREEV_TRACE_PROMETHEUS_H_

#include <string>
#include <vector>

#include "threev/metrics/histogram.h"
#include "threev/metrics/metrics.h"

namespace threev {

// Renders one Metrics snapshot in the Prometheus text exposition format
// (version 0.0.4): every atomic counter as `threev_<name>_total`, every
// latency histogram as a summary (p50/p90/p99 quantiles + _sum + _count).
// tools/threev_lint.py enforces that every std::atomic field of Metrics is
// mentioned here AND in Metrics::Report(), so a new counter cannot ship
// half-observable. `labels` is spliced verbatim into each sample's label
// set (e.g. "node=\"3\""); pass "" for none.
std::string PrometheusText(const Metrics& m, const std::string& labels = "");

// Cross-node aggregation: merges every instance into a scratch Metrics
// (counters summed, histograms bucket-merged) and renders that. Callers
// must quiesce writers first, same contract as Metrics::MergeFrom().
std::string PrometheusTextAggregate(const std::vector<const Metrics*>& nodes);

// One summary-typed metric from a histogram; exposed for reuse by tests.
void AppendHistogramSummary(std::string* out, const std::string& name,
                            const Histogram& h, const std::string& labels);

}  // namespace threev

#endif  // THREEV_TRACE_PROMETHEUS_H_
