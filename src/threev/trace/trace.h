#ifndef THREEV_TRACE_TRACE_H_
#define THREEV_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/trace/trace_context.h"

namespace threev {

// What a trace record describes. One enum for the whole system so a record
// is a fixed-width word; the dump layer owns the presentation names.
enum class TraceOp : uint8_t {
  kClientRequest = 0,  // span: client Submit -> result callback
  kTxn,                // span: root transaction at its home node
  kSubtxn,             // span: one subtransaction execution at a node
  kTwopc,              // span: NC3V prepare -> decision fully acked
  kAdvancement,        // span: coordinator, full 4-phase advancement
  kAdvancePhase,       // span: coordinator, one phase (arg = phase index)
  kQuiescenceWave,     // instant: one R/C wave evaluated (arg = round)
  kVersionSwitch,      // instant: node switched vu (arg = new vu)
  kReadVersionSwitch,  // instant: node switched vr (arg = new vr)
  kGarbageCollect,     // instant: node discarded a version (arg = version)
  kMsgSend,            // instant: transport accepted a message (msg_type set)
  kMsgRecv,            // instant: transport delivered a message
  kWalFsync,           // instant: WAL fsync completed (arg = bytes synced)
  kCheckpoint,         // instant: checkpoint written (arg = bytes)
  kLockWait,           // instant: lock acquisition blocked (arg = micros)
  kCompensation,       // instant: compensating subtransaction issued
  kTask,               // span: generic tool work (bench rows, CLI phases)
};

const char* TraceOpName(TraceOp op);

// Whether a record opens a span, closes one, or stands alone.
enum class TraceKind : uint8_t { kBegin = 0, kEnd, kInstant };

// Decoded, validated snapshot of one ring slot (see Tracer::Snapshot).
struct TraceRecord {
  uint64_t ticket = 0;  // ring sequence number; ties in ts sort by this
  Micros ts = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  NodeId node = 0;  // track: node id, or the coordinator/client endpoint id
  TraceOp op = TraceOp::kTask;
  TraceKind kind = TraceKind::kInstant;
  uint8_t msg_type = 0;  // MsgType for kMsgSend/kMsgRecv, else 0
  int64_t arg = 0;
};

// Per-process lock-free flight recorder: a fixed-size ring of fixed-width
// records, written with relaxed atomics and a per-slot seqlock, so tracing
// can stay on in production without a mutex anywhere near the hot path.
//
// Concurrency model (same family as VersionedStore::FastSlot, see DESIGN.md
// section 11): every cell of a slot is a std::atomic, so concurrent access
// is UB-free and tsan-clean by construction. A writer claims a ticket with
// one fetch_add, marks its slot odd, stores the payload, then publishes the
// even sequence with release order. Snapshot() re-validates each slot's
// sequence around the payload loads and simply skips slots that were mid-
// overwrite - a wrapped ring loses the OLDEST records, never tears a
// surviving one. There is no capability to GUARDED_BY on the hot path; the
// track-name table is cold and takes mu_.
//
// Cost when disabled: Record() is one relaxed load and a branch; the
// intended call-site idiom `if (tracer && tracer->enabled())` keeps even
// argument evaluation off the hot path. Compile-time removal: build with
// -DTHREEV_TRACE_DISABLED to turn enabled() into a constant false that dead-
// codes every instrumentation site.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;  // 64 B/slot -> 4 MiB

  // `capacity` is rounded up to a power of two (ring indexing by mask).
  explicit Tracer(size_t capacity = kDefaultCapacity);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Run-time gate, checked (relaxed) by every instrumentation site.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
#ifdef THREEV_TRACE_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  // Fresh non-zero id for a trace or span. Deterministic (a process-local
  // counter, no ambient randomness) so SimNet runs trace identically.
  uint64_t NewId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Starts a new root trace: trace_id == span_id, no parent.
  TraceContext StartTrace() {
    uint64_t id = NewId();
    return TraceContext{id, id, 0};
  }

  // Appends one record. `ts` comes from the caller's Network::Now() (virtual
  // under SimNet) so one dump never mixes clock domains on a track.
  void Record(Micros ts, NodeId node, TraceOp op, TraceKind kind,
              const TraceContext& ctx, uint8_t msg_type = 0, int64_t arg = 0);

  // Convenience span protocol: BeginSpan derives a child context, records
  // the opening edge, and returns the context the caller must hold and pass
  // to EndSpan (and stamp onto outgoing messages in between).
  TraceContext BeginSpan(Micros ts, NodeId node, TraceOp op,
                         const TraceContext& parent, int64_t arg = 0);
  void EndSpan(Micros ts, NodeId node, TraceOp op, const TraceContext& ctx,
               int64_t arg = 0);
  void Instant(Micros ts, NodeId node, TraceOp op, const TraceContext& ctx,
               uint8_t msg_type = 0, int64_t arg = 0);

  // Human name for a track (Chrome "thread_name" metadata); cold path.
  void SetTrackName(NodeId node, const std::string& name);

  // Validated copy of every live slot, unsorted. Safe to call while writers
  // run; slots being overwritten at that instant are skipped.
  std::vector<TraceRecord> Snapshot() const;

  // Records overwritten by ring wrap (lower bound; 0 until the ring laps).
  uint64_t dropped() const;

  // Chrome trace_event / Perfetto JSON ("traceEvents" array form). Spans
  // whose opposite edge fell out of the ring (or has not happened yet) are
  // closed/opened synthetically at the dump's time bounds so the file is
  // always well-formed (see tools/check_trace_json.py). Events are sorted
  // by timestamp, so per-track timestamps are monotone in file order.
  std::string ChromeJson() const;

  // Writes ChromeJson() to `path`; false (with a log line) on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  // One cache line: seq + 7 payload words, all atomic (seqlock protocol).
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 empty; odd in-progress; even = done
    std::atomic<int64_t> ts{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<uint64_t> meta{0};  // node | op<<32 | kind<<40 | msg<<48
    std::atomic<int64_t> arg{0};
  };

  const size_t mask_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> head_{0};  // next ticket to claim
  Slot* slots_;                    // fixed array, owned

  mutable Mutex mu_;
  std::unordered_map<NodeId, std::string> track_names_ GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_TRACE_TRACE_H_
