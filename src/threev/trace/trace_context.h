#ifndef THREEV_TRACE_TRACE_CONTEXT_H_
#define THREEV_TRACE_TRACE_CONTEXT_H_

#include <cstdint>

namespace threev {

// Causal context carried on every Message (and encoded on the TCP wire), so
// one root transaction's work can be stitched into a single trace as it fans
// out across nodes. Deliberately minimal - three ids, no baggage - because
// it rides the protocol hot path:
//   trace_id        - the whole tree (root transaction or one advancement).
//   span_id         - the sender's current span; the receiver starts child
//                     spans with parent_span_id = this.
//   parent_span_id  - the sender's own parent, carried for completeness so
//                     a dumped message instant can be placed in the tree
//                     even when the surrounding span records were
//                     overwritten in the ring.
// An all-zero context means "untraced"; every propagation site is a no-op
// then, so disabled tracing costs three u64 copies per message and nothing
// else. This header stays free of the recorder so net/message.h can include
// it without a layering cycle.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }

  // The context a child span started under this one should carry.
  TraceContext Child(uint64_t child_span_id) const {
    return TraceContext{trace_id, child_span_id, span_id};
  }

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.parent_span_id == b.parent_span_id;
  }
};

}  // namespace threev

#endif  // THREEV_TRACE_TRACE_CONTEXT_H_
