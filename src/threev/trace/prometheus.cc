#include "threev/trace/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace threev {

namespace {

void AppendCounter(std::string* out, const char* name, int64_t value,
                   const std::string& labels) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# TYPE threev_%s_total counter\nthreev_%s_total%s%s%s %" PRId64
                "\n",
                name, name, labels.empty() ? "" : "{",
                labels.c_str(), labels.empty() ? "" : "}", value);
  *out += buf;
}

void AppendQuantile(std::string* out, const std::string& name, double q,
                    int64_t value, const std::string& labels) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s{%s%squantile=\"%g\"} %" PRId64 "\n",
                name.c_str(), labels.c_str(), labels.empty() ? "" : ",", q,
                value);
  *out += buf;
}

}  // namespace

void AppendHistogramSummary(std::string* out, const std::string& name,
                            const Histogram& h, const std::string& labels) {
  const std::string full = "threev_" + name + "_us";
  *out += "# TYPE " + full + " summary\n";
  AppendQuantile(out, full, 0.5, h.Percentile(50), labels);
  AppendQuantile(out, full, 0.9, h.Percentile(90), labels);
  AppendQuantile(out, full, 0.99, h.Percentile(99), labels);
  char buf[192];
  const char *lb = labels.empty() ? "" : "{", *rb = labels.empty() ? "" : "}";
  std::snprintf(buf, sizeof(buf), "%s_sum%s%s%s %" PRId64 "\n", full.c_str(),
                lb, labels.c_str(), rb, h.sum());
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%s_count%s%s%s %" PRId64 "\n", full.c_str(),
                lb, labels.c_str(), rb, h.count());
  *out += buf;
}

std::string PrometheusText(const Metrics& m, const std::string& labels) {
  std::string out;
  out.reserve(4096);
  AppendCounter(&out, "messages_sent", m.messages_sent.load(), labels);
  AppendCounter(&out, "bytes_sent", m.bytes_sent.load(), labels);
  AppendCounter(&out, "txns_committed", m.txns_committed.load(), labels);
  AppendCounter(&out, "txns_aborted", m.txns_aborted.load(), labels);
  AppendCounter(&out, "subtxns_executed", m.subtxns_executed.load(), labels);
  AppendCounter(&out, "compensations_sent", m.compensations_sent.load(),
                labels);
  AppendCounter(&out, "version_copies", m.version_copies.load(), labels);
  AppendCounter(&out, "bytes_copied", m.bytes_copied.load(), labels);
  AppendCounter(&out, "dual_version_writes", m.dual_version_writes.load(),
                labels);
  AppendCounter(&out, "version_inferences", m.version_inferences.load(),
                labels);
  AppendCounter(&out, "advancements_completed",
                m.advancements_completed.load(), labels);
  AppendCounter(&out, "quiescence_rounds", m.quiescence_rounds.load(), labels);
  AppendCounter(&out, "lock_waits", m.lock_waits.load(), labels);
  AppendCounter(&out, "lock_wait_micros", m.lock_wait_micros.load(), labels);
  AppendCounter(&out, "version_gate_waits", m.version_gate_waits.load(),
                labels);
  AppendCounter(&out, "wal_records", m.wal_records.load(), labels);
  AppendCounter(&out, "wal_bytes", m.wal_bytes.load(), labels);
  AppendCounter(&out, "wal_fsyncs", m.wal_fsyncs.load(), labels);
  AppendCounter(&out, "checkpoints_written", m.checkpoints_written.load(),
                labels);
  AppendCounter(&out, "checkpoint_bytes", m.checkpoint_bytes.load(), labels);
  AppendCounter(&out, "recoveries", m.recoveries.load(), labels);
  AppendCounter(&out, "recovery_replayed_bytes",
                m.recovery_replayed_bytes.load(), labels);
  AppendCounter(&out, "messages_dropped", m.messages_dropped.load(), labels);
  AppendCounter(&out, "advancement_retransmits",
                m.advancement_retransmits.load(), labels);
  AppendCounter(&out, "twopc_retransmits", m.twopc_retransmits.load(), labels);
  AppendCounter(&out, "node_crashes", m.node_crashes.load(), labels);
  AppendCounter(&out, "fault_injected_drops", m.fault_injected_drops.load(),
                labels);
  AppendCounter(&out, "fault_injected_delays", m.fault_injected_delays.load(),
                labels);
  AppendHistogramSummary(&out, "update_latency", m.update_latency, labels);
  AppendHistogramSummary(&out, "read_latency", m.read_latency, labels);
  AppendHistogramSummary(&out, "advancement_latency", m.advancement_latency,
                         labels);
  AppendHistogramSummary(&out, "staleness", m.staleness, labels);
  AppendHistogramSummary(&out, "recovery_latency", m.recovery_latency, labels);
  AppendHistogramSummary(&out, "wal_record_bytes", m.wal_record_bytes, labels);
  return out;
}

std::string PrometheusTextAggregate(
    const std::vector<const Metrics*>& nodes) {
  Metrics total;
  for (const Metrics* m : nodes) {
    if (m != nullptr) total.MergeFrom(*m);
  }
  return PrometheusText(total);
}

}  // namespace threev
