#ifndef THREEV_TRACE_INTROSPECT_H_
#define THREEV_TRACE_INTROSPECT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/net/message.h"

namespace threev {

// Protocol introspection: a decoded kAdminInspectReply. The reply reuses
// the Message payload fields as a generic carrier - `reads` holds a
// string -> Value stat map (numeric stats in Value::num, text in
// Value::str), counters_r / counters_c hold one R row and C column of the
// replying node's counter matrix for the requested version - so the admin
// pair rides the existing wire codec unchanged.
//
// Well-known stat keys (nodes): vu, vr, mode, pending_subtxns, nc_txns,
// gate_waiters, locks_held, lock_waiters, wal_segment, wal_bytes,
// store_keys, max_versions_observed, active_versions (str, comma-separated
// versions whose counter rows are live - the fuzz invariant probe re-probes
// each of them via the request's `version` field).
// Coordinator replies use: epoch, phase, phase_name (str),
// round, vu_view, vr_view, auto_advance. `counters_version` on both says
// which version the counter rows describe. Absent keys read as 0 / "".
struct NodeInspection {
  NodeId node = 0;
  std::vector<std::pair<std::string, Value>> stats;
  std::vector<std::pair<NodeId, int64_t>> counters_r;
  std::vector<std::pair<NodeId, int64_t>> counters_c;

  int64_t Stat(const std::string& key, int64_t fallback = 0) const;
  std::string StatStr(const std::string& key) const;
  bool HasStat(const std::string& key) const;

  // "node=2 vu=3 vr=2 pending=0 ..." one-line form for logs and the CLI.
  std::string ToString() const;
};

// Builders / parser shared by Node, AdvanceCoordinator and Client so the
// reply layout is defined in exactly one place.
void InspectPutNum(Message* reply, const std::string& key, int64_t value);
void InspectPutStr(Message* reply, const std::string& key,
                   const std::string& value);
NodeInspection InspectionFromReply(const Message& reply);

// Fills the envelope of a kAdminInspectReply for request `req` (echoes seq
// and trace context, addresses the reply). Callers append stats then Send.
Message MakeInspectReply(const Message& req, NodeId self);

}  // namespace threev

#endif  // THREEV_TRACE_INTROSPECT_H_
