#include "threev/metrics/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace threev {

Histogram::Histogram()
    : count_(0),
      sum_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(0),
      buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < (1 << kSubBucketBits)) return static_cast<int>(value);
  // Position of the highest set bit determines the power-of-2 bucket group;
  // the next kSubBucketBits bits select the sub-bucket.
  int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  int group = msb - kSubBucketBits + 1;
  int sub = static_cast<int>((value >> (msb - kSubBucketBits)) &
                             ((1 << kSubBucketBits) - 1));
  int index = ((group + 1) << kSubBucketBits) + sub;
  return std::min(index, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return bucket;
  int group = (bucket >> kSubBucketBits) - 1;
  int sub = bucket & ((1 << kSubBucketBits) - 1);
  int shift = group - 1;
  int64_t base = (1ll << (kSubBucketBits + shift));
  return base + ((static_cast<int64_t>(sub) + 1) << shift) - 1;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value,
                                     std::memory_order_relaxed)) {
  }
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value,
                                     std::memory_order_relaxed)) {
  }
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::min() const {
  int64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<int64_t>::max() ? 0 : m;
}

double Histogram::mean() const {
  int64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

int64_t Histogram::Percentile(double p) const {
  int64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) return std::min(BucketUpperBound(i), max());
  }
  return max();
}

void Histogram::Merge(const Histogram& other) {
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  int64_t omin = other.min_.load(std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (omin < prev_min &&
         !min_.compare_exchange_weak(prev_min, omin,
                                     std::memory_order_relaxed)) {
  }
  int64_t omax = other.max();
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (omax > prev_max &&
         !max_.compare_exchange_weak(prev_max, omax,
                                     std::memory_order_relaxed)) {
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::string Histogram::Summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f%s p50=%lld%s p90=%lld%s p99=%lld%s "
                "max=%lld%s",
                static_cast<long long>(count()), mean(), unit.c_str(),
                static_cast<long long>(Percentile(50)), unit.c_str(),
                static_cast<long long>(Percentile(90)), unit.c_str(),
                static_cast<long long>(Percentile(99)), unit.c_str(),
                static_cast<long long>(max()), unit.c_str());
  return buf;
}

}  // namespace threev
