#ifndef THREEV_METRICS_METRICS_H_
#define THREEV_METRICS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "threev/metrics/histogram.h"

namespace threev {

// System-wide counters shared by all protocol engines. Every field is an
// atomic so nodes on different threads can bump them without coordination;
// benches snapshot and print them. Like Histogram, this struct is lock-free
// by design and therefore carries no mutex capability for the clang
// thread-safety pass: each increment is individually atomic (the paper's
// only concurrency assumption about its counters), cross-field consistency
// is explicitly NOT promised while writers run, and Reset() requires
// external quiescence. The dual_version_writes / version copies
// counters back the paper's "at most three versions / copy once per
// advancement" claims (experiments B-3COPIES, B-ABLATE-COW).
struct Metrics {
  // Traffic.
  std::atomic<int64_t> messages_sent{0};
  std::atomic<int64_t> bytes_sent{0};

  // Transactions.
  std::atomic<int64_t> txns_committed{0};
  std::atomic<int64_t> txns_aborted{0};
  std::atomic<int64_t> subtxns_executed{0};
  std::atomic<int64_t> compensations_sent{0};

  // Versioning behaviour.
  std::atomic<int64_t> version_copies{0};        // copy-on-update events
  std::atomic<int64_t> bytes_copied{0};          // payload bytes copied
  std::atomic<int64_t> dual_version_writes{0};   // straggler double-writes
  // Advancement learned from a newer-version subtransaction arriving
  // before the coordinator's notice (Section 4.1 step 2).
  std::atomic<int64_t> version_inferences{0};
  std::atomic<int64_t> advancements_completed{0};
  std::atomic<int64_t> quiescence_rounds{0};     // phase-2/4 read waves pairs

  // Blocking behaviour (the paper's headline claim is that these stay zero
  // for user transactions in pure-3V mode).
  std::atomic<int64_t> lock_waits{0};
  std::atomic<int64_t> lock_wait_micros{0};
  std::atomic<int64_t> version_gate_waits{0};    // NC3V vu==vr+1 gate

  // Durability & crash recovery.
  std::atomic<int64_t> wal_records{0};
  std::atomic<int64_t> wal_bytes{0};
  std::atomic<int64_t> wal_fsyncs{0};
  std::atomic<int64_t> checkpoints_written{0};
  std::atomic<int64_t> checkpoint_bytes{0};
  std::atomic<int64_t> recoveries{0};
  std::atomic<int64_t> recovery_replayed_bytes{0};
  // Fault tolerance: dropped deliveries to dead endpoints and protocol
  // retransmissions that un-stick advancement / 2PC after a crash.
  std::atomic<int64_t> messages_dropped{0};
  std::atomic<int64_t> advancement_retransmits{0};
  std::atomic<int64_t> twopc_retransmits{0};
  std::atomic<int64_t> node_crashes{0};
  // Schedule-exploration fault injection (SimNet::SetFaultInjector):
  // messages deliberately lost / delivery-delayed by a fuzz schedule.
  // Injected drops also count under messages_dropped.
  std::atomic<int64_t> fault_injected_drops{0};
  std::atomic<int64_t> fault_injected_delays{0};

  // Latency distributions (microseconds; virtual under SimNet).
  Histogram update_latency;
  Histogram read_latency;
  Histogram advancement_latency;
  Histogram staleness;  // age of data returned to read-only transactions
  Histogram recovery_latency;   // wall-clock checkpoint+log replay time
  Histogram wal_record_bytes;   // framed size per appended redo record

  void Reset();

  // Adds another instance's counters and distributions into this one, for
  // cross-node aggregation (the Prometheus exporter merges per-node Metrics
  // into a scratch instance). Like Reset()/Histogram::Merge(), NOT an
  // atomic snapshot: call only while `other`'s writers are quiescent.
  void MergeFrom(const Metrics& other);

  // Multi-line human-readable dump.
  std::string Report() const;
};

}  // namespace threev

#endif  // THREEV_METRICS_METRICS_H_
