#ifndef THREEV_METRICS_HISTOGRAM_H_
#define THREEV_METRICS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace threev {

// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with 16
// sub-buckets each). Records int64 values in [0, 2^62); thread-safe via
// relaxed atomics (exact totals, approximate per-bucket interleaving).
//
// Concurrency model (thread-safety-annotation pass): deliberately lock-free,
// so there is no capability to GUARDED_BY - every member is a relaxed
// atomic and every operation is a single-word RMW. The non-obvious
// consequences, which the clang analysis cannot express for atomics:
//   * Record() is wait-free and safe from any thread at any time.
//   * Readers (count/sum/Percentile/Summary) may observe a value's count_
//     before its bucket increment (or vice versa); totals are exact once
//     writers quiesce, percentiles are approximate while they run.
//   * Reset() and Merge() are NOT atomic snapshots: call them only while no
//     Record() is in flight (benches do so between phases).
//
// Bucket resolution is ~6% relative error, plenty for latency percentiles.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  // Percentile in [0, 100]; returns an upper bound of the bucket containing
  // the requested rank. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

  // Merges another histogram's counts into this one.
  void Merge(const Histogram& other);

  void Reset();

  // "count=.. mean=.. p50=.. p99=.. max=.." (values in the recorded unit).
  std::string Summary(const std::string& unit = "us") const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per power of 2.
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::atomic<int64_t> count_;
  std::atomic<int64_t> sum_;
  std::atomic<int64_t> min_;
  std::atomic<int64_t> max_;
  std::vector<std::atomic<int64_t>> buckets_;
};

}  // namespace threev

#endif  // THREEV_METRICS_HISTOGRAM_H_
