#include "threev/metrics/metrics.h"

#include <sstream>

namespace threev {

void Metrics::Reset() {
  messages_sent = 0;
  bytes_sent = 0;
  txns_committed = 0;
  txns_aborted = 0;
  subtxns_executed = 0;
  compensations_sent = 0;
  version_copies = 0;
  bytes_copied = 0;
  dual_version_writes = 0;
  version_inferences = 0;
  advancements_completed = 0;
  quiescence_rounds = 0;
  lock_waits = 0;
  lock_wait_micros = 0;
  version_gate_waits = 0;
  wal_records = 0;
  wal_bytes = 0;
  wal_fsyncs = 0;
  checkpoints_written = 0;
  checkpoint_bytes = 0;
  recoveries = 0;
  recovery_replayed_bytes = 0;
  messages_dropped = 0;
  advancement_retransmits = 0;
  twopc_retransmits = 0;
  node_crashes = 0;
  fault_injected_drops = 0;
  fault_injected_delays = 0;
  update_latency.Reset();
  read_latency.Reset();
  advancement_latency.Reset();
  staleness.Reset();
  recovery_latency.Reset();
  wal_record_bytes.Reset();
}

void Metrics::MergeFrom(const Metrics& other) {
  messages_sent += other.messages_sent.load();
  bytes_sent += other.bytes_sent.load();
  txns_committed += other.txns_committed.load();
  txns_aborted += other.txns_aborted.load();
  subtxns_executed += other.subtxns_executed.load();
  compensations_sent += other.compensations_sent.load();
  version_copies += other.version_copies.load();
  bytes_copied += other.bytes_copied.load();
  dual_version_writes += other.dual_version_writes.load();
  version_inferences += other.version_inferences.load();
  advancements_completed += other.advancements_completed.load();
  quiescence_rounds += other.quiescence_rounds.load();
  lock_waits += other.lock_waits.load();
  lock_wait_micros += other.lock_wait_micros.load();
  version_gate_waits += other.version_gate_waits.load();
  wal_records += other.wal_records.load();
  wal_bytes += other.wal_bytes.load();
  wal_fsyncs += other.wal_fsyncs.load();
  checkpoints_written += other.checkpoints_written.load();
  checkpoint_bytes += other.checkpoint_bytes.load();
  recoveries += other.recoveries.load();
  recovery_replayed_bytes += other.recovery_replayed_bytes.load();
  messages_dropped += other.messages_dropped.load();
  advancement_retransmits += other.advancement_retransmits.load();
  twopc_retransmits += other.twopc_retransmits.load();
  node_crashes += other.node_crashes.load();
  fault_injected_drops += other.fault_injected_drops.load();
  fault_injected_delays += other.fault_injected_delays.load();
  update_latency.Merge(other.update_latency);
  read_latency.Merge(other.read_latency);
  advancement_latency.Merge(other.advancement_latency);
  staleness.Merge(other.staleness);
  recovery_latency.Merge(other.recovery_latency);
  wal_record_bytes.Merge(other.wal_record_bytes);
}

std::string Metrics::Report() const {
  std::ostringstream os;
  os << "txns: committed=" << txns_committed.load()
     << " aborted=" << txns_aborted.load()
     << " subtxns=" << subtxns_executed.load()
     << " compensations=" << compensations_sent.load() << "\n";
  os << "net: messages=" << messages_sent.load()
     << " bytes=" << bytes_sent.load() << "\n";
  os << "versioning: copies=" << version_copies.load()
     << " bytes_copied=" << bytes_copied.load()
     << " dual_writes=" << dual_version_writes.load()
     << " inferences=" << version_inferences.load()
     << " advancements=" << advancements_completed.load()
     << " quiescence_rounds=" << quiescence_rounds.load() << "\n";
  os << "blocking: lock_waits=" << lock_waits.load()
     << " lock_wait_us=" << lock_wait_micros.load()
     << " version_gate_waits=" << version_gate_waits.load() << "\n";
  os << "durability: wal_records=" << wal_records.load()
     << " wal_bytes=" << wal_bytes.load()
     << " fsyncs=" << wal_fsyncs.load()
     << " checkpoints=" << checkpoints_written.load()
     << " checkpoint_bytes=" << checkpoint_bytes.load()
     << " recoveries=" << recoveries.load()
     << " replayed_bytes=" << recovery_replayed_bytes.load() << "\n";
  os << "faults: crashes=" << node_crashes.load()
     << " dropped=" << messages_dropped.load()
     << " adv_retransmits=" << advancement_retransmits.load()
     << " 2pc_retransmits=" << twopc_retransmits.load()
     << " injected_drops=" << fault_injected_drops.load()
     << " injected_delays=" << fault_injected_delays.load() << "\n";
  os << "update_latency: " << update_latency.Summary() << "\n";
  os << "read_latency:   " << read_latency.Summary() << "\n";
  os << "advancement:    " << advancement_latency.Summary() << "\n";
  os << "staleness:      " << staleness.Summary() << "\n";
  os << "recovery_time:  " << recovery_latency.Summary() << "\n";
  os << "wal_rec_bytes:  " << wal_record_bytes.Summary() << "\n";
  return os.str();
}

}  // namespace threev
