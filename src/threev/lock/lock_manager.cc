#include "threev/lock/lock_manager.h"

#include <algorithm>

namespace threev {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kCommuteRead:
      return "CR";
    case LockMode::kCommuteUpdate:
      return "CU";
    case LockMode::kNCRead:
      return "NCR";
    case LockMode::kNCWrite:
      return "NCW";
  }
  return "?";
}

bool LocksCompatible(LockMode a, LockMode b) {
  // See the matrix in the header.
  auto is_commute = [](LockMode m) {
    return m == LockMode::kCommuteRead || m == LockMode::kCommuteUpdate;
  };
  if (is_commute(a) && is_commute(b)) return true;
  if (a == LockMode::kNCWrite || b == LockMode::kNCWrite) return false;
  // Remaining mixed cases involve exactly one NCR.
  if (a == LockMode::kNCRead && b == LockMode::kNCRead) return true;
  // NCR vs commute: compatible only with CR (reads commute with reads).
  LockMode commute = (a == LockMode::kNCRead) ? b : a;
  return commute == LockMode::kCommuteRead;
}

bool LockSubsumes(LockMode stronger, LockMode weaker) {
  if (stronger == weaker) return true;
  if (stronger == LockMode::kNCWrite) return true;
  if (stronger == LockMode::kCommuteUpdate &&
      weaker == LockMode::kCommuteRead) {
    return true;
  }
  if (stronger == LockMode::kNCRead && weaker == LockMode::kCommuteRead) {
    return true;
  }
  return false;
}

bool LockManager::CompatibleWithHolders(const KeyState& ks, LockMode mode,
                                        uint64_t owner) {
  for (const auto& h : ks.holders) {
    if (h.owner == owner) continue;  // self-compatibility handled by caller
    if (!LocksCompatible(h.mode, mode)) return false;
  }
  return true;
}

void LockManager::Acquire(const std::string& key, LockMode mode,
                          uint64_t owner, GrantCallback cb) {
  bool granted = false;
  {
    MutexLock lock(mu_);
    KeyState& ks = keys_[key];

    // Re-entrant / upgrade path.
    Holder* own = nullptr;
    for (auto& h : ks.holders) {
      if (h.owner == owner) {
        own = &h;
        break;
      }
    }
    if (own != nullptr) {
      if (LockSubsumes(own->mode, mode)) {
        own->count++;
        granted = true;
      } else if (CompatibleWithHolders(ks, mode, owner)) {
        own->mode = mode;  // upgrade in place
        own->count++;
        granted = true;
      } else {
        ks.waiters.push_back(Waiter{owner, mode, std::move(cb)});
      }
    } else if (ks.waiters.empty() &&
               CompatibleWithHolders(ks, mode, owner)) {
      ks.holders.push_back(Holder{owner, mode, 1});
      owner_keys_[owner].push_back(key);
      granted = true;
    } else {
      ks.waiters.push_back(Waiter{owner, mode, std::move(cb)});
    }
  }
  if (granted) cb(true);
}

void LockManager::PromoteWaitersLocked(const std::string& key, KeyState& ks,
                                       std::vector<GrantCallback>& ready) {
  // FIFO: grant from the front while compatible; stop at the first waiter
  // that still conflicts (strict queue order prevents starvation).
  while (!ks.waiters.empty()) {
    Waiter& w = ks.waiters.front();
    if (!CompatibleWithHolders(ks, w.mode, w.owner)) break;
    Holder* own = nullptr;
    for (auto& h : ks.holders) {
      if (h.owner == w.owner) {
        own = &h;
        break;
      }
    }
    if (own != nullptr) {
      if (!LockSubsumes(own->mode, w.mode)) own->mode = w.mode;
      own->count++;
    } else {
      ks.holders.push_back(Holder{w.owner, w.mode, 1});
      owner_keys_[w.owner].push_back(key);
    }
    ready.push_back(std::move(w.cb));
    ks.waiters.pop_front();
  }
}

void LockManager::ReleaseAll(uint64_t owner) {
  std::vector<GrantCallback> ready;
  {
    MutexLock lock(mu_);
    auto it = owner_keys_.find(owner);
    if (it == owner_keys_.end()) return;
    std::vector<std::string> held = std::move(it->second);
    owner_keys_.erase(it);
    for (const auto& key : held) {
      auto kit = keys_.find(key);
      if (kit == keys_.end()) continue;
      KeyState& ks = kit->second;
      ks.holders.erase(
          std::remove_if(ks.holders.begin(), ks.holders.end(),
                         [&](const Holder& h) { return h.owner == owner; }),
          ks.holders.end());
      PromoteWaitersLocked(key, ks, ready);
      if (ks.holders.empty() && ks.waiters.empty()) keys_.erase(kit);
    }
  }
  for (auto& cb : ready) cb(true);
}

size_t LockManager::CancelWaits(uint64_t owner) {
  std::vector<GrantCallback> cancelled;
  std::vector<GrantCallback> ready;
  {
    MutexLock lock(mu_);
    for (auto& [key, ks] : keys_) {
      bool removed = false;
      for (auto it = ks.waiters.begin(); it != ks.waiters.end();) {
        if (it->owner == owner) {
          cancelled.push_back(std::move(it->cb));
          it = ks.waiters.erase(it);
          removed = true;
        } else {
          ++it;
        }
      }
      // Removing a (possibly incompatible) waiter from the middle of the
      // FIFO can unblock everyone queued behind it - promote now, or they
      // would wait for an unrelated release that may never come.
      if (removed) PromoteWaitersLocked(key, ks, ready);
    }
  }
  for (auto& cb : cancelled) cb(false);
  for (auto& cb : ready) cb(true);
  return cancelled.size();
}

size_t LockManager::HeldCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [key, ks] : keys_) n += ks.holders.size();
  return n;
}

size_t LockManager::WaiterCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [key, ks] : keys_) n += ks.waiters.size();
  return n;
}

std::string LockManager::DebugString() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [key, ks] : keys_) {
    out += "  " + key + ": holders[";
    for (const auto& h : ks.holders) {
      out += std::to_string(h.owner) + ":" + LockModeName(h.mode) + "x" +
             std::to_string(h.count) + " ";
    }
    out += "] waiters[";
    for (const auto& w : ks.waiters) {
      out += std::to_string(w.owner) + ":" + LockModeName(w.mode) + " ";
    }
    out += "]\n";
  }
  return out;
}

bool LockManager::Holds(const std::string& key, uint64_t owner) const {
  MutexLock lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  for (const auto& h : it->second.holders) {
    if (h.owner == owner) return true;
  }
  return false;
}

}  // namespace threev
