#ifndef THREEV_LOCK_LOCK_MANAGER_H_
#define THREEV_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"

namespace threev {

// Lock modes of the NC3V extension (Section 5).
//
// Well-behaved transactions take commuting locks (kCommuteRead /
// kCommuteUpdate); non-well-behaved transactions take the classical
// shared/exclusive pair (kNCRead / kNCWrite). Commuting locks are
// compatible with each other - in the absence of non-commuting
// transactions nobody ever waits - but conflict with their non-commuting
// counterparts:
//
//              CR   CU   NCR  NCW
//   CR   (yes) yes  yes  yes  no     - reads commute with reads
//   CU         yes  yes  no   no     - commuting updates conflict with any
//   NCR        yes  no   yes  no       non-commuting access
//   NCW        no   no   no   no
enum class LockMode : uint8_t {
  kCommuteRead = 0,
  kCommuteUpdate = 1,
  kNCRead = 2,
  kNCWrite = 3,
};

const char* LockModeName(LockMode mode);
bool LocksCompatible(LockMode a, LockMode b);

// Whether `stronger` subsumes `weaker` for re-entrant grants by the same
// owner (CU subsumes CR; NCW subsumes NCR, CU and CR).
bool LockSubsumes(LockMode stronger, LockMode weaker);

// Per-node lock table with asynchronous grants.
//
// Acquire() invokes the callback inline when the lock is free (the common
// case for commuting traffic) and queues a FIFO waiter otherwise; the
// callback then runs from whichever Release/Cancel call unblocks it.
// Owners are transaction ids; all locks of a transaction on this node are
// released together (strict 2PL at transaction granularity).
//
// Callbacks are always invoked without the internal mutex held, so they may
// re-enter the lock manager.
class LockManager {
 public:
  // granted=false means the request was cancelled (lock timeout).
  using GrantCallback = std::function<void(bool granted)>;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Requests `mode` on `key` for `owner`. Re-entrant: if the owner already
  // holds a subsuming lock on the key the grant is immediate; holding a
  // weaker lock upgrades when compatible with the other holders (queued
  // otherwise). Fairness: a request that is compatible with the holders
  // but finds a non-empty wait queue goes to the back (no starvation).
  void Acquire(const std::string& key, LockMode mode, uint64_t owner,
               GrantCallback cb) EXCLUDES(mu_);

  // Releases every lock held by `owner`, granting unblocked waiters.
  void ReleaseAll(uint64_t owner) EXCLUDES(mu_);

  // Cancels all waiting (not yet granted) requests of `owner`, invoking
  // their callbacks with granted=false. Returns the number cancelled.
  size_t CancelWaits(uint64_t owner) EXCLUDES(mu_);

  // --- introspection (tests / diagnostics) ---
  size_t HeldCount() const EXCLUDES(mu_);
  size_t WaiterCount() const EXCLUDES(mu_);
  bool Holds(const std::string& key, uint64_t owner) const EXCLUDES(mu_);
  // One line per key with holders and queued waiters.
  std::string DebugString() const EXCLUDES(mu_);

 private:
  struct Holder {
    uint64_t owner;
    LockMode mode;
    int count;  // re-entrant acquisitions
  };
  struct Waiter {
    uint64_t owner;
    LockMode mode;
    GrantCallback cb;
  };
  struct KeyState {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  // Scans `key`'s queue and moves newly grantable waiters into holders,
  // collecting their callbacks. Caller holds mu_ and invokes the callbacks
  // after unlocking.
  void PromoteWaitersLocked(const std::string& key, KeyState& ks,
                            std::vector<GrantCallback>& ready) REQUIRES(mu_);

  static bool CompatibleWithHolders(const KeyState& ks, LockMode mode,
                                    uint64_t owner);

  mutable Mutex mu_;
  std::unordered_map<std::string, KeyState> keys_ GUARDED_BY(mu_);
  // owner -> keys it holds (for ReleaseAll).
  std::unordered_map<uint64_t, std::vector<std::string>> owner_keys_
      GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_LOCK_LOCK_MANAGER_H_
