#ifndef THREEV_DURABILITY_CHECKPOINT_H_
#define THREEV_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/status.h"
#include "threev/durability/wal.h"

namespace threev {

// A materialized node state at a quiesced point: the versioned store, the
// counter matrices and the version variables. A checkpoint always pairs
// with a WAL rotation - `wal_segment` names the first segment whose records
// post-date the snapshot, so replay = load checkpoint + redo segments
// >= wal_segment, with no overlap (counter deltas must not double-apply).
struct CheckpointData {
  Version vu = 1;
  Version vr = 0;
  uint64_t seq_floor = 1;     // resume local id sequences at/above this
  uint64_t wal_segment = 1;   // first WAL segment not covered by snapshot

  std::vector<WalImage> store;  // every (key, version, value) copy

  struct CounterRow {
    Version version = 0;
    std::vector<int64_t> r;  // R(version)[me][q] for q = 0..n-1
    std::vector<int64_t> c;  // C(version)[o][me] for o = 0..n-1
  };
  std::vector<CounterRow> counters;
};

// Writes `data` to "<dir>/checkpoint-<wal_segment>.ckpt" atomically
// (temp file + rename) with a trailing CRC over the whole payload.
Status WriteCheckpointFile(const std::string& dir, const CheckpointData& data);

// Loads the newest checkpoint that passes its CRC; NotFound if none exists.
// An unreadable or corrupt newest file falls back to the next older one
// (its WAL segments still exist, so recovery stays correct, just longer).
Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir);

}  // namespace threev

#endif  // THREEV_DURABILITY_CHECKPOINT_H_
