#ifndef THREEV_DURABILITY_WAL_H_
#define THREEV_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/status.h"
#include "threev/metrics/metrics.h"
#include "threev/storage/versioned_store.h"
#include "threev/trace/trace.h"

namespace threev {

// Typed redo records of the per-node write-ahead log.
//
// The log is *physical* for data (after-images per version copy) and
// *logical* for protocol state (counter deltas, version switches, 2PC
// outcomes). Physical data records make replay idempotent: re-applying an
// after-image is a plain overwrite, so a torn recovery that is retried, or
// a whole log replayed twice, converges to the same store state. Counter
// deltas are not idempotent on their own; replay never overlaps them with
// checkpointed counters because a checkpoint always starts a fresh segment
// (see checkpoint.h).
enum class WalRecordType : uint8_t {
  // After-images written by one well-behaved subtransaction (a straggler
  // dual-write produces one image per touched version copy).
  kUpdate = 1,
  // vu (flag=true) or vr (flag=false) advanced to `version`.
  kVersionSwitch = 2,
  // R (flag=true) or C (flag=false) counter delta: (version, peer) += delta.
  kCounter = 3,
  // NC3V subtransaction executed here: after-images + undo entries + the
  // deferred completion pair (version, peer=source). Kept until the 2PC
  // decision; a recovered node re-enters 2PC with exactly this state.
  kNcExecute = 4,
  // Participant voted yes for `txn` (must be durable before the vote is
  // sent - the prepared state survives reboot).
  kNcPrepared = 5,
  // Participant-side decision applied for `txn` (flag=commit).
  kNcDecision = 6,
  // Root-side decision for `txn` (flag=commit), forced *before* any
  // decision message is sent: presumed abort is sound only if a logged
  // decision is the one possible source of a delivered commit.
  kNcRootDecision = 7,
  // Phase-4 garbage collection at `version` was applied.
  kGarbageCollect = 8,
  // Transaction/subtransaction sequence numbers below `seq` may have been
  // handed out; a restarted node resumes above the reserved block so ids
  // never collide across incarnations.
  kSeqReserve = 9,
};

const char* WalRecordTypeName(WalRecordType type);

// One redo after-image: key(version) := value.
struct WalImage {
  std::string key;
  Version version = 0;
  Value value;

  friend bool operator==(const WalImage& a, const WalImage& b) {
    return a.key == b.key && a.version == b.version && a.value == b.value;
  }
};

struct WalRecord {
  WalRecordType type = WalRecordType::kUpdate;
  Version version = 0;  // switch target / counter row / GC / NC version
  bool flag = false;    // switch: is-vu; counter: is-R; decision: commit
  NodeId peer = 0;      // counter peer / NC source node
  TxnId txn = 0;        // NC records
  uint64_t seq = 0;     // kSeqReserve bound
  bool failed = false;  // kNcExecute: the execution aborted locally
  std::vector<WalImage> images;  // kUpdate / kNcExecute
  std::vector<UndoEntry> undo;   // kNcExecute

  std::string ToString() const;
};

// Frame codec (exposed for fuzzing): payload is the wire encoding of one
// record; a frame is [u32 length][u32 crc32(payload)][payload].
std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec);
Result<WalRecord> DecodeWalRecord(const uint8_t* data, size_t size);

uint32_t WalCrc32(const uint8_t* data, size_t size);

// When to force the OS to persist appended frames.
enum class FsyncPolicy : uint8_t {
  kNone = 0,         // flush to the OS only (process-crash durable)
  kBatch = 1,        // fsync at forced records (2PC) and rotation
  kEveryRecord = 2,  // fsync after every append
};

struct WalOptions {
  std::string dir;  // segment files live here ("wal-<seq>.log")
  FsyncPolicy fsync = FsyncPolicy::kNone;
  size_t segment_bytes = 4u << 20;  // rotate past this size
  // Observability (DESIGN.md section 12): kWalFsync instants land on
  // `node`'s track with timestamps from `now`, so the trace stays in the
  // owning node's clock domain (virtual under SimNet). Optional.
  Tracer* tracer = nullptr;
  NodeId node = 0;
  std::function<Micros()> now;
};

// Append-only segmented redo log for one node. Not thread-safe: the owning
// Node serializes appends under its own mutex.
class WriteAheadLog {
 public:
  // Creates `options.dir` if needed and starts a segment after the highest
  // existing one (never appends behind a possibly-torn tail).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const WalOptions& options,
                                                     Metrics* metrics = nullptr);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one CRC-framed record; `force` requests an fsync under kBatch
  // (2PC prepare/decision records must hit the platter before the message).
  Status Append(const WalRecord& rec, bool force = false);

  // Closes the current segment and starts the next one (checkpoint entry).
  Status RotateSegment();

  // Deletes segments with sequence < `seg` (the checkpoint covers them).
  Status TruncateBefore(uint64_t seg);

  uint64_t current_segment() const { return segment_; }
  uint64_t bytes_appended() const { return bytes_appended_; }

  // Reads every record of every segment >= from_seg, in order. A torn or
  // corrupt frame ends that segment's replay cleanly (the tail was never
  // acknowledged); `bytes_read` reports how much log was scanned.
  static Result<std::vector<WalRecord>> ReadAll(const std::string& dir,
                                                uint64_t from_seg,
                                                uint64_t* bytes_read = nullptr);

  // Existing segment sequence numbers in `dir`, ascending.
  static std::vector<uint64_t> ListSegments(const std::string& dir);

  static std::string SegmentPath(const std::string& dir, uint64_t seg);

 private:
  WriteAheadLog(const WalOptions& options, Metrics* metrics)
      : options_(options), metrics_(metrics) {}

  Status OpenSegment(uint64_t seg);
  Status SyncNow();

  WalOptions options_;
  Metrics* metrics_;  // unowned, may be null
  std::FILE* file_ = nullptr;
  uint64_t segment_ = 0;
  size_t segment_size_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t bytes_since_sync_ = 0;  // kWalFsync instant arg
};

}  // namespace threev

#endif  // THREEV_DURABILITY_WAL_H_
