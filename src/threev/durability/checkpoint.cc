#include "threev/durability/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "threev/net/wire.h"

namespace threev {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kCheckpointMagic = 0x33564b43;  // "CKV3"

std::string CheckpointPath(const std::string& dir, uint64_t n) {
  char name[40];
  std::snprintf(name, sizeof(name), "checkpoint-%08llu.ckpt",
                static_cast<unsigned long long>(n));
  return (fs::path(dir) / name).string();
}

std::vector<uint64_t> ListCheckpoints(const std::string& dir) {
  std::vector<uint64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long n = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%llu.ckpt", &n) == 1) {
      out.push_back(n);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void EncodeCkptValue(WireWriter& w, const Value& v) {
  w.I64(v.num);
  w.U32(static_cast<uint32_t>(v.ids.size()));
  for (uint64_t id : v.ids) w.U64(id);
  w.Str(v.str);
}

Value DecodeCkptValue(WireReader& r) {
  Value v;
  v.num = r.I64();
  uint32_t n = r.U32();
  if (n > (1u << 24)) n = 0;
  v.ids.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.ids.push_back(r.U64());
  v.str = r.Str();
  return v;
}

}  // namespace

Status WriteCheckpointFile(const std::string& dir,
                           const CheckpointData& data) {
  WireWriter w;
  w.U32(kCheckpointMagic);
  w.U32(data.vu);
  w.U32(data.vr);
  w.U64(data.seq_floor);
  w.U64(data.wal_segment);
  w.U32(static_cast<uint32_t>(data.store.size()));
  for (const auto& img : data.store) {
    w.Str(img.key);
    w.U32(img.version);
    EncodeCkptValue(w, img.value);
  }
  w.U32(static_cast<uint32_t>(data.counters.size()));
  for (const auto& row : data.counters) {
    w.U32(row.version);
    w.U32(static_cast<uint32_t>(row.r.size()));
    for (int64_t v : row.r) w.I64(v);
    w.U32(static_cast<uint32_t>(row.c.size()));
    for (int64_t v : row.c) w.I64(v);
  }
  std::vector<uint8_t> payload = w.Take();
  uint32_t crc = WalCrc32(payload.data(), payload.size());

  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = CheckpointPath(dir, data.wal_segment);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  uint8_t trailer[4];
  for (int i = 0; i < 4; ++i) trailer[i] = static_cast<uint8_t>(crc >> (8 * i));
  bool ok = std::fwrite(payload.data(), 1, payload.size(), f) ==
                payload.size() &&
            std::fwrite(trailer, 1, sizeof(trailer), f) == sizeof(trailer) &&
            std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    fs::remove(tmp, ec);
    return Status::IoError("write " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + ": " + ec.message());
  }
  // Older checkpoints are fully superseded.
  for (uint64_t n : ListCheckpoints(dir)) {
    if (n < data.wal_segment) fs::remove(CheckpointPath(dir, n), ec);
  }
  return Status::Ok();
}

Result<CheckpointData> LoadLatestCheckpoint(const std::string& dir) {
  std::vector<uint64_t> ckpts = ListCheckpoints(dir);
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    const std::string path = CheckpointPath(dir, *it);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 4) {
      std::fclose(f);
      continue;
    }
    std::vector<uint8_t> buf(static_cast<size_t>(size));
    bool read_ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
    std::fclose(f);
    if (!read_ok) continue;
    size_t payload_size = buf.size() - 4;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      crc |= static_cast<uint32_t>(buf[payload_size + i]) << (8 * i);
    }
    if (WalCrc32(buf.data(), payload_size) != crc) continue;

    WireReader r(buf.data(), payload_size);
    if (r.U32() != kCheckpointMagic) continue;
    CheckpointData data;
    data.vu = r.U32();
    data.vr = r.U32();
    data.seq_floor = r.U64();
    data.wal_segment = r.U64();
    uint32_t nstore = r.U32();
    if (nstore > (1u << 24)) continue;
    for (uint32_t i = 0; i < nstore && r.ok(); ++i) {
      WalImage img;
      img.key = r.Str();
      img.version = r.U32();
      img.value = DecodeCkptValue(r);
      data.store.push_back(std::move(img));
    }
    uint32_t nrows = r.U32();
    if (nrows > (1u << 20)) continue;
    for (uint32_t i = 0; i < nrows && r.ok(); ++i) {
      CheckpointData::CounterRow row;
      row.version = r.U32();
      uint32_t nr = r.U32();
      if (nr > (1u << 16)) nr = 0;
      for (uint32_t j = 0; j < nr && r.ok(); ++j) row.r.push_back(r.I64());
      uint32_t ncc = r.U32();
      if (ncc > (1u << 16)) ncc = 0;
      for (uint32_t j = 0; j < ncc && r.ok(); ++j) row.c.push_back(r.I64());
      data.counters.push_back(std::move(row));
    }
    if (!r.ok() || !r.AtEnd()) continue;
    return data;
  }
  return Status::NotFound("no checkpoint in " + dir);
}

}  // namespace threev
