#include "threev/durability/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "threev/common/logging.h"
#include "threev/net/wire.h"

namespace threev {

namespace fs = std::filesystem;

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kUpdate: return "Update";
    case WalRecordType::kVersionSwitch: return "VersionSwitch";
    case WalRecordType::kCounter: return "Counter";
    case WalRecordType::kNcExecute: return "NcExecute";
    case WalRecordType::kNcPrepared: return "NcPrepared";
    case WalRecordType::kNcDecision: return "NcDecision";
    case WalRecordType::kNcRootDecision: return "NcRootDecision";
    case WalRecordType::kGarbageCollect: return "GarbageCollect";
    case WalRecordType::kSeqReserve: return "SeqReserve";
  }
  return "?";
}

std::string WalRecord::ToString() const {
  std::string out = WalRecordTypeName(type);
  out += " v" + std::to_string(version);
  if (txn != 0) out += " txn=" + std::to_string(txn);
  if (!images.empty()) out += " images=" + std::to_string(images.size());
  if (!undo.empty()) out += " undo=" + std::to_string(undo.size());
  return out;
}

uint32_t WalCrc32(const uint8_t* data, size_t size) {
  // Standard CRC-32 (IEEE 802.3), small table built on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

namespace {

void EncodeWalValue(WireWriter& w, const Value& v) {
  w.I64(v.num);
  w.U32(static_cast<uint32_t>(v.ids.size()));
  for (uint64_t id : v.ids) w.U64(id);
  w.Str(v.str);
}

Value DecodeWalValue(WireReader& r) {
  Value v;
  v.num = r.I64();
  uint32_t n = r.U32();
  if (n > (1u << 24)) n = 0;  // malformed length must not over-allocate
  v.ids.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.ids.push_back(r.U64());
  v.str = r.Str();
  return v;
}

}  // namespace

std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(rec.type));
  w.U32(rec.version);
  w.Bool(rec.flag);
  w.U32(rec.peer);
  w.U64(rec.txn);
  w.U64(rec.seq);
  w.Bool(rec.failed);
  w.U32(static_cast<uint32_t>(rec.images.size()));
  for (const auto& img : rec.images) {
    w.Str(img.key);
    w.U32(img.version);
    EncodeWalValue(w, img.value);
  }
  w.U32(static_cast<uint32_t>(rec.undo.size()));
  for (const auto& u : rec.undo) {
    w.Str(u.key);
    w.U32(u.version);
    w.Bool(u.created);
    EncodeWalValue(w, u.prior);
  }
  return w.Take();
}

Result<WalRecord> DecodeWalRecord(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  WalRecord rec;
  rec.type = static_cast<WalRecordType>(r.U8());
  rec.version = r.U32();
  rec.flag = r.Bool();
  rec.peer = r.U32();
  rec.txn = r.U64();
  rec.seq = r.U64();
  rec.failed = r.Bool();
  uint32_t nimages = r.U32();
  if (nimages > (1u << 20)) nimages = 0;
  for (uint32_t i = 0; i < nimages && r.ok(); ++i) {
    WalImage img;
    img.key = r.Str();
    img.version = r.U32();
    img.value = DecodeWalValue(r);
    rec.images.push_back(std::move(img));
  }
  uint32_t nundo = r.U32();
  if (nundo > (1u << 20)) nundo = 0;
  for (uint32_t i = 0; i < nundo && r.ok(); ++i) {
    UndoEntry u;
    u.key = r.Str();
    u.version = r.U32();
    u.created = r.Bool();
    u.prior = DecodeWalValue(r);
    rec.undo.push_back(std::move(u));
  }
  if (!r.ok()) return Status::IoError("truncated wal record");
  if (!r.AtEnd()) return Status::IoError("trailing bytes in wal record");
  return rec;
}

std::string WriteAheadLog::SegmentPath(const std::string& dir, uint64_t seg) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(seg));
  return (fs::path(dir) / name).string();
}

std::vector<uint64_t> WriteAheadLog::ListSegments(const std::string& dir) {
  std::vector<uint64_t> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seg = 0;
    if (std::sscanf(name.c_str(), "wal-%llu.log", &seg) == 1) {
      out.push_back(seg);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const WalOptions& options, Metrics* metrics) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal dir is empty");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create " + options.dir + ": " + ec.message());
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(options, metrics));
  std::vector<uint64_t> segments = ListSegments(options.dir);
  // Never append to an existing segment: its tail may be a torn frame from
  // the previous incarnation, and replay stops at the first torn frame -
  // anything appended after it would be unreachable.
  uint64_t seg = segments.empty() ? 1 : segments.back() + 1;
  Status s = wal->OpenSegment(seg);
  if (!s.ok()) return s;
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::OpenSegment(uint64_t seg) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = SegmentPath(options_.dir, seg);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  segment_ = seg;
  long pos = std::ftell(file_);
  segment_size_ = pos > 0 ? static_cast<size_t>(pos) : 0;
  return Status::Ok();
}

Status WriteAheadLog::SyncNow() {
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError(std::string("fsync: ") + std::strerror(errno));
  }
  if (metrics_ != nullptr) {
    metrics_->wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.tracer != nullptr && options_.tracer->enabled() &&
      options_.now) {
    options_.tracer->Instant(options_.now(), options_.node, TraceOp::kWalFsync,
                             TraceContext{}, 0,
                             static_cast<int64_t>(bytes_since_sync_));
  }
  bytes_since_sync_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::Append(const WalRecord& rec, bool force) {
  std::vector<uint8_t> payload = EncodeWalRecord(rec);
  uint8_t header[8];
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = WalCrc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
    header[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError("wal append failed");
  }
  // Always push the frame to the OS: recovery reads through the filesystem,
  // so a process crash (the common fault) never loses flushed frames. The
  // fsync policy only governs power-loss durability.
  if (std::fflush(file_) != 0) {
    return Status::IoError(std::string("fflush: ") + std::strerror(errno));
  }
  size_t frame = sizeof(header) + payload.size();
  segment_size_ += frame;
  bytes_appended_ += frame;
  bytes_since_sync_ += frame;
  if (metrics_ != nullptr) {
    metrics_->wal_records.fetch_add(1, std::memory_order_relaxed);
    metrics_->wal_bytes.fetch_add(static_cast<int64_t>(frame),
                                  std::memory_order_relaxed);
    metrics_->wal_record_bytes.Record(static_cast<int64_t>(frame));
  }
  if (options_.fsync == FsyncPolicy::kEveryRecord ||
      (options_.fsync == FsyncPolicy::kBatch && force)) {
    Status s = SyncNow();
    if (!s.ok()) return s;
  }
  if (segment_size_ >= options_.segment_bytes) {
    return RotateSegment();
  }
  return Status::Ok();
}

Status WriteAheadLog::RotateSegment() {
  if (options_.fsync != FsyncPolicy::kNone && segment_size_ > 0) {
    Status s = SyncNow();
    if (!s.ok()) return s;
  }
  return OpenSegment(segment_ + 1);
}

Status WriteAheadLog::TruncateBefore(uint64_t seg) {
  for (uint64_t old : ListSegments(options_.dir)) {
    if (old >= seg) break;
    std::error_code ec;
    fs::remove(SegmentPath(options_.dir, old), ec);
    if (ec) {
      return Status::IoError("remove segment " + std::to_string(old) + ": " +
                             ec.message());
    }
  }
  return Status::Ok();
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll(const std::string& dir,
                                                      uint64_t from_seg,
                                                      uint64_t* bytes_read) {
  std::vector<WalRecord> out;
  uint64_t bytes = 0;
  for (uint64_t seg : ListSegments(dir)) {
    if (seg < from_seg) continue;
    const std::string path = SegmentPath(dir, seg);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IoError("open " + path + ": " + std::strerror(errno));
    }
    std::vector<uint8_t> payload;
    for (;;) {
      uint8_t header[8];
      size_t n = std::fread(header, 1, sizeof(header), f);
      if (n != sizeof(header)) break;  // clean end or torn header
      uint32_t len = 0, crc = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(header[i]) << (8 * i);
        crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
      }
      if (len > (64u << 20)) break;  // implausible frame: treat as torn
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, f) != len) break;  // torn tail
      if (WalCrc32(payload.data(), len) != crc) break;  // corrupt frame
      Result<WalRecord> rec = DecodeWalRecord(payload.data(), len);
      if (!rec.ok()) break;  // CRC-valid but undecodable: stop replay here
      bytes += sizeof(header) + len;
      out.push_back(*std::move(rec));
    }
    std::fclose(f);
  }
  if (bytes_read != nullptr) *bytes_read = bytes;
  return out;
}

}  // namespace threev
