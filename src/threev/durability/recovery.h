#ifndef THREEV_DURABILITY_RECOVERY_H_
#define THREEV_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/status.h"
#include "threev/core/counters.h"
#include "threev/durability/checkpoint.h"
#include "threev/durability/wal.h"
#include "threev/metrics/metrics.h"
#include "threev/storage/versioned_store.h"

namespace threev {

// What a node learns from checkpoint + redo replay, beyond the store and
// counter contents (which are installed directly into the passed objects).
struct RecoveredState {
  Version vu = 1;
  Version vr = 0;
  // Local id sequences must resume at/above this (reserved-block rule).
  uint64_t seq_floor = 1;

  // Non-commuting transactions that executed here but have no logged
  // decision: the node re-enters 2PC with this state (prepared entries
  // voted yes before the crash and MUST honor a later commit decision).
  struct InDoubtTxn {
    std::vector<UndoEntry> undo;
    std::vector<std::pair<Version, NodeId>> completions;
    bool failed = false;
    bool prepared = false;
  };
  std::map<TxnId, InDoubtTxn> in_doubt;

  // Root-side decisions logged before distribution. Rebroadcasting them is
  // idempotent and un-sticks participants whose decision message died with
  // the crashed root. In-doubt txns rooted here with no logged decision are
  // presumed aborted (the forced kNcRootDecision record guarantees no
  // participant can have received a commit).
  std::map<TxnId, bool> root_decisions;

  // Replay accounting (metrics / tests).
  size_t checkpoint_images = 0;
  size_t wal_records = 0;
  uint64_t wal_bytes = 0;
};

// Rebuilds `store` and `counters` (both must be freshly constructed) from
// the newest checkpoint plus all WAL segments behind it in `dir`. A missing
// checkpoint means replay from the first segment; a missing directory or a
// directory with neither checkpoint nor log recovers to the initial state
// (vu=1, vr=0, empty store).
Result<RecoveredState> RecoverNodeState(const std::string& dir,
                                        VersionedStore* store,
                                        CounterTable* counters,
                                        Metrics* metrics = nullptr);

// Applies one redo record to (store, counters, state). Exposed so tests can
// drive replay record-by-record; RecoverNodeState loops over this.
void ApplyWalRecord(const WalRecord& rec, VersionedStore* store,
                    CounterTable* counters, RecoveredState* state);

}  // namespace threev

#endif  // THREEV_DURABILITY_RECOVERY_H_
