#include "threev/durability/recovery.h"

#include <chrono>

#include "threev/common/logging.h"

namespace threev {

void ApplyWalRecord(const WalRecord& rec, VersionedStore* store,
                    CounterTable* counters, RecoveredState* state) {
  switch (rec.type) {
    case WalRecordType::kUpdate:
      for (const auto& img : rec.images) {
        store->Seed(img.key, img.value, img.version);
      }
      break;
    case WalRecordType::kVersionSwitch:
      if (rec.flag) {
        if (rec.version > state->vu) state->vu = rec.version;
      } else {
        if (rec.version > state->vr) state->vr = rec.version;
      }
      break;
    case WalRecordType::kCounter:
      if (rec.flag) {
        counters->IncR(rec.version, rec.peer);
      } else {
        counters->IncC(rec.version, rec.peer);
      }
      break;
    case WalRecordType::kNcExecute: {
      for (const auto& img : rec.images) {
        store->Seed(img.key, img.value, img.version);
      }
      auto& txn = state->in_doubt[rec.txn];
      for (const auto& u : rec.undo) txn.undo.push_back(u);
      txn.completions.emplace_back(rec.version, rec.peer);
      if (rec.failed) txn.failed = true;
      break;
    }
    case WalRecordType::kNcPrepared: {
      auto it = state->in_doubt.find(rec.txn);
      if (it != state->in_doubt.end()) it->second.prepared = true;
      break;
    }
    case WalRecordType::kNcDecision: {
      // The decision was applied before the crash. On abort, redo the
      // rollback: the undo writes themselves were never logged as images.
      auto it = state->in_doubt.find(rec.txn);
      if (it != state->in_doubt.end()) {
        if (!rec.flag) {
          for (auto u = it->second.undo.rbegin(); u != it->second.undo.rend();
               ++u) {
            store->Undo(*u);
          }
        }
        // Completion-counter increments at decision time were logged as
        // kCounter records right after this one; nothing more to redo.
        state->in_doubt.erase(it);
      }
      break;
    }
    case WalRecordType::kNcRootDecision:
      state->root_decisions[rec.txn] = rec.flag;
      break;
    case WalRecordType::kGarbageCollect:
      store->GarbageCollect(rec.version);
      counters->DropBelow(rec.version);
      break;
    case WalRecordType::kSeqReserve:
      if (rec.seq > state->seq_floor) state->seq_floor = rec.seq;
      break;
  }
}

Result<RecoveredState> RecoverNodeState(const std::string& dir,
                                        VersionedStore* store,
                                        CounterTable* counters,
                                        Metrics* metrics) {
  auto t0 = std::chrono::steady_clock::now();
  RecoveredState state;

  uint64_t from_seg = 1;
  Result<CheckpointData> ckpt = LoadLatestCheckpoint(dir);
  if (ckpt.ok()) {
    state.vu = ckpt->vu;
    state.vr = ckpt->vr;
    state.seq_floor = ckpt->seq_floor;
    from_seg = ckpt->wal_segment;
    for (const auto& img : ckpt->store) {
      store->Seed(img.key, img.value, img.version);
    }
    for (const auto& row : ckpt->counters) {
      counters->Restore(row.version, row.r, row.c);
    }
    state.checkpoint_images = ckpt->store.size();
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();
  }

  uint64_t bytes = 0;
  Result<std::vector<WalRecord>> records =
      WriteAheadLog::ReadAll(dir, from_seg, &bytes);
  if (!records.ok()) return records.status();
  for (const WalRecord& rec : *records) {
    ApplyWalRecord(rec, store, counters, &state);
  }
  state.wal_records = records->size();
  state.wal_bytes = bytes;

  if (metrics != nullptr) {
    metrics->recoveries.fetch_add(1, std::memory_order_relaxed);
    metrics->recovery_replayed_bytes.fetch_add(
        static_cast<int64_t>(bytes), std::memory_order_relaxed);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    metrics->recovery_latency.Record(micros);
  }
  return state;
}

}  // namespace threev
