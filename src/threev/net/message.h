#ifndef THREEV_NET_MESSAGE_H_
#define THREEV_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "threev/common/ids.h"
#include "threev/common/status.h"
#include "threev/trace/trace_context.h"
#include "threev/txn/plan.h"

namespace threev {

// Every protocol data unit exchanged between endpoints (nodes, the
// advancement coordinator, remote clients). One tagged struct keeps the
// transports generic; unused fields stay empty.
enum class MsgType : uint8_t {
  // --- user transactions (Sections 4.1 / 4.2) ---
  kSubtxnRequest = 0,    // execute a subtransaction (root or descendant)
  kCompletionNotice,     // subtxn terminated: spawned ids + read results

  // --- version advancement (Section 4.3) ---
  kStartAdvancement,     // phase 1: new update version
  kStartAdvancementAck,
  kCounterRead,          // phases 2/4: read one wave of counters
  kCounterReadReply,
  kReadVersionAdvance,   // phase 3: new read version
  kReadVersionAdvanceAck,
  kGarbageCollect,       // phase 4 trailer
  kGarbageCollectAck,

  // --- NC3V / two-phase commit (Section 5) ---
  kPrepare,
  kVote,
  kDecision,             // flag=true commit / false abort
  kDecisionAck,
  kLockCleanup,          // release commute locks after tree completion

  // --- remote client protocol (TcpNet deployments) ---
  kClientSubmit,
  kClientResult,

  // --- protocol introspection (observability, DESIGN.md section 12) ---
  kAdminInspect,       // ask an endpoint for its protocol state
  kAdminInspectReply,  // stat map in `reads`, counter rows in counters_r/c
};

const char* MsgTypeName(MsgType type);

struct Message {
  MsgType type = MsgType::kSubtxnRequest;
  NodeId from = 0;

  TxnId txn = 0;
  SubtxnId subtxn = 0;
  SubtxnId parent_subtxn = 0;
  Version version = 0;
  // Generic sequence: advancement epoch for advancement messages, wave id
  // for counter reads, request id for client submissions.
  uint64_t seq = 0;
  // Generic flag: read_only for kSubtxnRequest; commit/abort for kDecision
  // and kVote; compensation marker on kSubtxnRequest.
  bool flag = false;
  uint8_t klass = 0;  // TxnClass of the owning transaction
  // Tracker endpoint (node that owns the completion bookkeeping for txn).
  NodeId origin = 0;

  // Causal trace context (all-zero when tracing is off). Carried on every
  // message and across the TCP wire so one transaction's or advancement's
  // spans chain across nodes; see src/threev/trace/.
  TraceContext trace;

  SubtxnPlan plan;  // kSubtxnRequest / kClientSubmit

  std::vector<SubtxnId> spawned;                      // kCompletionNotice
  std::vector<std::pair<std::string, Value>> reads;   // notice / result
  // kCounterReadReply: R row (peer -> count) and C column (source -> count)
  // for `version` at the replying node.
  std::vector<std::pair<NodeId, int64_t>> counters_r;
  std::vector<std::pair<NodeId, int64_t>> counters_c;

  StatusCode status_code = StatusCode::kOk;  // notice / vote / client result
  std::string status_msg;

  // Rough serialized size. SIM-ONLY accounting: the in-process transports
  // (SimNet, ThreadNet) charge this estimate to Metrics::bytes_sent because
  // nothing ever hits a wire there. TcpNet does NOT use it - it counts the
  // real encoded frame size (header included) at send time, so bytes_sent
  // on the TCP transport is exact bytes-on-the-wire. The two figures are
  // close but not comparable digit-for-digit.
  size_t ApproxBytes() const;

  std::string ToString() const;  // one-line debug form
};

}  // namespace threev

#endif  // THREEV_NET_MESSAGE_H_
