#include "threev/net/wire.h"

#include <cstring>

namespace threev {

void WireWriter::U8(uint8_t v) { buf_.push_back(v); }

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::string WireReader::Str() {
  uint32_t n = U32();
  if (!Need(n)) return "";
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

namespace {

void EncodeValue(WireWriter& w, const Value& v) {
  w.I64(v.num);
  w.U32(static_cast<uint32_t>(v.ids.size()));
  for (uint64_t id : v.ids) w.U64(id);
  w.Str(v.str);
}

Value DecodeValue(WireReader& r) {
  Value v;
  v.num = r.I64();
  uint32_t n = r.U32();
  // Defensive bound: a malformed length must not cause a huge allocation.
  if (n > (1u << 24)) n = 0;
  v.ids.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.ids.push_back(r.U64());
  v.str = r.Str();
  return v;
}

void EncodePlan(WireWriter& w, const SubtxnPlan& plan) {
  w.U32(plan.node);
  w.U32(static_cast<uint32_t>(plan.ops.size()));
  for (const auto& op : plan.ops) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.Str(op.key);
    w.I64(op.arg);
    w.Str(op.payload);
  }
  w.U32(static_cast<uint32_t>(plan.children.size()));
  for (const auto& c : plan.children) EncodePlan(w, c);
}

SubtxnPlan DecodePlan(WireReader& r, int depth = 0) {
  SubtxnPlan plan;
  if (depth > 64) return plan;  // malformed recursion guard
  plan.node = r.U32();
  uint32_t nops = r.U32();
  if (nops > (1u << 20)) nops = 0;
  plan.ops.reserve(nops);
  for (uint32_t i = 0; i < nops && r.ok(); ++i) {
    Operation op;
    op.kind = static_cast<OpKind>(r.U8());
    op.key = r.Str();
    op.arg = r.I64();
    op.payload = r.Str();
    plan.ops.push_back(std::move(op));
  }
  uint32_t nchildren = r.U32();
  if (nchildren > (1u << 16)) nchildren = 0;
  for (uint32_t i = 0; i < nchildren && r.ok(); ++i) {
    plan.children.push_back(DecodePlan(r, depth + 1));
  }
  return plan;
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(msg.type));
  w.U32(msg.from);
  w.U64(msg.txn);
  w.U64(msg.subtxn);
  w.U64(msg.parent_subtxn);
  w.U32(msg.version);
  w.U64(msg.seq);
  w.Bool(msg.flag);
  w.U8(msg.klass);
  w.U32(msg.origin);
  EncodePlan(w, msg.plan);
  w.U32(static_cast<uint32_t>(msg.spawned.size()));
  for (SubtxnId id : msg.spawned) w.U64(id);
  w.U32(static_cast<uint32_t>(msg.reads.size()));
  for (const auto& [key, value] : msg.reads) {
    w.Str(key);
    EncodeValue(w, value);
  }
  w.U32(static_cast<uint32_t>(msg.counters_r.size()));
  for (const auto& [node, count] : msg.counters_r) {
    w.U32(node);
    w.I64(count);
  }
  w.U32(static_cast<uint32_t>(msg.counters_c.size()));
  for (const auto& [node, count] : msg.counters_c) {
    w.U32(node);
    w.I64(count);
  }
  w.U8(static_cast<uint8_t>(msg.status_code));
  w.Str(msg.status_msg);
  return w.Take();
}

Result<Message> DecodeMessage(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  Message msg;
  msg.type = static_cast<MsgType>(r.U8());
  msg.from = r.U32();
  msg.txn = r.U64();
  msg.subtxn = r.U64();
  msg.parent_subtxn = r.U64();
  msg.version = r.U32();
  msg.seq = r.U64();
  msg.flag = r.Bool();
  msg.klass = r.U8();
  msg.origin = r.U32();
  msg.plan = DecodePlan(r);
  uint32_t nspawned = r.U32();
  if (nspawned > (1u << 20)) nspawned = 0;
  for (uint32_t i = 0; i < nspawned && r.ok(); ++i) {
    msg.spawned.push_back(r.U64());
  }
  uint32_t nreads = r.U32();
  if (nreads > (1u << 20)) nreads = 0;
  for (uint32_t i = 0; i < nreads && r.ok(); ++i) {
    std::string key = r.Str();
    msg.reads.emplace_back(std::move(key), DecodeValue(r));
  }
  uint32_t nr = r.U32();
  if (nr > (1u << 20)) nr = 0;
  for (uint32_t i = 0; i < nr && r.ok(); ++i) {
    NodeId node = r.U32();
    int64_t count = r.I64();
    msg.counters_r.emplace_back(node, count);
  }
  uint32_t nc = r.U32();
  if (nc > (1u << 20)) nc = 0;
  for (uint32_t i = 0; i < nc && r.ok(); ++i) {
    NodeId node = r.U32();
    int64_t count = r.I64();
    msg.counters_c.emplace_back(node, count);
  }
  msg.status_code = static_cast<StatusCode>(r.U8());
  msg.status_msg = r.Str();
  if (!r.ok()) return Status::IoError("truncated message");
  if (!r.AtEnd()) return Status::IoError("trailing bytes in message");
  return msg;
}

}  // namespace threev
