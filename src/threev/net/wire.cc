#include "threev/net/wire.h"

#include <algorithm>
#include <cstring>

namespace threev {

bool WireReader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  const uint8_t* p = data_ + pos_;
  v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
      static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
  pos_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  const uint8_t* p = data_ + pos_;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string WireReader::Str() {
  uint32_t n = U32();
  if (!Need(n)) return "";
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

namespace {

void EncodeValue(WireWriter& w, const Value& v) {
  w.I64(v.num);
  w.U32(static_cast<uint32_t>(v.ids.size()));
  for (uint64_t id : v.ids) w.U64(id);
  w.Str(v.str);
}

Value DecodeValue(WireReader& r) {
  Value v;
  v.num = r.I64();
  uint32_t n = r.U32();
  // Allocation bound: each id takes 8 bytes on the wire, so a count the
  // remaining frame cannot hold is malformed - reserve at most what could
  // actually be present, and let the read loop fail on truncation.
  v.ids.reserve(std::min<size_t>(n, r.remaining() / 8));
  for (uint32_t i = 0; i < n && r.ok(); ++i) v.ids.push_back(r.U64());
  v.str = r.Str();
  return v;
}

void EncodePlan(WireWriter& w, const SubtxnPlan& plan) {
  w.U32(plan.node);
  w.U32(static_cast<uint32_t>(plan.ops.size()));
  for (const auto& op : plan.ops) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.Str(op.key);
    w.I64(op.arg);
    w.Str(op.payload);
  }
  w.U32(static_cast<uint32_t>(plan.children.size()));
  for (const auto& c : plan.children) EncodePlan(w, c);
}

SubtxnPlan DecodePlan(WireReader& r, int depth = 0) {
  SubtxnPlan plan;
  if (depth > 64) return plan;  // malformed recursion guard
  plan.node = r.U32();
  uint32_t nops = r.U32();
  // Minimum encoded op: kind(1) + key len(4) + arg(8) + payload len(4).
  plan.ops.reserve(std::min<size_t>(nops, r.remaining() / 17));
  for (uint32_t i = 0; i < nops && r.ok(); ++i) {
    Operation op;
    op.kind = static_cast<OpKind>(r.U8());
    op.key = r.Str();
    op.arg = r.I64();
    op.payload = r.Str();
    plan.ops.push_back(std::move(op));
  }
  uint32_t nchildren = r.U32();
  // Minimum encoded child plan: node(4) + nops(4) + nchildren(4).
  plan.children.reserve(std::min<size_t>(nchildren, r.remaining() / 12));
  for (uint32_t i = 0; i < nchildren && r.ok(); ++i) {
    plan.children.push_back(DecodePlan(r, depth + 1));
  }
  return plan;
}

size_t EncodedPlanSize(const SubtxnPlan& plan) {
  size_t n = 4 + 4 + 4;  // node + op count + child count
  for (const auto& op : plan.ops) {
    n += 1 + 4 + op.key.size() + 8 + 4 + op.payload.size();
  }
  for (const auto& c : plan.children) n += EncodedPlanSize(c);
  return n;
}

}  // namespace

size_t EncodedMessageSize(const Message& msg) {
  // 71 fixed header bytes (type..origin + 24-byte TraceContext) +
  // status_code + status_msg length prefix. TcpNet writes this as the frame
  // length, so it must be exact.
  size_t n = 71 + 1 + 4;
  n += EncodedPlanSize(msg.plan);
  n += 4 + 8 * msg.spawned.size();
  n += 4;
  for (const auto& [key, value] : msg.reads) {
    n += 4 + key.size() + 8 + 4 + 8 * value.ids.size() + 4 + value.str.size();
  }
  n += 4 + 12 * msg.counters_r.size();
  n += 4 + 12 * msg.counters_c.size();
  n += msg.status_msg.size();
  return n;
}

void EncodeMessageTo(WireWriter& w, const Message& msg) {
  // Exact-size pre-pass: the walk below touches only lengths (no payload
  // bytes), and makes the encode itself a single allocation - or none at
  // all when the buffer is a reused one that has already grown to size.
  w.Reserve(EncodedMessageSize(msg));
  w.U8(static_cast<uint8_t>(msg.type));
  w.U32(msg.from);
  w.U64(msg.txn);
  w.U64(msg.subtxn);
  w.U64(msg.parent_subtxn);
  w.U32(msg.version);
  w.U64(msg.seq);
  w.Bool(msg.flag);
  w.U8(msg.klass);
  w.U32(msg.origin);
  w.U64(msg.trace.trace_id);
  w.U64(msg.trace.span_id);
  w.U64(msg.trace.parent_span_id);
  EncodePlan(w, msg.plan);
  w.U32(static_cast<uint32_t>(msg.spawned.size()));
  for (SubtxnId id : msg.spawned) w.U64(id);
  w.U32(static_cast<uint32_t>(msg.reads.size()));
  for (const auto& [key, value] : msg.reads) {
    w.Str(key);
    EncodeValue(w, value);
  }
  w.U32(static_cast<uint32_t>(msg.counters_r.size()));
  for (const auto& [node, count] : msg.counters_r) {
    w.U32(node);
    w.I64(count);
  }
  w.U32(static_cast<uint32_t>(msg.counters_c.size()));
  for (const auto& [node, count] : msg.counters_c) {
    w.U32(node);
    w.I64(count);
  }
  w.U8(static_cast<uint8_t>(msg.status_code));
  w.Str(msg.status_msg);
}

void EncodeMessageInto(const Message& msg, std::vector<uint8_t>* out) {
  WireWriter w(out);
  EncodeMessageTo(w, msg);
}

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  std::vector<uint8_t> out;
  EncodeMessageInto(msg, &out);
  return out;
}

Result<Message> DecodeMessage(const uint8_t* data, size_t size) {
  WireReader r(data, size);
  Message msg;
  msg.type = static_cast<MsgType>(r.U8());
  msg.from = r.U32();
  msg.txn = r.U64();
  msg.subtxn = r.U64();
  msg.parent_subtxn = r.U64();
  msg.version = r.U32();
  msg.seq = r.U64();
  msg.flag = r.Bool();
  msg.klass = r.U8();
  msg.origin = r.U32();
  msg.trace.trace_id = r.U64();
  msg.trace.span_id = r.U64();
  msg.trace.parent_span_id = r.U64();
  msg.plan = DecodePlan(r);
  uint32_t nspawned = r.U32();
  msg.spawned.reserve(std::min<size_t>(nspawned, r.remaining() / 8));
  for (uint32_t i = 0; i < nspawned && r.ok(); ++i) {
    msg.spawned.push_back(r.U64());
  }
  uint32_t nreads = r.U32();
  // Minimum encoded read: key len(4) + num(8) + ids len(4) + str len(4).
  msg.reads.reserve(std::min<size_t>(nreads, r.remaining() / 20));
  for (uint32_t i = 0; i < nreads && r.ok(); ++i) {
    std::string key = r.Str();
    msg.reads.emplace_back(std::move(key), DecodeValue(r));
  }
  uint32_t nr = r.U32();
  msg.counters_r.reserve(std::min<size_t>(nr, r.remaining() / 12));
  for (uint32_t i = 0; i < nr && r.ok(); ++i) {
    NodeId node = r.U32();
    int64_t count = r.I64();
    msg.counters_r.emplace_back(node, count);
  }
  uint32_t nc = r.U32();
  msg.counters_c.reserve(std::min<size_t>(nc, r.remaining() / 12));
  for (uint32_t i = 0; i < nc && r.ok(); ++i) {
    NodeId node = r.U32();
    int64_t count = r.I64();
    msg.counters_c.emplace_back(node, count);
  }
  msg.status_code = static_cast<StatusCode>(r.U8());
  msg.status_msg = r.Str();
  if (!r.ok()) return Status::IoError("truncated message");
  if (!r.AtEnd()) return Status::IoError("trailing bytes in message");
  return msg;
}

}  // namespace threev
