#ifndef THREEV_NET_NETWORK_H_
#define THREEV_NET_NETWORK_H_

#include <functional>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/net/message.h"

namespace threev {

// Invoked when a message arrives at an endpoint. Handlers may be invoked
// concurrently from multiple threads (ThreadNet/TcpNet); endpoints protect
// their own state.
using MessageHandler = std::function<void(const Message&)>;

// Transport abstraction. Three implementations:
//   SimNet    - deterministic discrete-event simulation (virtual time).
//   ThreadNet - one mailbox thread per endpoint, real time.
//   TcpNet    - one process per endpoint, length-prefixed frames over TCP.
//
// Contract, relied on by the protocol code:
//  * Send() never executes the destination handler synchronously in the
//    caller's stack (no re-entrancy; a node may Send to itself).
//  * Channels are FIFO per (from, to) pair. The compensation model
//    (Section 3.2) and the completion-notice bookkeeping do not strictly
//    require FIFO, but the Table 1 replay and several tests do.
//  * Messages are never duplicated, and never lost while both endpoints
//    stay up (the paper assumes a reliable network). Crash faults are
//    injected via SetEndpointUp: messages to a down endpoint - including
//    ones already in flight when it went down - are silently dropped, so
//    protocol layers that must survive crashes retransmit (see DESIGN.md
//    section 9).
class Network {
 public:
  virtual ~Network() = default;

  // Registers the handler for endpoint `id`. Must be called before any
  // traffic to that endpoint. Not thread-safe vs. Send. Re-registering an
  // id replaces the handler (a restarted node takes over its endpoint).
  virtual void RegisterEndpoint(NodeId id, MessageHandler handler) = 0;

  // Crash-fault injection: while an endpoint is down, sends to it are
  // dropped immediately and messages already in flight are discarded at
  // delivery time - they are never queued for the next incarnation.
  // Default is a no-op (transports without fault support deliver normally).
  virtual void SetEndpointUp(NodeId id, bool up) { (void)id; (void)up; }
  virtual bool EndpointUp(NodeId id) const { (void)id; return true; }

  // Sends `msg` (whose `from` field identifies the sender) to `to`.
  virtual void Send(NodeId to, Message msg) = 0;

  // Runs `fn` after `delay`, in a context where it is safe to call Send and
  // to touch endpoint state (endpoints use internal locking). Used for
  // coordinator polling and lock timeouts.
  virtual void ScheduleAfter(Micros delay, std::function<void()> fn) = 0;

  // Time source: virtual under SimNet, steady-clock otherwise.
  virtual Micros Now() const = 0;
};

}  // namespace threev

#endif  // THREEV_NET_NETWORK_H_
