#include "threev/net/message.h"

#include <sstream>

namespace threev {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kSubtxnRequest:
      return "SubtxnRequest";
    case MsgType::kCompletionNotice:
      return "CompletionNotice";
    case MsgType::kStartAdvancement:
      return "StartAdvancement";
    case MsgType::kStartAdvancementAck:
      return "StartAdvancementAck";
    case MsgType::kCounterRead:
      return "CounterRead";
    case MsgType::kCounterReadReply:
      return "CounterReadReply";
    case MsgType::kReadVersionAdvance:
      return "ReadVersionAdvance";
    case MsgType::kReadVersionAdvanceAck:
      return "ReadVersionAdvanceAck";
    case MsgType::kGarbageCollect:
      return "GarbageCollect";
    case MsgType::kGarbageCollectAck:
      return "GarbageCollectAck";
    case MsgType::kPrepare:
      return "Prepare";
    case MsgType::kVote:
      return "Vote";
    case MsgType::kDecision:
      return "Decision";
    case MsgType::kDecisionAck:
      return "DecisionAck";
    case MsgType::kLockCleanup:
      return "LockCleanup";
    case MsgType::kClientSubmit:
      return "ClientSubmit";
    case MsgType::kClientResult:
      return "ClientResult";
    case MsgType::kAdminInspect:
      return "AdminInspect";
    case MsgType::kAdminInspectReply:
      return "AdminInspectReply";
  }
  return "?";
}

namespace {
size_t PlanBytes(const SubtxnPlan& plan) {
  size_t n = 8;
  for (const auto& op : plan.ops) {
    n += 1 + 4 + op.key.size() + 8 + 4 + op.payload.size();
  }
  for (const auto& c : plan.children) n += PlanBytes(c);
  return n;
}
}  // namespace

size_t Message::ApproxBytes() const {
  // Fixed header fields, including the three u64 TraceContext ids.
  size_t n = 1 + 4 + 8 + 8 + 8 + 4 + 8 + 1 + 1 + 4 + 24;
  n += PlanBytes(plan);
  n += spawned.size() * 8;
  for (const auto& [key, value] : reads) {
    n += 4 + key.size() + value.ByteSize();
  }
  n += (counters_r.size() + counters_c.size()) * 12;
  n += 1 + status_msg.size();
  return n;
}

std::string Message::ToString() const {
  std::ostringstream os;
  os << MsgTypeName(type) << "{from=" << from;
  if (txn) os << " txn=" << txn;
  if (subtxn) os << " subtxn=" << subtxn;
  os << " v=" << version;
  if (flag) os << " flag";
  os << "}";
  return os.str();
}

}  // namespace threev
