#ifndef THREEV_NET_SIM_NET_H_
#define THREEV_NET_SIM_NET_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "threev/common/random.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/sim/event_loop.h"
#include "threev/trace/trace.h"

namespace threev {

struct SimNetOptions {
  uint64_t seed = 1;
  // One-way delivery delay = min_delay + Exponential(mean_extra_delay).
  Micros min_delay = 200;
  Micros mean_extra_delay = 300;
  // Enforce per-(from,to) FIFO delivery (delays never reorder a channel).
  bool fifo_channels = true;
  // Manual mode: messages are held in a pending list until the test calls
  // Deliver()/DeliverAll(). Used by the Table 1 replay to reproduce the
  // paper's exact interleaving.
  bool manual = false;
  // Observability: records kMsgSend/kMsgRecv instants carrying each
  // message's trace context. Unowned, may be null.
  Tracer* tracer = nullptr;
};

// Deterministic discrete-event network. All endpoints run inside one
// EventLoop; a whole multi-node cluster simulates on one OS thread.
//
// Concurrency model (thread-safety-annotation pass): single-threaded by
// construction - Send/ScheduleAfter/Deliver all run from EventLoop
// callbacks on the driving thread, so this class deliberately has no mutex
// and no GUARDED_BY members. The node/coordinator locks it calls into are
// uncontended here; tools/threev_lint.py's nondeterminism rule (no wall
// clocks, no ambient randomness) is what protects this file's determinism
// instead.
class SimNet : public Network {
 public:
  explicit SimNet(SimNetOptions options = {}, Metrics* metrics = nullptr);

  void RegisterEndpoint(NodeId id, MessageHandler handler) override;
  void Send(NodeId to, Message msg) override;
  void ScheduleAfter(Micros delay, std::function<void()> fn) override;
  Micros Now() const override { return loop_.Now(); }

  // Crash-fault injection. Bringing an endpoint down drops new sends to it
  // immediately and discards in-flight messages at delivery time; bringing
  // it back up starts a new incarnation, so messages sent to the previous
  // incarnation stay dead even if their delivery time is still ahead.
  void SetEndpointUp(NodeId id, bool up) override;
  bool EndpointUp(NodeId id) const override;

  // Test hook invoked just before each message is dispatched to its
  // handler (after liveness filtering). The tap may itself call
  // SetEndpointUp(to, false) to model a crash triggered by this exact
  // message: liveness is re-checked after the tap, so the message is then
  // dropped instead of delivered. Pass nullptr to clear.
  using DeliveryTap = std::function<void(NodeId to, const Message& msg)>;
  void SetDeliveryTap(DeliveryTap tap) { tap_ = std::move(tap); }

  // Schedule-exploration fault injection (fuzz subsystem, DESIGN.md
  // section 13). Consulted once per automatic-mode Send, after liveness
  // filtering: the injector may silently lose the message, stretch its
  // delivery delay, or exempt it from the per-channel FIFO clamp (the
  // channel watermark is neither consulted nor advanced, so one bypassed
  // message can overtake - or be overtaken by - its channel neighbours
  // while everything else stays FIFO). Pass nullptr to clear. Decisions
  // must be deterministic functions of the message stream for runs to stay
  // bit-reproducible.
  struct FaultDecision {
    bool drop = false;
    Micros extra_delay = 0;
    bool bypass_fifo = false;
  };
  using FaultInjector = std::function<FaultDecision(NodeId to, const Message&)>;
  void SetFaultInjector(FaultInjector injector) {
    injector_ = std::move(injector);
  }

  EventLoop& loop() { return loop_; }

  // --- manual mode ---------------------------------------------------

  struct PendingMessage {
    uint64_t id;
    NodeId to;
    Message msg;
    // Destination incarnation at send time; a held message is discarded at
    // Deliver if the endpoint died (or died and revived) in the interim.
    uint64_t sent_incarnation = 0;
  };

  // Messages currently held (manual mode only), in send order.
  std::vector<PendingMessage> Pending() const;

  // Delivers one held message now. Returns false if the id is unknown.
  bool Deliver(uint64_t id);

  // Delivers the oldest held message matching (from, to, type); any field
  // can be wildcarded with -1. Returns the delivered message id or 0.
  uint64_t DeliverMatching(int from, int to, int type);

  // Delivers all held messages in send order (repeatedly, until none).
  void DeliverAll();

  size_t pending_count() const { return held_.size(); }

 private:
  struct Liveness {
    bool up = true;
    uint64_t incarnation = 0;
  };

  void DispatchNow(NodeId to, Message msg, uint64_t sent_incarnation);
  bool DeliverableTo(NodeId to, uint64_t sent_incarnation) const;
  void DropMessage();

  SimNetOptions options_;
  Metrics* metrics_;  // unowned, may be null
  EventLoop loop_;
  Rng rng_;
  std::unordered_map<NodeId, MessageHandler> handlers_;
  std::unordered_map<NodeId, Liveness> liveness_;
  DeliveryTap tap_;
  FaultInjector injector_;
  // Per-channel watermark for FIFO enforcement: (from<<32|to) -> last
  // scheduled delivery time.
  std::unordered_map<uint64_t, Micros> channel_watermark_;
  // Manual mode.
  uint64_t next_held_id_ = 1;
  std::map<uint64_t, PendingMessage> held_;
};

}  // namespace threev

#endif  // THREEV_NET_SIM_NET_H_
