#include "threev/net/sim_net.h"

#include "threev/common/logging.h"

namespace threev {

SimNet::SimNet(SimNetOptions options, Metrics* metrics)
    : options_(options), metrics_(metrics), rng_(options.seed) {}

void SimNet::RegisterEndpoint(NodeId id, MessageHandler handler) {
  handlers_[id] = std::move(handler);
  liveness_.try_emplace(id);  // starts up, incarnation 0
}

void SimNet::SetEndpointUp(NodeId id, bool up) {
  Liveness& l = liveness_[id];
  if (l.up == up) return;
  l.up = up;
  // A revival is a new incarnation: messages addressed to the previous one
  // are dead even if their delivery event has not fired yet.
  if (up) ++l.incarnation;
}

bool SimNet::EndpointUp(NodeId id) const {
  auto it = liveness_.find(id);
  return it == liveness_.end() || it->second.up;
}

bool SimNet::DeliverableTo(NodeId to, uint64_t sent_incarnation) const {
  auto it = liveness_.find(to);
  if (it == liveness_.end()) return true;
  return it->second.up && it->second.incarnation == sent_incarnation;
}

void SimNet::DropMessage() {
  if (metrics_ != nullptr) {
    metrics_->messages_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void SimNet::DispatchNow(NodeId to, Message msg, uint64_t sent_incarnation) {
  if (!DeliverableTo(to, sent_incarnation)) {
    DropMessage();
    return;
  }
  if (tap_) {
    tap_(to, msg);
    // The tap may have killed the destination; this message dies with it.
    if (!DeliverableTo(to, sent_incarnation)) {
      DropMessage();
      return;
    }
  }
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant(Now(), to, TraceOp::kMsgRecv, msg.trace,
                             static_cast<uint8_t>(msg.type));
  }
  auto it = handlers_.find(to);
  THREEV_CHECK(it != handlers_.end()) << "no endpoint " << to;
  it->second(msg);
}

void SimNet::Send(NodeId to, Message msg) {
  if (metrics_ != nullptr) {
    metrics_->messages_sent.fetch_add(1, std::memory_order_relaxed);
    metrics_->bytes_sent.fetch_add(static_cast<int64_t>(msg.ApproxBytes()),
                                   std::memory_order_relaxed);
  }
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant(Now(), msg.from, TraceOp::kMsgSend, msg.trace,
                             static_cast<uint8_t>(msg.type));
  }
  uint64_t incarnation = 0;
  if (auto it = liveness_.find(to); it != liveness_.end()) {
    if (!it->second.up) {
      DropMessage();
      return;
    }
    incarnation = it->second.incarnation;
  }
  if (options_.manual) {
    uint64_t id = next_held_id_++;
    held_.emplace(id, PendingMessage{id, to, std::move(msg), incarnation});
    return;
  }
  FaultDecision fault;
  if (injector_) fault = injector_(to, msg);
  if (fault.drop) {
    if (metrics_ != nullptr) {
      metrics_->fault_injected_drops.fetch_add(1, std::memory_order_relaxed);
    }
    DropMessage();
    return;
  }
  Micros delay = options_.min_delay +
                 static_cast<Micros>(
                     rng_.Exponential(static_cast<double>(
                         options_.mean_extra_delay > 0
                             ? options_.mean_extra_delay
                             : 1)));
  if (options_.mean_extra_delay == 0) delay = options_.min_delay;
  if (fault.extra_delay > 0) {
    delay += fault.extra_delay;
    if (metrics_ != nullptr) {
      metrics_->fault_injected_delays.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Micros when = loop_.Now() + delay;
  if (options_.fifo_channels && !fault.bypass_fifo) {
    uint64_t channel = (static_cast<uint64_t>(msg.from) << 32) | to;
    Micros& watermark = channel_watermark_[channel];
    if (when <= watermark) when = watermark + 1;
    watermark = when;
  }
  loop_.ScheduleAt(when, [this, to, incarnation, m = std::move(msg)]() mutable {
    DispatchNow(to, std::move(m), incarnation);
  });
}

void SimNet::ScheduleAfter(Micros delay, std::function<void()> fn) {
  loop_.ScheduleAfter(delay, std::move(fn));
}

std::vector<SimNet::PendingMessage> SimNet::Pending() const {
  std::vector<PendingMessage> out;
  out.reserve(held_.size());
  for (const auto& [id, pm] : held_) out.push_back(pm);
  return out;
}

bool SimNet::Deliver(uint64_t id) {
  auto it = held_.find(id);
  if (it == held_.end()) return false;
  PendingMessage pm = std::move(it->second);
  held_.erase(it);
  DispatchNow(pm.to, std::move(pm.msg), pm.sent_incarnation);
  return true;
}

uint64_t SimNet::DeliverMatching(int from, int to, int type) {
  for (auto& [id, pm] : held_) {
    if ((from < 0 || pm.msg.from == static_cast<NodeId>(from)) &&
        (to < 0 || pm.to == static_cast<NodeId>(to)) &&
        (type < 0 || pm.msg.type == static_cast<MsgType>(type))) {
      uint64_t found = id;
      Deliver(found);
      return found;
    }
  }
  return 0;
}

void SimNet::DeliverAll() {
  while (!held_.empty()) {
    Deliver(held_.begin()->first);
  }
}

}  // namespace threev
