#ifndef THREEV_NET_THREAD_NET_H_
#define THREEV_NET_THREAD_NET_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/mutex.h"
#include "threev/common/queue.h"
#include "threev/common/thread_annotations.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/trace/trace.h"

namespace threev {

struct ThreadNetOptions {
  // Artificial per-message delivery delay (real sleep before enqueue at the
  // destination mailbox, applied on the timer thread so senders never
  // block). 0 = deliver immediately.
  Micros delivery_delay = 0;
  // Worker threads per endpoint mailbox. The default of 1 preserves the
  // serialized-handler contract that Node relies on. Values > 1 run the
  // endpoint's handler concurrently from several workers - only valid for
  // handlers that are themselves thread-safe (e.g. load generators or
  // fan-out sinks in benchmarks), never for a Node endpoint.
  int workers_per_endpoint = 1;
  // Observability: records kMsgSend/kMsgRecv instants carrying each
  // message's trace context. Unowned, may be null.
  Tracer* tracer = nullptr;
};

// One mailbox + worker thread per endpoint; a dedicated timer thread serves
// ScheduleAfter and delayed deliveries. Real concurrency on real threads -
// used by stress/integration tests to shake out races, and as the engine
// room of the TcpNet gateway.
class ThreadNet : public Network {
 public:
  explicit ThreadNet(ThreadNetOptions options = {}, Metrics* metrics = nullptr);
  ~ThreadNet() override;

  ThreadNet(const ThreadNet&) = delete;
  ThreadNet& operator=(const ThreadNet&) = delete;

  void RegisterEndpoint(NodeId id, MessageHandler handler) override;
  void Send(NodeId to, Message msg) override;
  void ScheduleAfter(Micros delay, std::function<void()> fn) override
      EXCLUDES(timer_mu_);
  Micros Now() const override;

  // Starts worker threads. Call after all endpoints are registered.
  void Start();

  // Drains mailboxes and joins all threads. Safe to call twice (and from
  // a different thread than Start's caller - the flags are atomic).
  void Stop() EXCLUDES(timer_mu_);

 private:
  struct Endpoint {
    MessageHandler handler;
    BlockingQueue<Message> mailbox;
    std::vector<std::thread> workers;
  };

  void TimerLoop() EXCLUDES(timer_mu_);

  ThreadNetOptions options_;
  Metrics* metrics_;  // unowned, may be null
  // Written only before Start(); read-only (and thus lock-free) afterwards.
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Timer state.
  Mutex timer_mu_;
  CondVar timer_cv_;
  std::multimap<Micros, std::function<void()>> timers_ GUARDED_BY(timer_mu_);
  bool timer_stop_ GUARDED_BY(timer_mu_) = false;
  std::thread timer_thread_;
};

}  // namespace threev

#endif  // THREEV_NET_THREAD_NET_H_
