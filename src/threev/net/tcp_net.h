#ifndef THREEV_NET_TCP_NET_H_
#define THREEV_NET_TCP_NET_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "threev/common/mutex.h"
#include "threev/common/queue.h"
#include "threev/common/thread_annotations.h"
#include "threev/metrics/metrics.h"
#include "threev/net/network.h"
#include "threev/net/wire.h"
#include "threev/trace/trace.h"

namespace threev {

struct TcpNetOptions {
  // Endpoint id -> "host:port". Endpoints co-located in one process share
  // that process's address. Every process lists the full map.
  std::map<NodeId, std::string> peers;
  // Port this process listens on (the port in `peers` for local endpoints).
  uint16_t listen_port = 0;
  // How long Send() keeps retrying the initial connection to a peer that
  // has not started yet.
  Micros connect_timeout = 10'000'000;
  // Observability: records kMsgSend/kMsgRecv instants carrying each
  // message's trace context. Unowned, may be null.
  Tracer* tracer = nullptr;
};

// TCP transport for genuine multi-process deployments ("manual networking
// plumbing"). Frame format: u32 length, u32 destination endpoint id
// (little-endian), EncodeMessage payload. Each accepted connection gets a
// reader thread; inbound messages are dispatched on a per-process
// dispatcher thread so handler execution is serialized the same way as
// ThreadNet mailboxes.
//
// Outbound frames use a combining flush per connection: senders enqueue an
// encoded frame under the connection's lock, and whichever sender finds
// the connection idle becomes the flusher, draining every queued frame
// into a single scatter-gather syscall. Concurrent senders to one peer
// coalesce instead of serializing on a process-wide write lock, and the
// frame buffers recycle through an EncodeBufferPool so steady-state sends
// do not allocate.
class TcpNet : public Network {
 public:
  explicit TcpNet(TcpNetOptions options, Metrics* metrics = nullptr);
  ~TcpNet() override;

  TcpNet(const TcpNet&) = delete;
  TcpNet& operator=(const TcpNet&) = delete;

  void RegisterEndpoint(NodeId id, MessageHandler handler) override;
  void Send(NodeId to, Message msg) override EXCLUDES(conn_mu_);
  void ScheduleAfter(Micros delay, std::function<void()> fn) override
      EXCLUDES(timer_mu_);
  Micros Now() const override;

  // Binds the listen socket and starts accept/dispatch/timer threads.
  Status Start();
  void Stop() EXCLUDES(timer_mu_, conn_mu_, readers_mu_);

 private:
  struct Inbound {
    NodeId to;
    Message msg;
  };

  // One outbound TCP connection. `pending` holds fully framed buffers
  // (header + payload); `flushing` marks that some sender is draining the
  // queue, so others just enqueue and leave.
  struct Conn {
    int fd = -1;
    Mutex mu;
    std::vector<std::vector<uint8_t>> pending GUARDED_BY(mu);
    bool flushing GUARDED_BY(mu) = false;
  };

  void AcceptLoop() EXCLUDES(readers_mu_);
  void ReaderLoop(int fd);
  void DispatchLoop();
  void TimerLoop() EXCLUDES(timer_mu_);
  // Returns the cached (or freshly established) connection to `to`.
  std::shared_ptr<Conn> ConnectionTo(NodeId to) EXCLUDES(conn_mu_);
  // Drains conn->pending with sendmsg() until another flusher takes over
  // or the queue is empty. Called by the sender that set `flushing`.
  void FlushConn(const std::shared_ptr<Conn>& conn, NodeId to)
      EXCLUDES(conn_mu_);
  // Closes and forgets a broken connection (if still current).
  void DropConn(NodeId to, const std::shared_ptr<Conn>& conn)
      EXCLUDES(conn_mu_);

  TcpNetOptions options_;
  Metrics* metrics_;
  std::unordered_map<NodeId, MessageHandler> handlers_;

  std::atomic<bool> stopping_{false};
  // Atomic: Stop() closes-and-invalidates while AcceptLoop reads it for
  // accept(); a plain int would race the two threads.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  Mutex readers_mu_;
  std::vector<std::thread> reader_threads_ GUARDED_BY(readers_mu_);
  // Shut down in Stop() to unblock readers.
  std::vector<int> accepted_fds_ GUARDED_BY(readers_mu_);

  BlockingQueue<Inbound> inbound_;
  std::thread dispatch_thread_;

  Mutex conn_mu_;
  std::unordered_map<NodeId, std::shared_ptr<Conn>> connections_
      GUARDED_BY(conn_mu_);
  // Recycles encoded frame buffers across sends.
  EncodeBufferPool frame_pool_;

  Mutex timer_mu_;
  CondVar timer_cv_;
  std::multimap<Micros, std::function<void()>> timers_ GUARDED_BY(timer_mu_);
  bool timer_stop_ GUARDED_BY(timer_mu_) = false;
  std::thread timer_thread_;
};

}  // namespace threev

#endif  // THREEV_NET_TCP_NET_H_
