#ifndef THREEV_NET_WIRE_H_
#define THREEV_NET_WIRE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "threev/common/mutex.h"
#include "threev/common/status.h"
#include "threev/common/thread_annotations.h"
#include "threev/net/message.h"

namespace threev {

// Little-endian binary writer for the TCP wire format. Simple and
// self-describing enough for a homogeneous deployment: fields are written
// in a fixed order per message type; strings/vectors are length-prefixed.
//
// Fixed-width integers are appended as a single resize + store (not one
// push_back per byte), so the encode hot path is a handful of bulk writes.
// The writer can either own its buffer or append into a caller-provided
// vector, which lets callers reuse encode capacity across messages (see
// EncodeMessageInto / EncodeBufferPool).
class WireWriter {
 public:
  WireWriter() : buf_(&owned_) {}
  // Appends into `*buf` (cleared first), reusing its capacity. The caller
  // keeps ownership; Take() must not be used in this mode.
  explicit WireWriter(std::vector<uint8_t>* buf) : buf_(buf) { buf_->clear(); }

  ~WireWriter() {
    if (!taken_) Finish();
  }
  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  void U8(uint8_t v) { *Grow(1) = v; }
  void U32(uint32_t v) {
    uint8_t* p = Grow(4);
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  }
  void U64(uint64_t v) {
    uint8_t* p = Grow(8);
    for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    if (!s.empty()) std::memcpy(Grow(s.size()), s.data(), s.size());
  }

  // Pre-grows storage for `n` more bytes, making every following append a
  // raw store (use with an exact size pre-pass, see EncodedMessageSize).
  void Reserve(size_t n) {
    if (buf_->size() < pos_ + n) buf_->resize(pos_ + n);
  }

  // Trims the underlying vector to the bytes actually written. Called
  // automatically by Take() and the destructor.
  void Finish() { buf_->resize(pos_); }

  const std::vector<uint8_t>& buffer() {
    Finish();
    return *buf_;
  }
  std::vector<uint8_t> Take() {
    Finish();
    taken_ = true;
    return std::move(*buf_);
  }

 private:
  // The writer appends through a position cursor and keeps the vector
  // over-sized while writing: one doubling grow amortizes all appends and
  // there is no per-field size bookkeeping. Finish() trims - cheap for a
  // trivially-destructible element type.
  uint8_t* Grow(size_t n) {
    if (buf_->size() < pos_ + n) {
      buf_->resize(std::max(buf_->size() * 2, pos_ + n));
    }
    uint8_t* p = buf_->data() + pos_;
    pos_ += n;
    return p;
  }

  std::vector<uint8_t>* buf_;
  std::vector<uint8_t> owned_;
  size_t pos_ = 0;
  bool taken_ = false;
};

// Matching reader. All methods fail (set !ok()) on truncation instead of
// reading out of bounds; callers check ok() once at the end.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  std::string Str();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  // Bytes left to read. Decoders bound every length-prefixed reserve() by
  // remaining()/min-element-size so an attacker-controlled count can never
  // allocate more than the frame it arrived in could possibly hold.
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Serializes a Message (including its plan tree and all payloads).
std::vector<uint8_t> EncodeMessage(const Message& msg);

// Exact encoded size of `msg`, computed without encoding. EncodeMessage
// uses it to size its buffer in one step; TcpNet uses it for real
// bytes-on-the-wire accounting.
size_t EncodedMessageSize(const Message& msg);

// As EncodeMessage, but encodes into `*out` (cleared first), reusing its
// capacity. The steady-state encode path performs no allocation once the
// buffer has grown to the working message size.
void EncodeMessageInto(const Message& msg, std::vector<uint8_t>* out);

// Appends the encoded form of `msg` to an existing writer. Lets callers
// prefix transport framing (length/destination headers) and encode the
// payload into the same buffer with no copy.
void EncodeMessageTo(WireWriter& w, const Message& msg);

// Deserializes; fails on truncated or malformed input.
Result<Message> DecodeMessage(const uint8_t* data, size_t size);

// Bounded free-list of encode buffers, shared by sender threads. Acquire a
// buffer, EncodeMessageInto it, hand the frame to the socket, Release it
// back; capacity survives the round trip, so steady-state encoding does
// not allocate.
class EncodeBufferPool {
 public:
  explicit EncodeBufferPool(size_t max_buffers = 16)
      : max_buffers_(max_buffers) {}

  std::vector<uint8_t> Acquire() {
    MutexLock lock(mu_);
    if (free_.empty()) return {};
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void Release(std::vector<uint8_t> buf) {
    buf.clear();  // keep capacity, drop contents
    MutexLock lock(mu_);
    if (free_.size() < max_buffers_) free_.push_back(std::move(buf));
  }

 private:
  const size_t max_buffers_;
  Mutex mu_;
  std::vector<std::vector<uint8_t>> free_ GUARDED_BY(mu_);
};

}  // namespace threev

#endif  // THREEV_NET_WIRE_H_
