#ifndef THREEV_NET_WIRE_H_
#define THREEV_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "threev/common/status.h"
#include "threev/net/message.h"

namespace threev {

// Little-endian binary writer for the TCP wire format. Simple and
// self-describing enough for a homogeneous deployment: fields are written
// in a fixed order per message type; strings/vectors are length-prefixed.
class WireWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Matching reader. All methods fail (set !ok()) on truncation instead of
// reading out of bounds; callers check ok() once at the end.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  std::string Str();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Serializes a Message (including its plan tree and all payloads).
std::vector<uint8_t> EncodeMessage(const Message& msg);

// Deserializes; fails on truncated or malformed input.
Result<Message> DecodeMessage(const uint8_t* data, size_t size);

}  // namespace threev

#endif  // THREEV_NET_WIRE_H_
