#include "threev/net/tcp_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "threev/common/logging.h"
#include "threev/net/wire.h"

namespace threev {

namespace {

// Parses "host:port"; host must be a dotted-quad (or "localhost").
bool ParseAddress(const std::string& addr, sockaddr_in* out) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  if (host == "localhost") host = "127.0.0.1";
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpNet::TcpNet(TcpNetOptions options, Metrics* metrics)
    : options_(std::move(options)), metrics_(metrics) {}

TcpNet::~TcpNet() { Stop(); }

Micros TcpNet::Now() const { return RealClock::Instance().Now(); }

void TcpNet::RegisterEndpoint(NodeId id, MessageHandler handler) {
  handlers_[id] = std::move(handler);
}

Status TcpNet::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind() failed on port " +
                           std::to_string(options_.listen_port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  timer_thread_ = std::thread([this] { TimerLoop(); });
  return Status::Ok();
}

void TcpNet::Stop() {
  if (stopping_.exchange(true)) return;
  {
    MutexLock lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    MutexLock lock(conn_mu_);
    for (auto& [id, fd] : connections_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    connections_.clear();
  }
  inbound_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (timer_thread_.joinable()) timer_thread_.join();
  {
    // Unblock readers parked in recv() on accepted connections.
    MutexLock lock(readers_mu_);
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  MutexLock lock(readers_mu_);
  for (auto& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpNet::AcceptLoop() {
  while (!stopping_.load()) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) break;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(readers_mu_);
    accepted_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { ReaderLoop(fd); });
  }
}

void TcpNet::ReaderLoop(int fd) {
  for (;;) {
    uint8_t header[8];
    if (!ReadAll(fd, header, sizeof(header))) break;
    uint32_t len, dest;
    std::memcpy(&len, header, 4);
    std::memcpy(&dest, header + 4, 4);
    if (len > (64u << 20)) break;  // oversized frame: drop connection
    std::vector<uint8_t> payload(len);
    if (!ReadAll(fd, payload.data(), len)) break;
    Result<Message> msg = DecodeMessage(payload.data(), payload.size());
    if (!msg.ok()) {
      THREEV_LOG(kWarn) << "dropping malformed frame: "
                        << msg.status().ToString();
      continue;
    }
    inbound_.Push(Inbound{dest, std::move(msg).value()});
  }
  ::close(fd);
}

void TcpNet::DispatchLoop() {
  while (auto item = inbound_.Pop()) {
    auto it = handlers_.find(item->to);
    if (it == handlers_.end()) {
      THREEV_LOG(kWarn) << "no local endpoint " << item->to;
      continue;
    }
    it->second(item->msg);
  }
}

int TcpNet::ConnectionTo(NodeId to) {
  {
    MutexLock lock(conn_mu_);
    auto it = connections_.find(to);
    if (it != connections_.end()) return it->second;
  }
  auto peer = options_.peers.find(to);
  if (peer == options_.peers.end()) return -1;
  sockaddr_in addr;
  if (!ParseAddress(peer->second, &addr)) return -1;

  Micros deadline = Now() + options_.connect_timeout;
  while (!stopping_.load() && Now() < deadline) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      MutexLock lock(conn_mu_);
      auto [it, inserted] = connections_.emplace(to, fd);
      if (!inserted) {
        ::close(fd);  // another thread raced us; use theirs
      }
      return it->second;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

void TcpNet::Send(NodeId to, Message msg) {
  if (metrics_ != nullptr) {
    metrics_->messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  // Local endpoint: skip the wire, but still go through the dispatcher so
  // the no-synchronous-delivery contract holds.
  if (handlers_.count(to) != 0) {
    inbound_.Push(Inbound{to, std::move(msg)});
    return;
  }
  std::vector<uint8_t> payload = EncodeMessage(msg);
  if (metrics_ != nullptr) {
    metrics_->bytes_sent.fetch_add(static_cast<int64_t>(payload.size() + 8),
                                   std::memory_order_relaxed);
  }
  int fd = ConnectionTo(to);
  if (fd < 0) {
    THREEV_LOG(kWarn) << "cannot reach endpoint " << to << ", dropping "
                      << MsgTypeName(msg.type);
    return;
  }
  uint8_t header[8];
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &to, 4);
  MutexLock lock(write_mu_);
  if (!WriteAll(fd, header, sizeof(header)) ||
      !WriteAll(fd, payload.data(), payload.size())) {
    THREEV_LOG(kWarn) << "write to endpoint " << to << " failed";
    MutexLock conn_lock(conn_mu_);
    auto it = connections_.find(to);
    if (it != connections_.end() && it->second == fd) {
      ::close(fd);
      connections_.erase(it);
    }
  }
}

void TcpNet::ScheduleAfter(Micros delay, std::function<void()> fn) {
  {
    MutexLock lock(timer_mu_);
    if (timer_stop_) return;
    timers_.emplace(Now() + delay, std::move(fn));
  }
  timer_cv_.notify_all();
}

void TcpNet::TimerLoop() {
  MutexLock lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    Micros next = timers_.begin()->first;
    Micros now = Now();
    if (now < next) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(next - now));
      continue;
    }
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace threev
