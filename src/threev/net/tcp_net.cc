#include "threev/net/tcp_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "threev/common/logging.h"
#include "threev/net/wire.h"

namespace threev {

namespace {

// Frames per sendmsg() call; keeps the iovec array on the stack and stays
// well under IOV_MAX everywhere.
constexpr size_t kMaxIov = 64;

// Parses "host:port"; host must be a dotted-quad (or "localhost").
bool ParseAddress(const std::string& addr, sockaddr_in* out) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = addr.substr(0, colon);
  int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  if (host == "localhost") host = "127.0.0.1";
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

// Fully writes a scatter-gather array, adjusting for partial sends.
bool SendAll(int fd, iovec* iov, size_t iovcnt) {
  while (iovcnt > 0) {
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = iovcnt;
    ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n <= 0) return false;
    size_t left = static_cast<size_t>(n);
    while (iovcnt > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (left > 0) {
      iov->iov_base = static_cast<uint8_t*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
  return true;
}

bool ReadAll(int fd, uint8_t* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpNet::TcpNet(TcpNetOptions options, Metrics* metrics)
    : options_(std::move(options)), metrics_(metrics) {}

TcpNet::~TcpNet() { Stop(); }

Micros TcpNet::Now() const { return RealClock::Instance().Now(); }

void TcpNet::RegisterEndpoint(NodeId id, MessageHandler handler) {
  handlers_[id] = std::move(handler);
}

Status TcpNet::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind() failed on port " +
                           std::to_string(options_.listen_port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  timer_thread_ = std::thread([this] { TimerLoop(); });
  return Status::Ok();
}

void TcpNet::Stop() {
  if (stopping_.exchange(true)) return;
  {
    MutexLock lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    MutexLock lock(conn_mu_);
    for (auto& [id, conn] : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
      ::close(conn->fd);
    }
    connections_.clear();
  }
  inbound_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (timer_thread_.joinable()) timer_thread_.join();
  {
    // Unblock readers parked in recv() on accepted connections.
    MutexLock lock(readers_mu_);
    for (int fd : accepted_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  MutexLock lock(readers_mu_);
  for (auto& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
}

void TcpNet::AcceptLoop() {
  while (!stopping_.load()) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) break;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(readers_mu_);
    accepted_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { ReaderLoop(fd); });
  }
}

void TcpNet::ReaderLoop(int fd) {
  // Reused across frames: steady-state receive does not allocate for the
  // payload once the buffer has grown to the working frame size.
  std::vector<uint8_t> payload;
  for (;;) {
    uint8_t header[8];
    if (!ReadAll(fd, header, sizeof(header))) break;
    // Header fields are little-endian on the wire, same as the payload.
    uint32_t len = static_cast<uint32_t>(header[0]) |
                   static_cast<uint32_t>(header[1]) << 8 |
                   static_cast<uint32_t>(header[2]) << 16 |
                   static_cast<uint32_t>(header[3]) << 24;
    uint32_t dest = static_cast<uint32_t>(header[4]) |
                    static_cast<uint32_t>(header[5]) << 8 |
                    static_cast<uint32_t>(header[6]) << 16 |
                    static_cast<uint32_t>(header[7]) << 24;
    if (len > (64u << 20)) break;  // oversized frame: drop connection
    payload.resize(len);
    if (!ReadAll(fd, payload.data(), len)) break;
    Result<Message> msg = DecodeMessage(payload.data(), payload.size());
    if (!msg.ok()) {
      THREEV_LOG(kWarn) << "dropping malformed frame: "
                        << msg.status().ToString();
      continue;
    }
    inbound_.Push(Inbound{dest, std::move(msg).value()});
  }
  ::close(fd);
}

void TcpNet::DispatchLoop() {
  for (;;) {
    // Batch drain: one wakeup delivers every frame queued since the last,
    // instead of a lock round trip per message.
    std::deque<Inbound> batch = inbound_.PopAll();
    if (batch.empty()) return;  // closed and drained
    for (auto& item : batch) {
      auto it = handlers_.find(item.to);
      if (it == handlers_.end()) {
        THREEV_LOG(kWarn) << "no local endpoint " << item.to;
        continue;
      }
      if (options_.tracer != nullptr && options_.tracer->enabled()) {
        options_.tracer->Instant(Now(), item.to, TraceOp::kMsgRecv,
                                 item.msg.trace,
                                 static_cast<uint8_t>(item.msg.type));
      }
      it->second(item.msg);
    }
  }
}

std::shared_ptr<TcpNet::Conn> TcpNet::ConnectionTo(NodeId to) {
  {
    MutexLock lock(conn_mu_);
    auto it = connections_.find(to);
    if (it != connections_.end()) return it->second;
  }
  auto peer = options_.peers.find(to);
  if (peer == options_.peers.end()) return nullptr;
  sockaddr_in addr;
  if (!ParseAddress(peer->second, &addr)) return nullptr;

  Micros deadline = Now() + options_.connect_timeout;
  while (!stopping_.load() && Now() < deadline) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      MutexLock lock(conn_mu_);
      auto [it, inserted] = connections_.emplace(to, conn);
      if (!inserted) {
        ::close(fd);  // another thread raced us; use theirs
      }
      return it->second;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return nullptr;
}

void TcpNet::DropConn(NodeId to, const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn_mu_);
  auto it = connections_.find(to);
  if (it != connections_.end() && it->second == conn) {
    ::close(conn->fd);
    connections_.erase(it);
  }
}

void TcpNet::FlushConn(const std::shared_ptr<Conn>& conn, NodeId to) {
  for (;;) {
    std::vector<std::vector<uint8_t>> batch;
    {
      MutexLock lock(conn->mu);
      if (conn->pending.empty()) {
        conn->flushing = false;
        return;
      }
      batch.swap(conn->pending);
    }
    size_t i = 0;
    while (i < batch.size()) {
      iovec iov[kMaxIov];
      size_t n = 0;
      for (; n < kMaxIov && i + n < batch.size(); ++n) {
        iov[n].iov_base = batch[i + n].data();
        iov[n].iov_len = batch[i + n].size();
      }
      if (!SendAll(conn->fd, iov, n)) {
        THREEV_LOG(kWarn) << "write to endpoint " << to << " failed";
        DropConn(to, conn);
        MutexLock lock(conn->mu);
        conn->pending.clear();  // connection is gone; drop queued frames
        conn->flushing = false;
        return;
      }
      i += n;
    }
    for (auto& frame : batch) frame_pool_.Release(std::move(frame));
  }
}

void TcpNet::Send(NodeId to, Message msg) {
  if (metrics_ != nullptr) {
    metrics_->messages_sent.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant(Now(), msg.from, TraceOp::kMsgSend, msg.trace,
                             static_cast<uint8_t>(msg.type));
  }
  // Local endpoint: skip the wire, but still go through the dispatcher so
  // the no-synchronous-delivery contract holds.
  if (handlers_.count(to) != 0) {
    inbound_.Push(Inbound{to, std::move(msg)});
    return;
  }
  // Build the full frame (header + payload) in one recycled buffer. The
  // exact-size pre-pass lets the length prefix go first, with no patching
  // and no second buffer.
  const size_t payload_size = EncodedMessageSize(msg);
  std::vector<uint8_t> frame = frame_pool_.Acquire();
  {
    WireWriter w(&frame);
    w.Reserve(8 + payload_size);
    w.U32(static_cast<uint32_t>(payload_size));
    w.U32(to);
    EncodeMessageTo(w, msg);
  }
  // The length header was written before the payload, so the size pre-pass
  // must be exact or the receiver mis-frames the stream.
  THREEV_CHECK(frame.size() == 8 + payload_size);
  if (metrics_ != nullptr) {
    // Real bytes handed to the socket for this message, header included
    // (TcpNet never uses the sim-only Message::ApproxBytes estimate).
    metrics_->bytes_sent.fetch_add(static_cast<int64_t>(frame.size()),
                                   std::memory_order_relaxed);
  }
  std::shared_ptr<Conn> conn = ConnectionTo(to);
  if (conn == nullptr) {
    THREEV_LOG(kWarn) << "cannot reach endpoint " << to << ", dropping "
                      << MsgTypeName(msg.type);
    return;
  }
  bool flush;
  {
    MutexLock lock(conn->mu);
    conn->pending.push_back(std::move(frame));
    flush = !conn->flushing;
    if (flush) conn->flushing = true;
  }
  // First sender to find the connection idle drains it - including frames
  // that arrive while it is busy writing. Everyone else just enqueued.
  if (flush) FlushConn(conn, to);
}

void TcpNet::ScheduleAfter(Micros delay, std::function<void()> fn) {
  bool new_front;
  {
    MutexLock lock(timer_mu_);
    if (timer_stop_) return;
    auto it = timers_.emplace(Now() + delay, std::move(fn));
    new_front = (it == timers_.begin());
  }
  // Wake the timer thread only when the new deadline precedes the one it
  // is sleeping toward; a later timer will be picked up naturally.
  if (new_front) timer_cv_.notify_all();
}

void TcpNet::TimerLoop() {
  MutexLock lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    Micros next = timers_.begin()->first;
    Micros now = Now();
    if (now < next) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(next - now));
      continue;
    }
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace threev
