#include "threev/net/thread_net.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "threev/common/logging.h"

namespace threev {

ThreadNet::ThreadNet(ThreadNetOptions options, Metrics* metrics)
    : options_(options), metrics_(metrics) {}

ThreadNet::~ThreadNet() { Stop(); }

Micros ThreadNet::Now() const { return RealClock::Instance().Now(); }

void ThreadNet::RegisterEndpoint(NodeId id, MessageHandler handler) {
  THREEV_CHECK(!started_.load(std::memory_order_acquire))
      << "register endpoints before Start()";
  auto ep = std::make_unique<Endpoint>();
  ep->handler = std::move(handler);
  endpoints_[id] = std::move(ep);
}

void ThreadNet::Start() {
  THREEV_CHECK(!started_.exchange(true, std::memory_order_acq_rel));
  const int workers = std::max(1, options_.workers_per_endpoint);
  Tracer* tracer = options_.tracer;
  for (auto& [id, ep] : endpoints_) {
    Endpoint* e = ep.get();
    const NodeId self = id;
    if (workers == 1) {
      // Single worker: drain the mailbox in batches. One wakeup and one
      // lock round trip serve an entire burst of messages, and handler
      // execution stays serialized.
      e->workers.emplace_back([e, tracer, self] {
        for (;;) {
          std::deque<Message> batch = e->mailbox.PopAll();
          if (batch.empty()) return;  // closed and drained
          for (auto& msg : batch) {
            if (tracer != nullptr && tracer->enabled()) {
              tracer->Instant(RealClock::Instance().Now(), self,
                              TraceOp::kMsgRecv, msg.trace,
                              static_cast<uint8_t>(msg.type));
            }
            e->handler(msg);
          }
        }
      });
    } else {
      // Multiple workers must pull one message at a time so the burst
      // spreads across them instead of landing on whichever woke first.
      for (int w = 0; w < workers; ++w) {
        e->workers.emplace_back([e, tracer, self] {
          while (auto msg = e->mailbox.Pop()) {
            if (tracer != nullptr && tracer->enabled()) {
              tracer->Instant(RealClock::Instance().Now(), self,
                              TraceOp::kMsgRecv, msg->trace,
                              static_cast<uint8_t>(msg->type));
            }
            e->handler(*msg);
          }
        });
      }
    }
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

void ThreadNet::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& [id, ep] : endpoints_) ep->mailbox.Close();
  for (auto& [id, ep] : endpoints_) {
    for (auto& worker : ep->workers) {
      if (worker.joinable()) worker.join();
    }
  }
}

void ThreadNet::Send(NodeId to, Message msg) {
  if (metrics_ != nullptr) {
    metrics_->messages_sent.fetch_add(1, std::memory_order_relaxed);
    metrics_->bytes_sent.fetch_add(static_cast<int64_t>(msg.ApproxBytes()),
                                   std::memory_order_relaxed);
  }
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->Instant(Now(), msg.from, TraceOp::kMsgSend, msg.trace,
                             static_cast<uint8_t>(msg.type));
  }
  auto it = endpoints_.find(to);
  THREEV_CHECK(it != endpoints_.end()) << "no endpoint " << to;
  Endpoint* ep = it->second.get();
  if (options_.delivery_delay > 0) {
    // Route through the timer thread so the sender does not sleep. FIFO is
    // preserved because all delayed deliveries use the same fixed delay and
    // the timer multimap is stable for equal keys.
    ScheduleAfter(options_.delivery_delay, [ep, m = std::move(msg)]() mutable {
      ep->mailbox.Push(std::move(m));
    });
  } else {
    ep->mailbox.Push(std::move(msg));
  }
}

void ThreadNet::ScheduleAfter(Micros delay, std::function<void()> fn) {
  bool new_front;
  {
    MutexLock lock(timer_mu_);
    if (timer_stop_) return;
    auto it = timers_.emplace(Now() + delay, std::move(fn));
    new_front = (it == timers_.begin());
  }
  // Only a timer that becomes the new earliest deadline changes what the
  // timer thread should be sleeping toward; waking it for every delayed
  // delivery (the delivery_delay path routes all sends through here) just
  // burns a syscall and a context switch per message.
  if (new_front) timer_cv_.notify_all();
}

void ThreadNet::TimerLoop() {
  MutexLock lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    Micros next = timers_.begin()->first;
    Micros now = Now();
    if (now < next) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(next - now));
      continue;
    }
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace threev
