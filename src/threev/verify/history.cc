#include "threev/verify/history.h"

namespace threev {

void HistoryRecorder::RecordSubmit(TxnId id, const TxnSpec& spec,
                                   Micros now) {
  MutexLock lock(mu_);
  TxnRecord& rec = txns_[id];
  rec.id = id;
  rec.submit_time = now;
  rec.read_only = spec.read_only;
  rec.klass = spec.klass;
  rec.spec = spec;
}

void HistoryRecorder::RecordComplete(
    TxnId id, bool committed, Version version,
    const std::map<std::string, Value>& reads, Micros now) {
  MutexLock lock(mu_);
  TxnRecord& rec = txns_[id];
  rec.id = id;
  rec.complete_time = now;
  rec.committed = committed;
  rec.version = version;
  rec.reads = reads;
  ++completed_;
}

void HistoryRecorder::RecordAdvancement(const AdvancementRecord& rec) {
  MutexLock lock(mu_);
  advancements_.push_back(rec);
}

std::vector<HistoryRecorder::TxnRecord> HistoryRecorder::Transactions()
    const {
  MutexLock lock(mu_);
  std::vector<TxnRecord> out;
  out.reserve(txns_.size());
  for (const auto& [id, rec] : txns_) out.push_back(rec);
  return out;
}

std::vector<HistoryRecorder::AdvancementRecord>
HistoryRecorder::Advancements() const {
  MutexLock lock(mu_);
  return advancements_;
}

size_t HistoryRecorder::CompletedCount() const {
  MutexLock lock(mu_);
  return completed_;
}

void HistoryRecorder::Clear() {
  MutexLock lock(mu_);
  txns_.clear();
  advancements_.clear();
  completed_ = 0;
}

}  // namespace threev
