#ifndef THREEV_VERIFY_CHECKER_H_
#define THREEV_VERIFY_CHECKER_H_

#include <string>
#include <vector>

#include "threev/verify/history.h"

namespace threev {

// Outcome of a history check.
struct CheckResult {
  size_t reads_checked = 0;
  size_t updates_indexed = 0;

  // A read observed only part of one update transaction's writes
  // (atomicity violation: the patient saw charges from radiology but not
  // pediatrics for the same visit).
  size_t partial_visibility = 0;
  // A read observed writes of a transaction that aborted (and was
  // compensated): dirty read of a logically-undone transaction.
  size_t aborted_visible = 0;
  // With version-cut checking on: a read observed an update of a version
  // newer than its own, or missed a committed update of an older version.
  size_t version_cut_violations = 0;
  // A later read (by version, then completion time) lost a record an
  // earlier read had seen.
  size_t nonmonotonic_reads = 0;

  // First few violations, human-readable.
  std::vector<std::string> samples;

  size_t total_anomalies() const {
    return partial_visibility + aborted_visible + version_cut_violations +
           nonmonotonic_reads;
  }
  bool ok() const { return total_anomalies() == 0; }
  std::string Summary() const;
};

struct CheckerOptions {
  // Enforce the exact version-cut rule of Theorem 4.1: read R of version v
  // sees precisely the committed updates of version <= v. Valid only for
  // histories produced by the 3V engine (versions are meaningless for the
  // baselines); atomicity/monotonicity checks are system-agnostic.
  bool check_version_cut = false;
  size_t max_samples = 10;
};

// Serializability checker for commuting-update (data recording) histories.
//
// It exploits the workload discipline that every update transaction
// Inserts one globally unique record id into the record-log key of every
// node it touches: a read is then a visibility cut over update
// transactions, and global serializability (Theorem 4.1: serial order =
// version order, updates before reads within a version) is equivalent to:
//   (a) every update is all-or-nothing in every read's cut,
//   (b) no aborted/compensated update is visible,
//   (c) cuts grow monotonically with (version, completion time),
//   (d) [3V only] the cut of read R equals {U committed : V(U) <= V(R)}.
CheckResult CheckHistory(const std::vector<HistoryRecorder::TxnRecord>& txns,
                         const CheckerOptions& options = {});

}  // namespace threev

#endif  // THREEV_VERIFY_CHECKER_H_
