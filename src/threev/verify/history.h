#ifndef THREEV_VERIFY_HISTORY_H_
#define THREEV_VERIFY_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "threev/common/clock.h"
#include "threev/common/ids.h"
#include "threev/common/mutex.h"
#include "threev/common/thread_annotations.h"
#include "threev/txn/plan.h"

namespace threev {

// Append-only record of what the system did, consumed by the
// serializability checker (verify/checker.h). Engines call the Record*
// hooks; a null recorder pointer disables recording everywhere.
class HistoryRecorder {
 public:
  struct TxnRecord {
    TxnId id = 0;
    Micros submit_time = 0;
    Micros complete_time = 0;
    bool read_only = false;
    TxnClass klass = TxnClass::kWellBehaved;
    bool committed = false;     // false: aborted (or compensated away)
    Version version = 0;        // version the transaction executed in
    TxnSpec spec;               // the submitted plan
    std::map<std::string, Value> reads;  // what kGet ops observed
  };

  struct AdvancementRecord {
    Version new_update_version = 0;
    Micros start_time = 0;
    Micros read_switch_time = 0;  // when phase 3 was initiated
    Micros end_time = 0;
  };

  void RecordSubmit(TxnId id, const TxnSpec& spec, Micros now) EXCLUDES(mu_);
  void RecordComplete(TxnId id, bool committed, Version version,
                      const std::map<std::string, Value>& reads, Micros now)
      EXCLUDES(mu_);
  void RecordAdvancement(const AdvancementRecord& rec) EXCLUDES(mu_);

  // Snapshot accessors (copy under lock; used after a run settles).
  std::vector<TxnRecord> Transactions() const EXCLUDES(mu_);
  std::vector<AdvancementRecord> Advancements() const EXCLUDES(mu_);
  size_t CompletedCount() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<TxnId, TxnRecord> txns_ GUARDED_BY(mu_);
  std::vector<AdvancementRecord> advancements_ GUARDED_BY(mu_);
  size_t completed_ GUARDED_BY(mu_) = 0;
};

}  // namespace threev

#endif  // THREEV_VERIFY_HISTORY_H_
