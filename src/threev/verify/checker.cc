#include "threev/verify/checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace threev {

namespace {

struct UpdateInfo {
  TxnId txn = 0;
  Version version = 0;
  bool committed = false;
  std::set<std::string> keys;  // record-log keys this update inserted into
};

void CollectInserts(const SubtxnPlan& plan,
                    std::unordered_map<uint64_t, UpdateInfo>& index,
                    const HistoryRecorder::TxnRecord& txn) {
  for (const auto& op : plan.ops) {
    if (op.kind == OpKind::kInsert) {
      UpdateInfo& info = index[static_cast<uint64_t>(op.arg)];
      info.txn = txn.id;
      info.version = txn.version;
      info.committed = txn.committed;
      info.keys.insert(op.key);
    }
  }
  for (const auto& child : plan.children) CollectInserts(child, index, txn);
}

void AddSample(CheckResult& result, const CheckerOptions& options,
               const std::string& text) {
  if (result.samples.size() < options.max_samples) {
    result.samples.push_back(text);
  }
}

}  // namespace

std::string CheckResult::Summary() const {
  std::ostringstream os;
  os << "reads_checked=" << reads_checked
     << " updates_indexed=" << updates_indexed
     << " partial_visibility=" << partial_visibility
     << " aborted_visible=" << aborted_visible
     << " version_cut_violations=" << version_cut_violations
     << " nonmonotonic_reads=" << nonmonotonic_reads
     << (ok() ? " [OK]" : " [ANOMALIES]");
  return os.str();
}

CheckResult CheckHistory(const std::vector<HistoryRecorder::TxnRecord>& txns,
                         const CheckerOptions& options) {
  CheckResult result;

  // Index every record id inserted by every update transaction, and build
  // a per-key index of (record id, version, committed) for cut checking.
  std::unordered_map<uint64_t, UpdateInfo> by_record;
  for (const auto& txn : txns) {
    if (txn.read_only || txn.complete_time == 0) continue;
    CollectInserts(txn.spec.root, by_record, txn);
  }
  result.updates_indexed = by_record.size();
  std::unordered_map<std::string, std::vector<uint64_t>> by_key;
  for (const auto& [record_id, info] : by_record) {
    for (const auto& key : info.keys) by_key[key].push_back(record_id);
  }

  // Committed reads in serialization order: version, then completion time
  // (within a version, the version order is the only constraint; completion
  // order refines it deterministically for the monotonicity check).
  std::vector<const HistoryRecorder::TxnRecord*> reads;
  for (const auto& txn : txns) {
    if (txn.read_only && txn.committed && txn.complete_time != 0) {
      reads.push_back(&txn);
    }
  }
  std::sort(reads.begin(), reads.end(), [](const auto* a, const auto* b) {
    if (a->version != b->version) return a->version < b->version;
    return a->complete_time < b->complete_time;
  });

  // Monotonicity state: per key, the records the latest read observed.
  std::map<std::string, std::set<uint64_t>> last_seen;

  for (const auto* read : reads) {
    ++result.reads_checked;

    // Observed record ids per key.
    std::map<std::string, std::set<uint64_t>> observed;
    for (const auto& [key, value] : read->reads) {
      if (!value.ids.empty() || by_key.count(key) != 0) {
        observed[key] = std::set<uint64_t>(value.ids.begin(),
                                           value.ids.end());
      }
    }

    // (a)+(b): each observed record must come from a committed update and
    // be visible in ALL of that update's keys that this read covered.
    std::set<uint64_t> seen_ids;
    for (const auto& [key, ids] : observed) {
      for (uint64_t id : ids) seen_ids.insert(id);
    }
    for (uint64_t id : seen_ids) {
      auto it = by_record.find(id);
      if (it == by_record.end()) continue;  // seeded / external data
      const UpdateInfo& update = it->second;
      if (!update.committed) {
        ++result.aborted_visible;
        AddSample(result, options,
                  "read txn " + std::to_string(read->id) +
                      " observed record " + std::to_string(id) +
                      " of an aborted update");
        continue;
      }
      for (const auto& key : update.keys) {
        auto oit = observed.find(key);
        if (oit == observed.end()) continue;  // read did not cover this key
        if (oit->second.count(id) == 0) {
          ++result.partial_visibility;
          AddSample(result, options,
                    "read txn " + std::to_string(read->id) +
                        " saw record " + std::to_string(id) +
                        " on some keys but not on " + key);
          break;
        }
      }
    }

    // (d): exact version cut (3V only).
    if (options.check_version_cut) {
      for (const auto& [key, ids] : observed) {
        auto kit = by_key.find(key);
        if (kit == by_key.end()) continue;
        for (uint64_t id : kit->second) {
          const UpdateInfo& update = by_record[id];
          bool should_see =
              update.committed && update.version <= read->version;
          bool saw = ids.count(id) != 0;
          if (should_see != saw) {
            ++result.version_cut_violations;
            AddSample(result, options,
                      "read txn " + std::to_string(read->id) + " (v" +
                          std::to_string(read->version) + ") " +
                          (saw ? "saw" : "missed") + " record " +
                          std::to_string(id) + " (v" +
                          std::to_string(update.version) + ") on " + key);
          }
        }
      }
    }

    // (c): monotonic growth of the visible cut per key. Only meaningful
    // when no compensation removed records; callers running with abort
    // injection should interpret nonmonotonic counts accordingly.
    for (const auto& [key, ids] : observed) {
      auto& prev = last_seen[key];
      for (uint64_t id : prev) {
        if (ids.count(id) == 0 && by_record.count(id) != 0 &&
            by_record[id].committed) {
          ++result.nonmonotonic_reads;
          AddSample(result, options,
                    "read txn " + std::to_string(read->id) + " lost record " +
                        std::to_string(id) + " on " + key +
                        " that an earlier read saw");
          break;
        }
      }
      prev = ids;
    }
  }

  return result;
}

}  // namespace threev
